"""The ``xlint`` driver: cross-module rules over one ProjectIndex pass.

Mirrors the single-file engine's contract — rules yield
:class:`~repro.analysis.engine.Finding` objects, inline
``# repro: lint-ignore[rule]`` suppressions and the committed baseline
both apply — but a rule sees the whole :class:`ProjectIndex` instead of
one file. All four rules run off the same index; the program is parsed
exactly once per invocation.

``--since <rev>`` scoping: the index is still built over the full tree
(interprocedural facts need the whole program), but reported findings
are restricted to the *touched call-graph slice* — modules changed
since ``rev`` plus every module with a resolved call edge into or out
of them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

from ..engine import Baseline, Finding, LintReport
from .index import ProjectIndex

__all__ = ["CrossRule", "XRULES", "xregister", "xlint_paths", "build_index"]


class CrossRule:
    """Base class for whole-program rules (see docs/ANALYSIS.md for the
    rule-authoring API)."""

    id: str = ""
    description: str = ""

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, col: int, message: str) -> Finding:
        return Finding(rule=self.id, path=path, line=line, col=col, message=message)


#: The cross-module rule registry, id -> instance.
XRULES: Dict[str, CrossRule] = {}


def xregister(cls: type) -> type:
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    XRULES[rule.id] = rule
    return cls


def build_index(paths: Iterable[Union[str, Path]]) -> ProjectIndex:
    """Build the whole-program index (one parse of every module)."""
    return ProjectIndex.build(paths)


def _selected(rules: Optional[Iterable[str]]) -> List[CrossRule]:
    if rules is None:
        return [XRULES[rule_id] for rule_id in sorted(XRULES)]
    chosen = []
    for rule_id in rules:
        if rule_id not in XRULES:
            raise KeyError(f"unknown cross-module rule {rule_id!r}; known: {sorted(XRULES)}")
        chosen.append(XRULES[rule_id])
    return chosen


def xlint_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Union[Baseline, Set[str]]] = None,
    changed_files: Optional[Iterable[Union[str, Path]]] = None,
    index: Optional[ProjectIndex] = None,
) -> LintReport:
    """Run the cross-module rules and fold results through suppressions,
    the baseline, and (optionally) changed-file slice scoping.

    ``changed_files`` restricts *reporting* to the touched call-graph
    slice; the index and the interprocedural analyses always see the
    whole program.
    """
    if index is None:
        index = build_index(paths)
    if isinstance(baseline, set):
        baseline = Baseline.from_identities(baseline)
    report = LintReport()
    report.files_checked = len(index.modules)

    scope_paths: Optional[Set[str]] = None
    if changed_files is not None:
        changed_modules = {
            info.name
            for info in index.modules.values()
            if any(_same_file(info.path, c) for c in changed_files)
        }
        slice_modules = index.module_neighbourhood(changed_modules)
        scope_paths = {
            index.modules[m].path for m in slice_modules if m in index.modules
        }

    all_findings: List[Finding] = []
    for rule in _selected(rules):
        for finding in rule.check(index):
            if index.is_suppressed(finding.path, finding.rule, finding.line):
                report.suppressed += 1
                continue
            all_findings.append(finding)
    all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    for finding in all_findings:
        if scope_paths is not None and finding.path not in scope_paths:
            report.out_of_scope += 1
            continue
        if baseline is not None and baseline.match(finding):
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    if baseline is not None and scope_paths is None:
        checked = {info.path for info in index.modules.values()}
        report.stale = baseline.stale_entries(checked)
    return report


def _same_file(index_path: str, candidate: Union[str, Path]) -> bool:
    a = Path(index_path)
    b = Path(candidate)
    if a == b:
        return True
    try:
        return a.resolve() == b.resolve()
    except OSError:  # pragma: no cover - unresolvable paths
        return a.name == b.name and a.parts[-3:] == b.parts[-3:]
