"""``lock-order-inversion``: the global lock-acquisition-order graph.

Every declared lock (``self._lock = threading.Lock()`` attributes,
module-level locks) is a node. An edge ``A -> B`` means "somewhere, B
is acquired while A is held" — either directly (a nested ``with``) or
*across call-graph hops*: a function that holds A and calls into
another module that eventually takes B contributes the same edge, which
is exactly the shape single-file analysis cannot see. A cycle in the
graph is a potential deadlock: two threads entering the cycle from
different edges can each hold one lock and wait forever for the other.

The static graph shares its node identity (lock creation sites) with
the runtime :mod:`~repro.analysis.locksmith` sanitizer, so observed
runtime inversions and static cycles can be cross-checked in one
report (``xlint --runtime-report``).

Approximations, chosen to keep false positives low:

* ``with`` statements are the acquisition model; bare ``.acquire()``
  calls contribute edges at the call point but are not tracked as held
  across subsequent statements (the single-file ``bare-lock-acquire``
  rule polices those shapes).
* ``Condition.wait`` releases the condition's lock while waiting; the
  walk keeps it held, which over-approximates (safe direction).
* Reentrant re-acquisition of the *same* lock id is not an edge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..engine import Finding
from .index import FunctionInfo, LockDecl, ProjectIndex
from .runner import CrossRule, xregister

__all__ = ["LockOrderGraph", "LockEdge", "build_lock_graph", "LockOrderInversion"]

_DEFERRED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


@dataclass(frozen=True)
class LockEdge:
    """Evidence that ``b`` is acquired while ``a`` is held."""

    a: str
    b: str
    path: str
    line: int
    via: str  #: human-readable provenance ("direct" or the call chain)


@dataclass
class LockOrderGraph:
    """The global acquisition-order graph plus per-lock declarations."""

    edges: Dict[Tuple[str, str], LockEdge]
    locks: Dict[str, LockDecl]

    def successors(self, node: str) -> List[str]:
        return sorted({b for (a, b) in self.edges if a == node})

    def cycles(self) -> List[List[str]]:
        """Elementary cycles, one per strongly connected component with
        more than one node (deterministic order)."""
        adjacency: Dict[str, List[str]] = {}
        for a, b in self.edges:
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, [])
        for node in adjacency:
            adjacency[node].sort()
        sccs = _tarjan(adjacency)
        cycles: List[List[str]] = []
        for scc in sccs:
            if len(scc) < 2:
                continue
            cycle = _find_cycle(sorted(scc), adjacency)
            if cycle:
                cycles.append(cycle)
        cycles.sort()
        return cycles

    def edge(self, a: str, b: str) -> Optional[LockEdge]:
        return self.edges.get((a, b))


def build_lock_graph(index: ProjectIndex) -> LockOrderGraph:
    """Walk every function once; combine direct nesting with call-graph
    reachability to produce the global edge set."""
    direct_acquires: Dict[str, Set[str]] = {}
    direct_edges: List[LockEdge] = []
    held_calls: List[Tuple[str, Tuple[str, ...], str, int, str]] = []

    for fn in index.iter_functions():
        acquired: Set[str] = set()
        _walk_function(index, fn, acquired, direct_edges, held_calls)
        direct_acquires[fn.qualname] = acquired

    reach = _reachable_acquires(index, direct_acquires)

    edges: Dict[Tuple[str, str], LockEdge] = {}
    for edge in direct_edges:
        edges.setdefault((edge.a, edge.b), edge)
    for caller, held, callee, line, path in sorted(held_calls):
        for lock_b in sorted(reach.get(callee, set())):
            for lock_a in held:
                if lock_a == lock_b:
                    continue
                key = (lock_a, lock_b)
                if key in edges:
                    continue
                chain = _acquire_chain(index, callee, lock_b, direct_acquires)
                via = f"{_short(caller)} -> " + " -> ".join(_short(q) for q in chain)
                edges[key] = LockEdge(
                    a=lock_a, b=lock_b, path=path, line=line, via=via
                )
    return LockOrderGraph(edges=edges, locks=dict(index.locks))


def _walk_function(
    index: ProjectIndex,
    fn: FunctionInfo,
    acquired: Set[str],
    direct_edges: List[LockEdge],
    held_calls: List[Tuple[str, Tuple[str, ...], str, int, str]],
) -> None:
    def walk(node: ast.AST, held: List[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _DEFERRED_SCOPES):
                continue  # nested defs analyzed as their own functions
            if isinstance(child, ast.With):
                new_locks: List[str] = []
                for item in child.items:
                    decl = index.resolve_lock(fn, item.context_expr)
                    if decl is None:
                        # Non-lock context manager: its expression may
                        # still contain calls made while locks are held.
                        walk(item.context_expr, held)
                        continue
                    acquired.add(decl.lock_id)
                    for held_id in held:
                        if held_id != decl.lock_id:
                            direct_edges.append(
                                LockEdge(
                                    a=held_id,
                                    b=decl.lock_id,
                                    path=fn.path,
                                    line=item.context_expr.lineno,
                                    via="direct",
                                )
                            )
                    new_locks.append(decl.lock_id)
                body = ast.Module(body=child.body, type_ignores=[])
                walk(body, held + new_locks)
                continue
            if isinstance(child, ast.Call):
                self_call_handled = _classify_call(child, held)
                if not self_call_handled:
                    walk(child, held)
                continue
            walk(child, held)

    def _classify_call(call: ast.Call, held: List[str]) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in ("acquire", "release"):
            decl = index.resolve_lock(fn, func.value)
            if decl is not None:
                if func.attr == "acquire":
                    acquired.add(decl.lock_id)
                    for held_id in held:
                        if held_id != decl.lock_id:
                            direct_edges.append(
                                LockEdge(
                                    a=held_id,
                                    b=decl.lock_id,
                                    path=fn.path,
                                    line=call.lineno,
                                    via="direct",
                                )
                            )
                return True
        target = index.resolve_call_target(fn, call)
        if target is not None and held:
            held_calls.append(
                (fn.qualname, tuple(held), target, call.lineno, fn.path)
            )
        # Walk the receiver chain and arguments: nested calls (e.g.
        # `self.registry.counter(...).inc()`) may acquire locks too.
        walk(call.func, held)
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            walk(arg, held)
        return True

    walk(fn.node, [])


def _reachable_acquires(
    index: ProjectIndex, direct: Dict[str, Set[str]]
) -> Dict[str, Set[str]]:
    """Fixpoint: locks acquired by a function or anything it can reach."""
    reach: Dict[str, Set[str]] = {q: set(s) for q, s in direct.items()}
    changed = True
    while changed:
        changed = False
        for qualname in reach:
            for edge in index.callees_of(qualname):
                callee_locks = reach.get(edge.callee)
                if callee_locks and not callee_locks <= reach[qualname]:
                    reach[qualname] |= callee_locks
                    changed = True
    return reach


def _acquire_chain(
    index: ProjectIndex,
    start: str,
    lock_id: str,
    direct: Dict[str, Set[str]],
) -> List[str]:
    """Shortest call chain from ``start`` to a function that directly
    acquires ``lock_id`` (BFS; deterministic)."""
    if lock_id in direct.get(start, set()):
        return [start]
    seen = {start}
    queue: List[List[str]] = [[start]]
    while queue:
        path = queue.pop(0)
        for edge in index.callees_of(path[-1]):
            if edge.callee in seen:
                continue
            seen.add(edge.callee)
            next_path = path + [edge.callee]
            if lock_id in direct.get(edge.callee, set()):
                return next_path
            queue.append(next_path)
    return [start]


def _tarjan(adjacency: Dict[str, List[str]]) -> List[List[str]]:
    """Iterative Tarjan SCC (recursion-free: lock graphs are small but
    call stacks are precious)."""
    index_counter = [0]
    indices: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []

    for root in sorted(adjacency):
        if root in indices:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                indices[node] = index_counter[0]
                lowlink[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = adjacency.get(node, [])
            advanced = False
            for i in range(child_i, len(children)):
                child = children[i]
                if child not in indices:
                    work[-1] = (node, i + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], indices[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def _find_cycle(nodes: Sequence[str], adjacency: Dict[str, List[str]]) -> List[str]:
    """One simple cycle through the SCC, starting at its smallest node."""
    start = nodes[0]
    members = set(nodes)
    path = [start]
    seen = {start}
    while True:
        candidates = [
            n for n in adjacency.get(path[-1], []) if n in members
        ]
        if not candidates:
            return []
        nxt = candidates[0]
        for candidate in candidates:
            if candidate == start and len(path) > 1:
                return path
            if candidate not in seen:
                nxt = candidate
                break
        else:
            if start in candidates and len(path) > 1:
                return path
            return []
        if nxt in seen:
            if nxt == start and len(path) > 1:
                return path
            return []
        path.append(nxt)
        seen.add(nxt)


def _short(qualname: str) -> str:
    """``repro.runtime.scheduler:RequestScheduler.submit`` ->
    ``scheduler:RequestScheduler.submit`` (keep output readable)."""
    module, _, rest = qualname.partition(":")
    return f"{module.rsplit('.', 1)[-1]}:{rest}" if rest else qualname


@xregister
class LockOrderInversion(CrossRule):
    id = "lock-order-inversion"
    description = (
        "A cycle in the global lock-acquisition-order graph: two threads "
        "entering the cycle from different edges can each hold one lock "
        "and wait forever for the other (cross-module deadlock)."
    )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        graph = build_lock_graph(index)
        for cycle in graph.cycles():
            edges = []
            for i, node in enumerate(cycle):
                nxt = cycle[(i + 1) % len(cycle)]
                edge = graph.edge(node, nxt)
                if edge is not None:
                    edges.append(edge)
            if not edges:
                continue
            first = edges[0]
            description = "; ".join(
                f"{e.a} -> {e.b} at {e.path}:{e.line}"
                + (f" (via {e.via})" if e.via != "direct" else "")
                for e in edges
            )
            yield self.finding(
                path=first.path,
                line=first.line,
                col=0,
                message=(
                    "lock-order inversion "
                    + " -> ".join(cycle + [cycle[0]])
                    + f": {description}"
                ),
            )
