"""Project-specific static analysis for the repro codebase.

Three coordinated parts (see DESIGN.md §11):

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — a
  rule-based AST lint engine tuned to the bug classes that kill a
  heavily threaded LLM-serving stack: blocking calls under locks,
  leaked executors and threads, dropped futures, metric-name drift,
  and wall-clock timing where monotonic clocks are required.
* :mod:`repro.analysis.plancheck` — a static validator for Luna
  :class:`~repro.luna.operators.LogicalPlan` DAGs, run by the planner
  (reject + replan), the executor (structural gate), and the serving
  plan cache (invalid plans are never admitted).
* :mod:`repro.analysis.leakcheck` — thread/executor leak detection
  behind the pytest leak-sanitizer fixture.
"""

from .engine import (
    Finding,
    FileContext,
    LintReport,
    Rule,
    RULES,
    lint_paths,
    lint_source,
    load_baseline,
    register,
    write_baseline,
)
from .plancheck import (
    PlanCheckError,
    PlanCheckIssue,
    PlanCheckReport,
    check_plan,
    ensure_valid_plan,
)
from . import rules as _rules  # noqa: F401  (importing registers the rules)

__all__ = [
    "Finding",
    "FileContext",
    "LintReport",
    "Rule",
    "RULES",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "write_baseline",
    "PlanCheckError",
    "PlanCheckIssue",
    "PlanCheckReport",
    "check_plan",
    "ensure_valid_plan",
]
