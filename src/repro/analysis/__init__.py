"""Project-specific static analysis for the repro codebase.

Five coordinated parts (see DESIGN.md §11 and docs/ANALYSIS.md):

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — a
  rule-based AST lint engine tuned to the bug classes that kill a
  heavily threaded LLM-serving stack: blocking calls under locks,
  leaked executors and threads, dropped futures, metric-name drift,
  and wall-clock timing where monotonic clocks are required.
* :mod:`repro.analysis.crossmod` — whole-program analysis: one
  :class:`~repro.analysis.crossmod.ProjectIndex` pass over every
  module, powering the interprocedural ``xlint`` rules (lock-order
  inversion, future escape, prompt taint, event-loop blockers).
* :mod:`repro.analysis.locksmith` — the runtime lock-order sanitizer:
  monitored ``threading.Lock``/``RLock`` wrappers that record the
  acquisition-order graph live and fail tests on observed inversions;
  cross-checked against the static lock graph.
* :mod:`repro.analysis.plancheck` — a static validator for Luna
  :class:`~repro.luna.operators.LogicalPlan` DAGs, run by the planner
  (reject + replan), the executor (structural gate), and the serving
  plan cache (invalid plans are never admitted).
* :mod:`repro.analysis.leakcheck` — thread/executor leak detection
  behind the pytest leak-sanitizer fixture.
"""

from .engine import (
    Baseline,
    BaselineEntry,
    Finding,
    FileContext,
    LintReport,
    Rule,
    RULES,
    lint_paths,
    lint_source,
    load_baseline,
    register,
    write_baseline,
)
from .sarif import to_sarif, write_sarif
from .plancheck import (
    PlanCheckError,
    PlanCheckIssue,
    PlanCheckReport,
    check_plan,
    ensure_valid_plan,
)
from . import rules as _rules  # noqa: F401  (importing registers the rules)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "FileContext",
    "LintReport",
    "Rule",
    "RULES",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "write_baseline",
    "to_sarif",
    "write_sarif",
    "PlanCheckError",
    "PlanCheckIssue",
    "PlanCheckReport",
    "check_plan",
    "ensure_valid_plan",
]

# NOTE: repro.analysis.crossmod and repro.analysis.locksmith are
# imported lazily by their consumers (CLI xlint, tests) — crossmod pulls
# in the whole-program indexer, which nothing on the serving path needs.
