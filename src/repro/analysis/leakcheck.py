"""Thread/executor leak detection for the pytest leak sanitizer.

The serving stack is all background machinery — scheduler workers,
dispatch pools, service worker threads, LLM batch pools. Every one of
them has an owner with a ``close()``; a test that leaves one behind has
found a lifecycle bug (in the code or in the test). The conftest
fixture snapshots live threads before each test and fails the test if
new *non-daemon* threads survive it — which covers un-shutdown
``ThreadPoolExecutor`` instances too, because their workers are
non-daemon threads.

A short grace period absorbs threads that are mid-exit when the test
body returns (e.g. a pool observed between ``shutdown(wait=False)`` and
actual death).
"""

from __future__ import annotations

import threading
import time
from typing import List, Set

__all__ = ["thread_snapshot", "find_leaked_threads", "describe_thread"]


def thread_snapshot() -> Set[int]:
    """Idents of all currently live threads."""
    return {t.ident for t in threading.enumerate() if t.ident is not None}


def describe_thread(thread: threading.Thread) -> str:
    kind = "daemon" if thread.daemon else "non-daemon"
    return f"{thread.name} ({kind}, ident={thread.ident})"


def find_leaked_threads(
    before: Set[int],
    grace_s: float = 2.0,
    poll_s: float = 0.05,
    include_daemon: bool = False,
) -> List[str]:
    """Descriptions of threads born since ``before`` that are still
    alive after the grace period.

    Only non-daemon threads count by default: daemon helpers (e.g.
    scheduler workers in a test that intentionally abandons a scheduler)
    cannot block interpreter exit, while a leaked non-daemon thread —
    including every worker of an un-shutdown pool executor — will.
    """
    deadline = time.monotonic() + grace_s
    while True:
        leaked = [
            t
            for t in threading.enumerate()
            if t.is_alive()
            and t.ident not in before
            and (include_daemon or not t.daemon)
        ]
        if not leaked or time.monotonic() >= deadline:
            return [describe_thread(t) for t in leaked]
        time.sleep(poll_s)
