"""The lint engine: file parsing, rule registry, suppressions, baseline.

A :class:`Rule` inspects one parsed file (:class:`FileContext`) and
yields :class:`Finding` objects. Rules register themselves in
:data:`RULES` via the :func:`register` decorator (see
:mod:`repro.analysis.rules` for the catalog).

Two escape hatches keep the linter honest on a real codebase:

* **Inline suppressions** — ``# repro: lint-ignore[rule-id]`` on the
  offending line (or the line directly above) silences that rule there.
  A bare ``# repro: lint-ignore`` silences every rule. Suppressions are
  deliberate, reviewable markers for false positives and by-design
  exceptions (e.g. a semaphore released by a different thread).
* **Baseline** — a committed JSON file of known findings. Findings
  matching the baseline are reported separately and do not fail the
  run, so the linter can be adopted without fixing the world first; new
  violations still fail CI.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "FileContext",
    "LintReport",
    "Rule",
    "RULES",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "write_baseline",
]

#: Matches ``# repro: lint-ignore`` / ``# repro: lint-ignore[a, b]``.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ignore(?:\[([\w\-, ]+)\])?")

#: Sentinel for "all rules suppressed on this line".
_ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def identity(self) -> str:
        """Baseline key: stable across unrelated line-number drift."""
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class FileContext:
    """One parsed source file plus its suppression map."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree: ast.Module = ast.parse(source, filename=path)
        self.suppressions: Dict[int, Set[str]] = _parse_suppressions(source)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when the line (or the one above it) suppresses the rule."""
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if rules is not None and (_ALL_RULES in rules or rule_id in rules):
                return True
        return False


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        listed = match.group(1)
        if listed is None:
            suppressions[lineno] = {_ALL_RULES}
        else:
            suppressions[lineno] = {
                name.strip() for name in listed.split(",") if name.strip()
            }
    return suppressions


class Rule:
    """Base class for lint rules. Subclasses set ``id``/``description``
    and implement :meth:`check`."""

    id: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Convenience constructor anchored at an AST node."""
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: The process-wide rule registry, id -> instance.
RULES: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of the rule to :data:`RULES`."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    RULES[rule.id] = rule
    return cls


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------


@dataclass
class LintReport:
    """The outcome of one lint run.

    ``findings`` are actionable violations (exit non-zero); ``baselined``
    matched the committed baseline; ``suppressed`` were silenced inline;
    ``stale`` are baseline entries whose file::rule no longer fires (the
    suppression has rotted and should be deleted); ``out_of_scope``
    counts findings dropped by ``--changed``/``--since`` slice scoping.
    """

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    stale: List[str] = field(default_factory=list)
    out_of_scope: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "out_of_scope": self.out_of_scope,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline_entries": list(self.stale),
        }

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s) "
            f"({len(self.baselined)} baselined, {self.suppressed} suppressed"
        )
        if self.out_of_scope:
            summary += f", {self.out_of_scope} outside the changed slice"
        summary += ")"
        lines.append(summary)
        if self.stale:
            lines.append(
                f"{len(self.stale)} stale baseline entr"
                f"{'y' if len(self.stale) == 1 else 'ies'} "
                f"(no longer fire; regenerate with --update-baseline):"
            )
            lines.extend(f"  {identity}" for identity in self.stale)
        return "\n".join(lines)


def _selected_rules(rules: Optional[Iterable[str]]) -> List[Rule]:
    if rules is None:
        return list(RULES.values())
    selected = []
    for rule_id in rules:
        if rule_id not in RULES:
            raise KeyError(f"unknown rule {rule_id!r}; known: {sorted(RULES)}")
        selected.append(RULES[rule_id])
    return selected


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source string; suppressed findings are dropped."""
    report = LintReport()
    findings = _lint_context(source, path, _selected_rules(rules), report)
    return findings


def _lint_context(
    source: str, path: str, rules: Sequence[Rule], report: LintReport
) -> List[Finding]:
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax-error",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.rule, finding.line):
                report.suppressed += 1
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(
    path: Union[str, Path], rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint one file on disk."""
    report = LintReport()
    source = Path(path).read_text(encoding="utf-8")
    return _lint_context(source, str(path), _selected_rules(rules), report)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Iterable[Union[str, Path]],
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Union[Set[str], "Baseline"]] = None,
) -> LintReport:
    """Lint files/directories against an optional baseline.

    ``baseline`` may be a plain identity set (legacy) or a
    :class:`Baseline`; with a :class:`Baseline`, entries survive file
    moves (basename fallback) and entries that no longer fire are
    reported as stale.
    """
    report = LintReport()
    selected = _selected_rules(rules)
    if baseline is None:
        baseline = Baseline()
    elif isinstance(baseline, set):
        baseline = Baseline.from_identities(baseline)
    checked_paths: Set[str] = set()
    for path in iter_python_files(paths):
        report.files_checked += 1
        checked_paths.add(str(path))
        source = path.read_text(encoding="utf-8")
        for finding in _lint_context(source, str(path), selected, report):
            if baseline.match(finding):
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
    report.stale = baseline.stale_entries(checked_paths)
    return report


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


@dataclass
class BaselineEntry:
    """One accepted finding. ``justification`` is required for entries
    that are deliberate policy exceptions (e.g. the async-migration
    worklist) rather than not-yet-fixed debt."""

    path: str
    rule: str
    message: str
    justification: Optional[str] = None

    @property
    def identity(self) -> str:
        return f"{self.path}::{self.rule}::{self.message}"

    @property
    def moved_identity(self) -> str:
        """Fallback key matching the finding after a file move: same
        basename, rule, and message."""
        return f"{Path(self.path).name}::{self.rule}::{self.message}"


class Baseline:
    """A committed set of accepted findings with staleness tracking.

    Matching is two-phase: exact ``path::rule::message`` first, then a
    basename fallback so moving a file does not resurrect its accepted
    findings. Every match is recorded; entries that matched nothing in
    a full run over their file's tree are *stale* and should be purged
    with ``--update-baseline``.
    """

    def __init__(self, entries: Optional[Sequence[BaselineEntry]] = None):
        self.entries: List[BaselineEntry] = list(entries or [])
        self._matched: Set[int] = set()

    @classmethod
    def from_identities(cls, identities: Set[str]) -> "Baseline":
        entries = []
        for identity in sorted(identities):
            path, rule, message = identity.split("::", 2)
            entries.append(BaselineEntry(path=path, rule=rule, message=message))
        return cls(entries)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        file_path = Path(path)
        if not file_path.exists():
            return cls()
        text = file_path.read_text(encoding="utf-8").strip()
        if not text:
            return cls()
        payload = json.loads(text)
        entries = [
            BaselineEntry(
                path=entry["path"],
                rule=entry["rule"],
                message=entry["message"],
                justification=entry.get("justification"),
            )
            for entry in payload.get("findings", [])
        ]
        return cls(entries)

    def match(self, finding: Finding) -> Optional[BaselineEntry]:
        """The entry accepting this finding (exact, then moved-file
        fallback), or None. Matches are recorded for staleness."""
        identity = finding.identity()
        moved = f"{Path(finding.path).name}::{finding.rule}::{finding.message}"
        fallback: Optional[int] = None
        for i, entry in enumerate(self.entries):
            if entry.identity == identity:
                self._matched.add(i)
                return entry
            if fallback is None and entry.moved_identity == moved:
                fallback = i
        if fallback is not None:
            self._matched.add(fallback)
            return self.entries[fallback]
        return None

    def stale_entries(self, checked_paths: Set[str]) -> List[str]:
        """Identities of entries that matched nothing, restricted to
        entries whose file (or a same-named file) was actually linted —
        a scoped run must not declare the rest of the baseline rotten.
        """
        checked_names = {Path(p).name for p in checked_paths}
        stale = []
        for i, entry in enumerate(self.entries):
            if i in self._matched:
                continue
            if entry.path in checked_paths or Path(entry.path).name in checked_names:
                stale.append(entry.identity)
        return stale

    def justifications(self) -> Dict[str, str]:
        """identity -> justification, for entries that carry one."""
        return {
            entry.identity: entry.justification
            for entry in self.entries
            if entry.justification
        }


def load_baseline(path: Union[str, Path]) -> Set[str]:
    """Load a baseline file into a set of finding identities.

    A missing file is an empty baseline (fresh repos start clean).
    Prefer :meth:`Baseline.load` for move-tolerance, staleness tracking,
    and justifications; this identity-set view is kept for callers that
    only need membership.
    """
    return {entry.identity for entry in Baseline.load(path).entries}


def write_baseline(
    path: Union[str, Path],
    findings: Sequence[Finding],
    justifications: Optional[Dict[str, str]] = None,
) -> None:
    """Persist current findings as the accepted baseline.

    ``justifications`` maps finding identities to a written reason; use
    it to preserve (or add) the why of deliberate policy exceptions
    when regenerating with ``--update-baseline``.
    """
    justifications = justifications or {}
    entries = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        entry: Dict[str, object] = {
            "path": f.path,
            "rule": f.rule,
            "message": f.message,
        }
        reason = justifications.get(f.identity())
        if reason:
            entry["justification"] = reason
        entries.append(entry)
    payload = {"version": 2, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
