"""Static validation of Luna logical plans before execution.

The planner LLM emits JSON; :meth:`LogicalPlan.validate` already rejects
structurally broken output (unknown operators, wrong arity). This module
is the stronger, schema-aware contract check the paper alludes to with
plans being "checked before execution" (§6.1): it accumulates *all*
problems in one structured :class:`PlanCheckReport` instead of failing
on the first, and it understands dataflow — which fields exist at each
node, given the index schema and any upstream ``LlmExtract`` nodes.

Call sites:

* :class:`~repro.luna.planner.LunaPlanner` — rejects a plan that fails
  the check and replans (a fresh LLM sample).
* :meth:`~repro.luna.luna.Luna.execute_plan` — hand-built/edited plans
  are checked against the target index's schema at plan time, never at
  execution time.
* :class:`~repro.serving.service.QueryService` — the plan cache only
  admits plans that pass, so a bad plan can never be served twice.
* ``python -m repro plancheck`` — the same check from the CLI.

Violation codes (severity in parentheses):

========================  ===========================================
``empty-plan`` (error)    plan has no nodes
``unknown-operator``      operation not in the operator vocabulary
``missing-param``         a required operator parameter is absent
``bad-param`` (error)     a parameter fails its type/value contract
``arity-mismatch``        wrong number of inputs for the operator
``dangling-input``        input index outside the plan
``nontopological-input``  input references self or a later node
``cycle`` (error)         the reference graph contains a cycle
``unknown-index``         source reads an index the catalog lacks
``unknown-field``         field not in schema nor extracted upstream
``aggregate-unextracted`` aggregate over a field that nothing provides
``group-by-unknown``      (warning) group_by field not provided
``project-unknown``       (warning) projected field not provided
``dead-node`` (warning)   node output is never consumed
``bad-cascade``           malformed cascade annotation (votes,
                          threshold, or a non-eligible operator)
``cascade-unknown-model`` (warning) a cascade's draft or verify
                          (fallback) model is not in the model registry
========================  ===========================================
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set

from ..llm.base import DEFAULT_MODELS
from ..luna.operators import (
    CASCADE_ELIGIBLE_OPERATIONS,
    OPERATOR_SPECS,
    LogicalPlan,
    PlanValidationError,
)

__all__ = [
    "PlanCheckError",
    "PlanCheckIssue",
    "PlanCheckReport",
    "check_plan",
    "ensure_valid_plan",
]

ERROR = "error"
WARNING = "warning"

_MATH_REF = re.compile(r"#(\d+)")

#: Fields every record carries regardless of schema.
_INTRINSIC_FIELDS = frozenset({"doc_id", "text"})

_COMPARATORS = frozenset({"eq", "ne", "lt", "le", "gt", "ge", "contains"})
_AGG_FUNCS = frozenset({"sum", "avg", "min", "max", "count", "median"})

#: Operators whose output records keep flowing to consumers with the
#: per-record field set intact (vs. scalar/reshaping outputs).
_RECORD_PRESERVING = frozenset(
    {"BasicFilter", "LlmFilter", "Sort", "Limit", "Distinct", "Identity"}
)


@dataclass(frozen=True)
class PlanCheckIssue:
    """One violation (or warning) found in a plan."""

    code: str
    message: str
    node: Optional[int] = None
    severity: str = ERROR

    def render(self) -> str:
        where = f"node {self.node}: " if self.node is not None else ""
        return f"[{self.severity}] {where}{self.code}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "node": self.node,
            "severity": self.severity,
        }


@dataclass
class PlanCheckReport:
    """All issues found by one :func:`check_plan` run."""

    issues: List[PlanCheckIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors()

    def errors(self) -> List[PlanCheckIssue]:
        return [i for i in self.issues if i.severity == ERROR]

    def warnings(self) -> List[PlanCheckIssue]:
        return [i for i in self.issues if i.severity == WARNING]

    def codes(self) -> Set[str]:
        return {i.code for i in self.issues}

    def render(self) -> str:
        if not self.issues:
            return "plan OK"
        return "\n".join(issue.render() for issue in self.issues)

    def to_dict(self) -> Dict[str, Any]:
        return {"ok": self.ok, "issues": [i.to_dict() for i in self.issues]}


class PlanCheckError(PlanValidationError):
    """A plan failed static validation.

    Subclasses :class:`PlanValidationError` so the planner's existing
    reject-and-replan loop treats a plancheck rejection exactly like a
    malformed plan; carries the structured :attr:`report`.
    """

    def __init__(self, report: PlanCheckReport):
        super().__init__(
            "plan failed static checks:\n" + report.render()
        )
        self.report = report


def ensure_valid_plan(
    plan: LogicalPlan,
    schema: Optional[Mapping[str, Any]] = None,
    known_indexes: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> PlanCheckReport:
    """Run :func:`check_plan` and raise :class:`PlanCheckError` on errors."""
    report = check_plan(plan, schema=schema, known_indexes=known_indexes)
    if not report.ok:
        raise PlanCheckError(report)
    return report


def check_plan(
    plan: LogicalPlan,
    schema: Optional[Mapping[str, Any]] = None,
    known_indexes: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> PlanCheckReport:
    """Statically validate a plan.

    ``schema`` is the target index's field schema (name -> type); when
    given, field references are checked against it plus whatever
    upstream ``LlmExtract`` nodes provide. ``known_indexes`` maps index
    names to their schemas: source nodes reading an unlisted index are
    errors, and each source's fields come from its own index's schema.
    Without either, only structural checks run.
    """
    checker = _Checker(plan, schema, known_indexes)
    return checker.run()


class _Checker:
    def __init__(
        self,
        plan: LogicalPlan,
        schema: Optional[Mapping[str, Any]],
        known_indexes: Optional[Mapping[str, Mapping[str, Any]]],
    ):
        self.plan = plan
        self.schema = dict(schema) if schema else None
        self.known_indexes = (
            {name: dict(s or {}) for name, s in known_indexes.items()}
            if known_indexes is not None
            else None
        )
        self.report = PlanCheckReport()

    # ------------------------------------------------------------------

    def run(self) -> PlanCheckReport:
        nodes = self.plan.nodes
        if not nodes:
            self._issue("empty-plan", "plan has no nodes")
            return self.report
        for index, node in enumerate(nodes):
            self._check_structure(index, node)
        self._check_cycles()
        self._check_fields()
        self._check_reachability()
        return self.report

    def _issue(
        self,
        code: str,
        message: str,
        node: Optional[int] = None,
        severity: str = ERROR,
    ) -> None:
        self.report.issues.append(
            PlanCheckIssue(code=code, message=message, node=node, severity=severity)
        )

    # ------------------------------------------------------------------
    # Structure: vocabulary, params, arity, references
    # ------------------------------------------------------------------

    def _check_structure(self, index: int, node: Any) -> None:
        spec = OPERATOR_SPECS.get(node.operation)
        if spec is None:
            self._issue(
                "unknown-operator",
                f"operation {node.operation!r} is not in the operator "
                f"vocabulary",
                node=index,
            )
            return
        for name in spec["required"]:
            if name not in node.params:
                self._issue(
                    "missing-param",
                    f"{node.operation} requires parameter {name!r}",
                    node=index,
                )
        arity = spec["arity"]
        if arity == "+":
            if len(node.inputs) < 1:
                self._issue(
                    "arity-mismatch",
                    f"{node.operation} needs at least one input",
                    node=index,
                )
        elif len(node.inputs) != arity:
            self._issue(
                "arity-mismatch",
                f"{node.operation} expects {arity} input(s), got "
                f"{len(node.inputs)}",
                node=index,
            )
        self._check_params(index, node)
        for ref in self._references(node):
            if not isinstance(ref, int) or not 0 <= ref < len(self.plan.nodes):
                self._issue(
                    "dangling-input",
                    f"references node {ref!r}, but the plan has nodes "
                    f"0..{len(self.plan.nodes) - 1}",
                    node=index,
                )
            elif ref >= index:
                self._issue(
                    "nontopological-input",
                    f"references node {ref}, which is not an earlier node "
                    f"(plans are topologically ordered)",
                    node=index,
                )

    def _references(self, node: Any) -> List[Any]:
        refs: List[Any] = list(node.inputs)
        if node.operation == "Math":
            expression = str(node.params.get("expression", ""))
            refs.extend(int(m) for m in _MATH_REF.findall(expression))
        return refs

    def _check_params(self, index: int, node: Any) -> None:
        params = node.params
        op = node.operation
        self._check_cascade(index, node)
        if op == "QueryIndex":
            scan_op = params.get("filter_op")
            if params.get("filter_field") is not None and (
                scan_op is not None and scan_op not in _COMPARATORS
            ):
                self._issue(
                    "bad-param",
                    f"unknown scan-filter comparator {scan_op!r}; expected "
                    f"one of {sorted(_COMPARATORS)}",
                    node=index,
                )
        if op == "BasicFilter":
            comparator = params.get("op")
            if comparator is not None and comparator not in _COMPARATORS:
                self._issue(
                    "bad-param",
                    f"unknown comparator {comparator!r}; expected one of "
                    f"{sorted(_COMPARATORS)}",
                    node=index,
                )
        elif op == "Aggregate":
            func = params.get("func")
            if func is not None and func not in _AGG_FUNCS:
                self._issue(
                    "bad-param",
                    f"unknown aggregate function {func!r}; expected one "
                    f"of {sorted(_AGG_FUNCS)}",
                    node=index,
                )
        elif op in ("Limit", "TopK"):
            k = params.get("k")
            if k is not None and (not isinstance(k, int) or k < 1):
                self._issue(
                    "bad-param",
                    f"k must be a positive integer, got {k!r}",
                    node=index,
                )
        elif op == "Project":
            fields = params.get("fields")
            if fields is not None and (
                not isinstance(fields, list)
                or not all(isinstance(f, str) for f in fields)
            ):
                self._issue(
                    "bad-param",
                    f"fields must be a list of strings, got {fields!r}",
                    node=index,
                )
        elif op == "FromDocuments":
            doc_ids = params.get("doc_ids")
            if doc_ids is not None and not isinstance(doc_ids, list):
                self._issue(
                    "bad-param",
                    f"doc_ids must be a list, got {doc_ids!r}",
                    node=index,
                )
        elif op == "Math":
            expression = params.get("expression")
            if expression is not None and not isinstance(expression, str):
                self._issue(
                    "bad-param",
                    f"expression must be a string, got {expression!r}",
                    node=index,
                )

    def _check_cascade(self, index: int, node: Any) -> None:
        """Validate a cost-based optimizer cascade annotation.

        A malformed annotation is an error (the executor would misrun
        it); a draft or verify (fallback) model missing from the model
        registry is the ``cascade-unknown-model`` warning — the plan
        still executes, falling back to the context's default model, but
        the escalation path the optimizer priced does not exist.
        """
        cascade = node.params.get("cascade")
        if cascade is None:
            return
        if node.operation not in CASCADE_ELIGIBLE_OPERATIONS:
            self._issue(
                "bad-cascade",
                f"{node.operation} is not cascade-eligible "
                f"(eligible: {list(CASCADE_ELIGIBLE_OPERATIONS)})",
                node=index,
            )
            return
        if not isinstance(cascade, dict):
            self._issue(
                "bad-cascade",
                f"cascade must be a mapping, got {cascade!r}",
                node=index,
            )
            return
        votes = cascade.get("draft_votes", 2)
        if not isinstance(votes, int) or votes < 1:
            self._issue(
                "bad-cascade",
                f"draft_votes must be a positive integer, got {votes!r}",
                node=index,
            )
        threshold = cascade.get("confidence_threshold", 0.75)
        if not isinstance(threshold, (int, float)) or isinstance(threshold, bool):
            self._issue(
                "bad-cascade",
                f"confidence_threshold must be a number, got {threshold!r}",
                node=index,
            )
        draft = cascade.get("draft_model")
        if draft is not None and draft not in DEFAULT_MODELS:
            self._issue(
                "cascade-unknown-model",
                f"cascade draft model {draft!r} is not in the model "
                f"registry (known: {sorted(DEFAULT_MODELS)})",
                node=index,
                severity=WARNING,
            )
        verify = node.params.get("model")
        if verify is not None and verify not in DEFAULT_MODELS:
            self._issue(
                "cascade-unknown-model",
                f"cascade fallback (verify) model {verify!r} is not in "
                f"the model registry (known: {sorted(DEFAULT_MODELS)})",
                node=index,
                severity=WARNING,
            )

    # ------------------------------------------------------------------
    # Cycles
    # ------------------------------------------------------------------

    def _check_cycles(self) -> None:
        n = len(self.plan.nodes)
        edges: Dict[int, List[int]] = {}
        for index, node in enumerate(self.plan.nodes):
            edges[index] = [
                ref
                for ref in self._references(node)
                if isinstance(ref, int) and 0 <= ref < n
            ]
        WHITE, GREY, BLACK = 0, 1, 2
        color = [WHITE] * n
        cycle_nodes: Set[int] = set()

        def visit(start: int) -> None:
            stack: List[tuple] = [(start, iter(edges[start]))]
            color[start] = GREY
            while stack:
                current, it = stack[-1]
                advanced = False
                for ref in it:
                    if color[ref] == GREY:
                        cycle_nodes.add(current)
                        cycle_nodes.add(ref)
                    elif color[ref] == WHITE:
                        color[ref] = GREY
                        stack.append((ref, iter(edges[ref])))
                        advanced = True
                        break
                if not advanced:
                    color[current] = BLACK
                    stack.pop()

        for index in range(n):
            if color[index] == WHITE:
                visit(index)
        if cycle_nodes:
            self._issue(
                "cycle",
                f"the reference graph contains a cycle through node(s) "
                f"{sorted(cycle_nodes)}",
            )

    # ------------------------------------------------------------------
    # Field dataflow
    # ------------------------------------------------------------------

    def _source_fields(self, index: int, node: Any) -> Optional[Set[str]]:
        """Fields a source node provides; None means "unknown, allow all"."""
        index_name = node.params.get("index")
        if self.known_indexes is not None:
            if index_name is not None and index_name not in self.known_indexes:
                self._issue(
                    "unknown-index",
                    f"index {index_name!r} is not in the catalog "
                    f"(known: {sorted(self.known_indexes)})",
                    node=index,
                )
                return None
            if index_name is not None:
                return set(self.known_indexes[index_name]) | set(_INTRINSIC_FIELDS)
        if self.schema is not None:
            return set(self.schema) | set(_INTRINSIC_FIELDS)
        return None

    def _check_fields(self) -> None:
        if self.schema is None and self.known_indexes is None:
            return
        nodes = self.plan.nodes
        n = len(nodes)
        # available[i]: fields on records flowing OUT of node i, or None
        # for "unknowable" (e.g. joins against unlisted sources).
        available: List[Optional[Set[str]]] = [None] * n
        for index, node in enumerate(nodes):
            op = node.operation
            upstream = [
                available[ref]
                for ref in node.inputs
                if isinstance(ref, int) and 0 <= ref < index
            ]
            if op in ("QueryIndex", "FromDocuments"):
                available[index] = self._source_fields(index, node)
                continue
            if not upstream:
                available[index] = None
                continue
            if any(fields is None for fields in upstream):
                inherited: Optional[Set[str]] = None
            else:
                inherited = set()
                for fields in upstream:
                    assert fields is not None
                    inherited |= fields
            if op == "LlmExtract":
                extracted = node.params.get("field")
                if inherited is not None and isinstance(extracted, str):
                    inherited = inherited | {extracted}
                available[index] = inherited
            elif op == "Join":
                # Join merges right-side properties under prefixed keys;
                # downstream field checks would need alias tracking, so
                # the merged record is treated as open-schema.
                available[index] = None
            elif op in _RECORD_PRESERVING:
                available[index] = inherited
                self._check_field_ref(index, node, inherited)
            elif op == "Aggregate":
                self._check_aggregate(index, node, inherited)
                group_by = node.params.get("group_by")
                out = set(_INTRINSIC_FIELDS)
                if isinstance(group_by, str):
                    out.add(group_by)
                available[index] = out
            elif op == "TopK":
                self._check_field_ref(index, node, inherited)
                available[index] = None  # (value, count) rows
            elif op == "Project":
                self._check_project(index, node, inherited)
                available[index] = inherited
            else:
                # Count, Math, Summarize, ... produce scalars/text.
                available[index] = set(_INTRINSIC_FIELDS)

    def _check_field_ref(
        self, index: int, node: Any, fields: Optional[Set[str]]
    ) -> None:
        name = node.params.get("field")
        if fields is None or not isinstance(name, str):
            return
        if name not in fields and "." not in name:
            self._issue(
                "unknown-field",
                f"{node.operation} references field {name!r}, which is "
                f"neither in the index schema nor extracted upstream "
                f"(available: {sorted(fields)})",
                node=index,
            )

    def _check_aggregate(
        self, index: int, node: Any, fields: Optional[Set[str]]
    ) -> None:
        name = node.params.get("field")
        func = node.params.get("func")
        if fields is None or not isinstance(name, str):
            pass
        elif func != "count" and name not in fields and "." not in name:
            self._issue(
                "aggregate-unextracted",
                f"Aggregate({func}) over field {name!r}, which is neither "
                f"in the index schema nor extracted upstream; add an "
                f"LlmExtract node or aggregate an existing field "
                f"(available: {sorted(fields)})",
                node=index,
            )
        group_by = node.params.get("group_by")
        if (
            fields is not None
            and isinstance(group_by, str)
            and group_by not in fields
            and "." not in group_by
        ):
            self._issue(
                "group-by-unknown",
                f"group_by field {group_by!r} is not provided by the "
                f"inputs (available: {sorted(fields)})",
                node=index,
                severity=WARNING,
            )

    def _check_project(
        self, index: int, node: Any, fields: Optional[Set[str]]
    ) -> None:
        wanted = node.params.get("fields")
        if fields is None or not isinstance(wanted, list):
            return
        for name in wanted:
            if isinstance(name, str) and name not in fields and "." not in name:
                self._issue(
                    "project-unknown",
                    f"projected field {name!r} is not provided by the "
                    f"inputs (available: {sorted(fields)})",
                    node=index,
                    severity=WARNING,
                )

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def _check_reachability(self) -> None:
        nodes = self.plan.nodes
        n = len(nodes)
        if n <= 1:
            return
        reachable: Set[int] = set()
        stack = [n - 1]
        while stack:
            current = stack.pop()
            if current in reachable:
                continue
            reachable.add(current)
            for ref in self._references(nodes[current]):
                if isinstance(ref, int) and 0 <= ref < n:
                    stack.append(ref)
        for index in range(n):
            if index not in reachable:
                self._issue(
                    "dead-node",
                    f"{nodes[index].operation} output is never consumed "
                    f"and is not the result node",
                    node=index,
                    severity=WARNING,
                )
