"""SARIF 2.1.0 export for lint and xlint reports.

One exporter serves both engines — a :class:`~repro.analysis.engine.
LintReport` looks the same whether its findings came from single-file
rules or the whole-program pass. The output is the minimal conforming
subset that code-scanning UIs ingest: tool driver with rule metadata,
one ``result`` per finding with a physical location. Baselined findings
are exported with ``"baselineState": "unchanged"`` so upload targets
can distinguish accepted debt from new findings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Union

from .engine import Finding, LintReport

__all__ = ["to_sarif", "write_sarif"]

_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _result(finding: Finding, baseline_state: Optional[str]) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "warning",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.col + 1),
                    },
                }
            }
        ],
    }
    if baseline_state is not None:
        entry["baselineState"] = baseline_state
    return entry


def to_sarif(
    report: LintReport,
    tool_name: str = "repro-lint",
    rule_descriptions: Optional[Mapping[str, str]] = None,
    include_baselined: bool = True,
) -> Dict[str, Any]:
    """Convert a lint report to a SARIF 2.1.0 log dict."""
    rule_descriptions = dict(rule_descriptions or {})
    seen_rules = sorted(
        {f.rule for f in report.findings}
        | {f.rule for f in (report.baselined if include_baselined else [])}
    )
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": rule_descriptions.get(rule_id, rule_id)
            },
        }
        for rule_id in seen_rules
    ]
    results = [_result(f, "new") for f in report.findings]
    if include_baselined:
        results += [_result(f, "unchanged") for f in report.baselined]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://github.com/",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    path: Union[str, Path],
    report: LintReport,
    tool_name: str = "repro-lint",
    rule_descriptions: Optional[Mapping[str, str]] = None,
) -> None:
    log = to_sarif(report, tool_name=tool_name, rule_descriptions=rule_descriptions)
    Path(path).write_text(json.dumps(log, indent=2, sort_keys=True), encoding="utf-8")
