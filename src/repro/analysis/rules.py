"""The project lint rules.

Each rule encodes a bug class this codebase has actually hit (or is one
refactor away from hitting): the RateLimiter sleep-under-lock fixed by
hand in PR 1, dispatch futures dropped on the floor, executors that
outlive their owners. The heuristics are deliberately narrow — a small
number of high-confidence checks with inline suppressions for the
legitimate exceptions — rather than a general-purpose linter.

Rule catalog (ids):

* ``blocking-call-under-lock`` — sleeps, ``Future.result()``,
  thread joins, LLM ``.complete*()`` calls, ``add_done_callback``
  (may run the callback inline), or acquiring a *different* lock,
  inside a ``with <lock>:`` body.
* ``bare-lock-acquire`` — ``lock.acquire()`` outside both a ``with``
  statement and a ``try/finally`` that releases it.
* ``executor-never-shutdown`` — a ``ThreadPoolExecutor`` stored on
  ``self`` (or module/function state) with no ``.shutdown()`` call in
  the same scope.
* ``thread-never-joined`` — a ``threading.Thread`` stored on ``self``
  with no ``.join()`` call in the class.
* ``swallowed-future`` — the future returned by ``.submit()``
  discarded as a bare expression statement.
* ``metric-name-drift`` — a metric name outside the documented
  namespaces (see :data:`METRIC_NAMESPACES`).
* ``naive-wall-clock`` — ``time.time()`` / naive ``datetime.now()``
  where spans and durations require monotonic clocks.
* ``timeout-not-propagated`` — unbounded blocking waits
  (``Future.result()``, ``Queue.get()``, ``Condition.wait()``,
  ``Event.wait()`` with no timeout) inside the hot-path packages
  (``repro.serving`` / ``repro.runtime`` / ``repro.execution`` /
  ``repro.cluster``), where every wait must derive its timeout from
  the query's remaining deadline budget.
* ``handler-blocking-io`` — unbounded blocking I/O in the gateway
  package (``repro.gateway``), where every route and handler runs on a
  per-connection server thread: ``.result()`` with no timeout pins a
  connection thread for as long as the query takes, and a zero-arg
  ``.read()``/``.readline()`` on a socket-backed stream trusts the peer
  to ever finish sending.
* ``nonpicklable-task-capture`` — a lambda, nested function, or
  lock-like object passed into a cross-process task envelope
  (``TaskEnvelope``/``ShardOp``/``ShardPlanSpec``/``WorkerConfig``) or
  ``.put()`` onto a queue-shaped channel. Such captures either fail to
  pickle deep inside a queue feeder thread or silently clone state
  that must not be shared across processes; envelopes carry
  declarative JSON-able values only (see :mod:`repro.cluster.envelope`).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set, Tuple

from .engine import FileContext, Finding, Rule, register

__all__ = ["METRIC_NAMESPACES"]

#: Documented metric namespaces (DESIGN.md §9): every metric registered
#: with the process registry must live under one of these prefixes.
METRIC_NAMESPACES: Tuple[str, ...] = (
    "llm.",
    "scheduler.",
    "executor.",
    "serving.",
    "partitioner.",
    "faults.",
    "rag.",
    "analysis.",
    "lifecycle.",
    "cluster.",
    "optimizer.",
    "gateway.",
)

#: Terminal-name heuristic for "this expression is a lock-like object".
_LOCKISH_RE = re.compile(
    r"(?:^|_)(?:lock|locks|cond|condition|mutex|cv|sem|sema|semaphore|slot|slots)$"
)

#: Method names that perform an LLM round-trip.
_LLM_CALLS = {"complete", "complete_json", "complete_many"}

#: Scope boundaries: code inside these runs later, not under the lock.
_DEFERRED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _terminal_name(expr: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute chain, else None."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _is_lockish(expr: ast.AST) -> bool:
    name = _terminal_name(expr)
    if name is None:
        return False
    return bool(_LOCKISH_RE.search(name.strip("_").lower()))


def _expr_key(expr: ast.AST) -> str:
    """Structural identity for comparing lock expressions."""
    return ast.dump(expr)


def _is_number(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, (int, float))


# ----------------------------------------------------------------------
# blocking-call-under-lock
# ----------------------------------------------------------------------


@register
class BlockingCallUnderLock(Rule):
    id = "blocking-call-under-lock"
    description = (
        "A blocking operation (sleep, Future.result, thread join, LLM "
        "call, inline done-callback, second lock) inside a with-lock body "
        "stalls every other thread contending for that lock."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        self._walk(ctx, ctx.tree, held=[], findings=findings)
        return iter(findings)

    # The walk tracks the stack of currently held lock expressions and
    # stops at function/class boundaries (deferred execution).
    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        held: List[str],
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _DEFERRED_SCOPES):
                # A nested def/lambda/class body does not run under the
                # lock; restart lock tracking inside it.
                self._walk(ctx, child, held=[], findings=findings)
                continue
            if isinstance(child, ast.With):
                self._visit_with(ctx, child, held, findings)
                continue
            if held and isinstance(child, ast.Call):
                self._classify_call(ctx, child, held, findings)
            self._walk(ctx, child, held, findings)

    def _visit_with(
        self,
        ctx: FileContext,
        node: ast.With,
        held: List[str],
        findings: List[Finding],
    ) -> None:
        acquired: List[str] = []
        for item in node.items:
            expr = item.context_expr
            if not _is_lockish(expr):
                continue
            key = _expr_key(expr)
            if held and key not in held:
                findings.append(
                    self.finding(
                        ctx,
                        expr,
                        f"acquires '{ast.unparse(expr)}' while already "
                        f"holding a lock (nested locking: hold-time and "
                        f"lock-order hazard)",
                    )
                )
            acquired.append(key)
        for item in node.items:
            # Non-lock context managers may still contain calls to check.
            if held and isinstance(item.context_expr, ast.Call):
                self._classify_call(ctx, item.context_expr, held, findings)
        self._walk(ctx, ast.Module(body=node.body, type_ignores=[]),
                   held + acquired, findings)

    def _classify_call(
        self,
        ctx: FileContext,
        call: ast.Call,
        held: List[str],
        findings: List[Finding],
    ) -> None:
        func = call.func
        name = _terminal_name(func)
        if name is None:
            return
        receiver = func.value if isinstance(func, ast.Attribute) else None

        def flag(reason: str) -> None:
            findings.append(
                self.finding(ctx, call, f"{reason} while holding a lock")
            )

        if name in ("sleep", "_sleeper", "sleeper"):
            flag(f"blocking sleep '{ast.unparse(func)}(...)'")
        elif name == "result" and receiver is not None:
            flag("Future.result() blocks")
        elif name == "join" and receiver is not None:
            if self._looks_like_thread_join(receiver, call):
                flag("thread join blocks")
        elif name == "acquire" and receiver is not None:
            if _expr_key(receiver) not in held:
                flag(f"acquiring '{ast.unparse(receiver)}'")
        elif name == "wait" and receiver is not None:
            # Condition.wait on the held lock *releases* it: allowed.
            if _expr_key(receiver) not in held:
                flag(f"waiting on '{ast.unparse(receiver)}'")
        elif name in _LLM_CALLS and receiver is not None:
            flag(f"LLM call '.{name}()' (network/model latency)")
        elif name == "add_done_callback" and receiver is not None:
            flag("add_done_callback may run the callback inline")

    @staticmethod
    def _looks_like_thread_join(receiver: ast.AST, call: ast.Call) -> bool:
        """Distinguish ``worker.join(timeout)`` from ``sep.join(parts)``."""
        if isinstance(receiver, ast.Constant):
            return False  # "...".join(parts)
        if any(kw.arg == "timeout" for kw in call.keywords):
            return True
        if not call.args and not call.keywords:
            return True  # t.join()
        return len(call.args) == 1 and _is_number(call.args[0])


# ----------------------------------------------------------------------
# bare-lock-acquire
# ----------------------------------------------------------------------


@register
class BareLockAcquire(Rule):
    id = "bare-lock-acquire"
    description = (
        "lock.acquire() without a with-statement or try/finally release "
        "leaks the lock if anything in between raises."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in ast.walk(ctx.tree):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not (isinstance(func, ast.Attribute) and func.attr == "acquire"):
                continue
            if not _is_lockish(func.value):
                continue
            if self._released_in_finally(ctx.tree, call, func.value):
                continue
            yield self.finding(
                ctx,
                call,
                f"'{ast.unparse(func.value)}.acquire()' without a "
                f"with-statement or try/finally release",
            )

    @staticmethod
    def _released_in_finally(
        tree: ast.AST, call: ast.Call, lock_expr: ast.AST
    ) -> bool:
        """True when a try/finally in scope releases the same lock at or
        after the acquire (both 'acquire inside try body' and 'acquire
        immediately before try' idioms)."""
        key = _expr_key(lock_expr)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            releases = any(
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "release"
                and _expr_key(inner.func.value) == key
                for stmt in node.finalbody
                for inner in ast.walk(stmt)
            )
            if not releases:
                continue
            if node.lineno >= call.lineno - 2:
                in_try = any(
                    inner is call
                    for stmt in node.body
                    for inner in ast.walk(stmt)
                )
                if in_try or node.lineno >= call.lineno:
                    return True
        return False


# ----------------------------------------------------------------------
# executor-never-shutdown / thread-never-joined
# ----------------------------------------------------------------------


def _call_names_in(node: ast.AST) -> Set[str]:
    """All ``x.<attr>()`` attribute names called anywhere under node."""
    names: Set[str] = set()
    for inner in ast.walk(node):
        if isinstance(inner, ast.Call) and isinstance(inner.func, ast.Attribute):
            names.add(inner.func.attr)
    return names


def _creates(call: ast.Call, type_names: Set[str]) -> bool:
    name = _terminal_name(call.func)
    return name in type_names


@register
class ExecutorNeverShutdown(Rule):
    id = "executor-never-shutdown"
    description = (
        "A pool executor stored on an object or module with no "
        ".shutdown() in the same scope leaks its worker threads."
    )

    _TYPES = {"ThreadPoolExecutor", "ProcessPoolExecutor"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for scope in ast.walk(ctx.tree):
            if isinstance(scope, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, scope)
        yield from self._check_module(ctx)

    def _assignments(self, scope: ast.AST) -> Iterator[ast.Call]:
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _creates(node.value, self._TYPES):
                    yield node.value

    def _check_scope(self, ctx: FileContext, scope: ast.AST) -> Iterator[Finding]:
        creations = list(self._assignments(scope))
        if not creations:
            return
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Assignments to self.* belong to the class's lifecycle, not
            # the method's; the enclosing ClassDef pass covers them.
            creations = [
                c
                for c in creations
                if not self._assigned_to_self(scope, c)
            ]
            if not creations:
                return
        if "shutdown" in _call_names_in(scope):
            return
        for creation in creations:
            yield self.finding(
                ctx,
                creation,
                "executor created but never .shutdown() in this scope",
            )

    @staticmethod
    def _assigned_to_self(scope: ast.AST, call: ast.Call) -> bool:
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and node.value is call:
                return any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in node.targets
                )
        return False

    def _check_module(self, ctx: FileContext) -> Iterator[Finding]:
        module_assigns = [
            node.value
            for node in ctx.tree.body
            if isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and _creates(node.value, self._TYPES)
        ]
        if module_assigns and "shutdown" not in _call_names_in(ctx.tree):
            for creation in module_assigns:
                yield self.finding(
                    ctx,
                    creation,
                    "module-level executor never .shutdown()",
                )


@register
class ThreadNeverJoined(Rule):
    id = "thread-never-joined"
    description = (
        "A Thread stored on self with no .join() in the class outlives "
        "its owner; shutdown order becomes undefined."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for scope in ast.walk(ctx.tree):
            if not isinstance(scope, ast.ClassDef):
                continue
            creations = [
                node.value
                for node in ast.walk(scope)
                if isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and _creates(node.value, {"Thread"})
                and any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in node.targets
                )
            ]
            if creations and "join" not in _call_names_in(scope):
                for creation in creations:
                    yield self.finding(
                        ctx,
                        creation,
                        "thread stored on self but never .join() in this class",
                    )


# ----------------------------------------------------------------------
# swallowed-future
# ----------------------------------------------------------------------


@register
class SwallowedFuture(Rule):
    id = "swallowed-future"
    description = (
        "The future returned by .submit() is discarded: failures vanish "
        "and nothing observes completion."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "submit"
            ):
                yield self.finding(
                    ctx,
                    call,
                    f"result of '{ast.unparse(call.func)}(...)' discarded; "
                    f"exceptions in the task are silently lost",
                )


# ----------------------------------------------------------------------
# metric-name-drift
# ----------------------------------------------------------------------


@register
class MetricNameDrift(Rule):
    id = "metric-name-drift"
    description = (
        "Metric names must live under the documented namespaces so "
        "dashboards and tests can rely on them."
    )

    _FACTORIES = {"counter", "gauge", "histogram"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in ast.walk(ctx.tree):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in self._FACTORIES
                and call.args
            ):
                continue
            name = self._literal_head(call.args[0])
            if name is None:
                continue
            if not name.startswith(METRIC_NAMESPACES):
                yield self.finding(
                    ctx,
                    call,
                    f"metric name {name!r} outside documented namespaces "
                    f"{'/'.join(ns.rstrip('.') for ns in METRIC_NAMESPACES)}",
                )

    @staticmethod
    def _literal_head(arg: ast.AST) -> Optional[str]:
        """The constant (or constant-prefixed f-string) metric name."""
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.JoinedStr) and arg.values:
            head = arg.values[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                return head.value
        return None


# ----------------------------------------------------------------------
# timeout-not-propagated
# ----------------------------------------------------------------------


@register
class TimeoutNotPropagated(Rule):
    id = "timeout-not-propagated"
    description = (
        "An unbounded blocking wait in a hot-path package ignores the "
        "query's deadline: a wedged dependency wedges the caller forever "
        "instead of failing typed when the budget runs out."
    )

    #: Only the packages on a served query's critical path: every wait
    #: there must be bounded by the remaining deadline budget.
    _HOT_PATHS = ("repro/serving", "repro/runtime", "repro/execution", "repro/cluster")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        normalized = ctx.path.replace("\\", "/")
        if not any(fragment in normalized for fragment in self._HOT_PATHS):
            return
        for call in ast.walk(ctx.tree):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            # Bare wait(...) is concurrent.futures.wait — it takes an
            # explicit timeout parameter and is checked separately below;
            # only attribute calls (obj.wait/obj.result/obj.get) are the
            # Condition/Event/Future/Queue shapes this rule targets.
            if not isinstance(func, ast.Attribute):
                continue
            if self._has_timeout(call):
                continue
            receiver = ast.unparse(func.value)
            if func.attr == "result":
                yield self.finding(
                    ctx,
                    call,
                    f"'{receiver}.result()' without a timeout blocks "
                    f"forever; bound it by the remaining deadline budget "
                    f"(lifecycle.wait_future)",
                )
            elif func.attr == "wait" and _is_waitable(func.value):
                yield self.finding(
                    ctx,
                    call,
                    f"'{receiver}.wait()' without a timeout never observes "
                    f"cancellation or deadline expiry",
                )
            elif func.attr == "get" and not call.args and not call.keywords:
                # Zero-arg .get() only: dict.get(key) and queue.get(block,
                # timeout) both carry arguments, a bare q.get() is the
                # unbounded Queue.get shape.
                if _is_queueish(func.value):
                    yield self.finding(
                        ctx,
                        call,
                        f"'{receiver}.get()' without a timeout blocks "
                        f"forever on an empty queue",
                    )

    @staticmethod
    def _has_timeout(call: ast.Call) -> bool:
        """True when any positional arg or a timeout= keyword bounds the
        wait (Future.result(5) and cond.wait(timeout=x) both count)."""
        if call.args:
            return True
        return any(kw.arg == "timeout" for kw in call.keywords)


def _is_waitable(expr: ast.AST) -> bool:
    """Condition/Event-shaped receiver names (cond, event, _cv, done...)."""
    name = _terminal_name(expr)
    if name is None:
        return False
    return bool(
        re.search(
            r"(?:^|_)(?:cond|condition|cv|event|ready|done|stop|stopped|closed|"
            r"shutdown|latch|barrier|gate|flag)s?$",
            name.strip("_").lower(),
        )
    )


def _is_queueish(expr: ast.AST) -> bool:
    """Queue-shaped receiver names (queue, _q, inbox, work_items...)."""
    name = _terminal_name(expr)
    if name is None:
        return False
    return bool(
        re.search(
            r"(?:^|_)(?:q|queue|queues|inbox|outbox|mailbox|work_items|backlog)$",
            name.strip("_").lower(),
        )
    )


# ----------------------------------------------------------------------
# nonpicklable-task-capture
# ----------------------------------------------------------------------


@register
class NonPicklableTaskCapture(Rule):
    id = "nonpicklable-task-capture"
    description = (
        "A lambda, nested function, or lock-like object handed to a "
        "cross-process task envelope (or .put() onto a queue) either "
        "fails to pickle inside a queue feeder thread or clones state "
        "that must never be shared across processes."
    )

    #: Constructor names whose instances cross the process boundary.
    _ENVELOPE_TYPES = {
        "TaskEnvelope",
        "ShardOp",
        "ShardPlanSpec",
        "WorkerConfig",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for scope in ast.walk(ctx.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                continue
            nested = {
                child.name
                for child in ast.iter_child_nodes(scope)
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            } if not isinstance(scope, ast.Module) else set()
            for call in self._direct_calls(scope):
                name = _terminal_name(call.func)
                if name in self._ENVELOPE_TYPES:
                    yield from self._check_payload(ctx, call, name, nested)
                elif (
                    name == "put"
                    and isinstance(call.func, ast.Attribute)
                    and _is_queueish(call.func.value)
                ):
                    receiver = ast.unparse(call.func.value)
                    yield from self._check_payload(
                        ctx, call, f"{receiver}.put", nested
                    )

    @staticmethod
    def _direct_calls(scope: ast.AST) -> Iterator[ast.Call]:
        """Calls in this scope, not descending into nested functions
        (each nested def is visited as its own scope with its own set
        of sibling closures)."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_payload(
        self, ctx: FileContext, call: ast.Call, target: str, nested: Set[str]
    ) -> Iterator[Finding]:
        values = list(call.args) + [kw.value for kw in call.keywords]
        for value in values:
            for inner in ast.walk(value):
                if isinstance(inner, ast.Lambda):
                    yield self.finding(
                        ctx,
                        inner,
                        f"lambda captured in {target}(...): lambdas do not "
                        f"pickle across the process boundary",
                    )
                elif isinstance(inner, ast.Name) and inner.id in nested:
                    yield self.finding(
                        ctx,
                        inner,
                        f"nested function {inner.id!r} captured in "
                        f"{target}(...): closures do not pickle across "
                        f"the process boundary",
                    )
                elif (
                    isinstance(inner, (ast.Name, ast.Attribute))
                    and _is_lockish(inner)
                ):
                    yield self.finding(
                        ctx,
                        inner,
                        f"lock-like object '{ast.unparse(inner)}' captured "
                        f"in {target}(...): synchronization primitives must "
                        f"not cross the process boundary",
                    )


# ----------------------------------------------------------------------
# naive-wall-clock
# ----------------------------------------------------------------------


@register
class NaiveWallClock(Rule):
    id = "naive-wall-clock"
    description = (
        "Wall-clock reads go backwards under NTP slew; durations and "
        "span timing must use time.monotonic()/perf_counter(), and "
        "timestamps must be timezone-explicit."
    )

    _DATETIME_CALLS = {"now", "utcnow", "today"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in ast.walk(ctx.tree):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = _terminal_name(func.value)
            if func.attr == "time" and receiver == "time":
                yield self.finding(
                    ctx,
                    call,
                    "time.time() is wall-clock; use time.monotonic() or "
                    "time.perf_counter() for durations",
                )
            elif (
                func.attr in self._DATETIME_CALLS
                and receiver in ("datetime", "date")
                and not call.args
                and not call.keywords
            ):
                yield self.finding(
                    ctx,
                    call,
                    f"naive {receiver}.{func.attr}(); pass an explicit "
                    f"timezone (or use monotonic clocks for durations)",
                )


# ----------------------------------------------------------------------
# handler-blocking-io
# ----------------------------------------------------------------------


@register
class HandlerBlockingIo(Rule):
    id = "handler-blocking-io"
    description = (
        "Gateway code runs on per-connection server threads: an "
        "unbounded .result() pins a connection thread for as long as "
        "the query takes, and a zero-arg .read()/.readline() on a "
        "socket-backed stream blocks until the peer decides to finish."
    )

    #: The network front end: everything here is handler-adjacent (route
    #: methods, middleware, SSE pumps all execute on connection threads).
    _GATEWAY_PATHS = ("repro/gateway",)

    #: Receiver names that are socket-backed streams in this package
    #: (BaseHTTPRequestHandler rfile/wfile, http.client responses).
    _STREAM_RE = re.compile(
        r"(?:^|_)(?:rfile|wfile|sock|socket|conn|connection|response|resp|"
        r"stream|fp)s?$"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        normalized = ctx.path.replace("\\", "/")
        if not any(fragment in normalized for fragment in self._GATEWAY_PATHS):
            return
        for call in ast.walk(ctx.tree):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = ast.unparse(func.value)
            if func.attr == "result":
                if TimeoutNotPropagated._has_timeout(call):
                    continue
                yield self.finding(
                    ctx,
                    call,
                    f"'{receiver}.result()' without a timeout on a "
                    f"connection thread: one slow query pins one HTTP "
                    f"connection forever; bound it (sync_timeout_s)",
                )
            elif func.attr in ("read", "readline"):
                if call.args or call.keywords:
                    continue  # bounded read (explicit byte count)
                name = _terminal_name(func.value)
                if name is None or not self._STREAM_RE.search(
                    name.strip("_").lower()
                ):
                    continue
                yield self.finding(
                    ctx,
                    call,
                    f"zero-arg '{receiver}.{func.attr}()' on a socket "
                    f"stream reads until the peer closes; pass an explicit "
                    f"bound (Content-Length or a max line size)",
                )
