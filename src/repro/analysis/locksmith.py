"""Runtime lock-order sanitizer (the dynamic half of ``xlint``).

The static ``lock-order-inversion`` rule predicts deadlocks from the
global acquisition-order graph; this module *observes* the same graph
at runtime. :func:`install` replaces ``threading.Lock`` and
``threading.RLock`` with monitored wrappers that record, per thread,
the order in which lock *sites* are acquired. Every ``(held, new)``
pair becomes an edge in a process-wide order graph; adding an edge
``A -> B`` when a path ``B -> ... -> A`` already exists is an
**observed inversion** — the interleaving that deadlocks has been
demonstrated, even if this run got lucky — and is reported with the
acquisition stacks of *both* directions.

Like lockdep, a single thread is enough: the sanitizer flags the
ordering violation, not the hang. The test suite runs single-threaded
paths through both sides of a would-be deadlock and still fails.

Identity is the **lock creation site** — the first stack frame outside
``threading``/this module at construction, as ``(path, line)``. That is
exactly what the static analysis records for each declared lock
(``self._lock = threading.Lock()`` has one creation line), so static
cycles and runtime inversions join on site keys: :func:`cross_check`
produces the combined report behind ``xlint --runtime-report``.

Opt-in: set ``REPRO_LOCKSMITH=1`` (or pass ``--locksmith`` to pytest;
see ``tests/conftest.py``). Known limits, by design:

* locks created *before* :func:`install` (module import order) are
  unmonitored;
* ``Condition``'s internal waiter locks come from
  ``_thread.allocate_lock`` directly and are never monitored;
* reentrant re-acquisition of an RLock records nothing (only the
  0 -> 1 transition).
"""

from __future__ import annotations

import json
import os
import threading
import traceback
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = [
    "install",
    "uninstall",
    "installed",
    "reset",
    "Inversion",
    "inversions",
    "edges",
    "report",
    "write_report",
    "load_report",
    "cross_check",
]

_ORIG_LOCK = threading.Lock
_ORIG_RLOCK = threading.RLock

#: Frames from these files never count as a creation/acquire site.
#: Matched on the path basename so e.g. test_locksmith.py is NOT opaque.
_OPAQUE_BASENAMES = frozenset({"threading.py", "locksmith.py", "queue.py"})


def _is_opaque(filename: str) -> bool:
    return filename.rsplit("/", 1)[-1].rsplit("\\", 1)[-1] in _OPAQUE_BASENAMES


def _user_site(skip: int = 0) -> Tuple[str, int]:
    """(path, line) of the innermost stack frame outside the lock
    machinery — the site identity shared with the static analysis."""
    for frame in reversed(traceback.extract_stack()):
        if _is_opaque(frame.filename):
            continue
        return frame.filename, frame.lineno or 0
    return "<unknown>", 0


def _stack_summary(limit: int = 12) -> List[str]:
    lines: List[str] = []
    for frame in traceback.extract_stack()[:-2]:
        if _is_opaque(frame.filename):
            continue
        lines.append(f"{frame.filename}:{frame.lineno} in {frame.name}")
    return lines[-limit:]


class Inversion:
    """One observed lock-order inversion: edge ``a -> b`` was recorded
    while the graph already contained a path ``b -> ... -> a``."""

    def __init__(
        self,
        a: str,
        b: str,
        stack: List[str],
        reverse_stack: List[str],
        chain: List[str],
    ):
        self.a = a
        self.b = b
        self.stack = stack  #: acquisition stack of the a -> b direction
        self.reverse_stack = reverse_stack  #: stack of the first b -> ... edge
        self.chain = chain  #: the pre-existing path b -> ... -> a

    def to_dict(self) -> Dict[str, Any]:
        return {
            "a": self.a,
            "b": self.b,
            "stack": self.stack,
            "reverse_stack": self.reverse_stack,
            "chain": self.chain,
        }

    def render(self) -> str:
        lines = [
            f"lock-order inversion: {self.a} -> {self.b} observed, but "
            f"{' -> '.join(self.chain)} was already recorded",
            "  forward acquisition:",
        ]
        lines += [f"    {frame}" for frame in self.stack]
        lines.append("  prior reverse acquisition:")
        lines += [f"    {frame}" for frame in self.reverse_stack]
        return "\n".join(lines)


class _Monitor:
    """Process-wide acquisition-order graph (guarded by a real lock)."""

    def __init__(self) -> None:
        self._guard = _ORIG_LOCK()
        self._tls = threading.local()
        self.sites: Dict[str, Dict[str, Any]] = {}
        self.edge_stacks: Dict[Tuple[str, str], List[str]] = {}
        self.edge_counts: Dict[Tuple[str, str], int] = {}
        self.inversions: List[Inversion] = []

    # -- per-thread held stack ----------------------------------------

    def _held(self) -> List[str]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    # -- graph ---------------------------------------------------------

    def register_site(self, site: Tuple[str, int], kind: str) -> str:
        key = f"{site[0]}:{site[1]}"
        with self._guard:
            self.sites.setdefault(key, {"path": site[0], "line": site[1], "kind": kind})
        return key

    def _path_between(self, start: str, goal: str) -> List[str]:
        """BFS path start -> ... -> goal in the current edge set."""
        adjacency: Dict[str, List[str]] = {}
        for a, b in self.edge_counts:
            adjacency.setdefault(a, []).append(b)
        queue: List[List[str]] = [[start]]
        seen = {start}
        while queue:
            path = queue.pop(0)
            for nxt in sorted(adjacency.get(path[-1], [])):
                if nxt == goal:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(path + [nxt])
        return []

    def note_acquired(self, key: str) -> None:
        held = self._held()
        stack = _stack_summary()
        with self._guard:
            for held_key in held:
                if held_key == key:
                    continue
                edge = (held_key, key)
                first_time = edge not in self.edge_counts
                self.edge_counts[edge] = self.edge_counts.get(edge, 0) + 1
                if first_time:
                    self.edge_stacks[edge] = stack
                    chain = self._path_between(key, held_key)
                    if chain:
                        first_hop = (chain[0], chain[1])
                        self.inversions.append(
                            Inversion(
                                a=held_key,
                                b=key,
                                stack=stack,
                                reverse_stack=self.edge_stacks.get(first_hop, []),
                                chain=chain,
                            )
                        )
        held.append(key)

    def note_released(self, key: str) -> None:
        held = self._held()
        # Locks are usually released LIFO, but nothing enforces it.
        for i in range(len(held) - 1, -1, -1):
            if held[i] == key:
                del held[i]
                break


_monitor: Optional[_Monitor] = None


class _MonitoredLock:
    """``threading.Lock`` wrapper feeding the order monitor."""

    _KIND = "Lock"

    def __init__(self) -> None:
        self._inner = _ORIG_LOCK()
        self._site_key = _monitor.register_site(_user_site(), self._KIND) if _monitor else ""

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got and _monitor is not None:
            _monitor.note_acquired(self._site_key)
        return got

    def release(self) -> None:
        self._inner.release()
        if _monitor is not None:
            _monitor.note_released(self._site_key)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<locksmith {self._KIND} site={self._site_key}>"


class _MonitoredRLock:
    """``threading.RLock`` wrapper: counts reentrancy, implements the
    private protocol ``Condition`` relies on."""

    _KIND = "RLock"

    def __init__(self) -> None:
        self._inner = _ORIG_RLOCK()
        self._site_key = _monitor.register_site(_user_site(), self._KIND) if _monitor else ""
        self._owner: Optional[int] = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            me = threading.get_ident()
            if self._owner == me:
                self._count += 1
            else:
                self._owner = me
                self._count = 1
                if _monitor is not None:
                    _monitor.note_acquired(self._site_key)
        return got

    def release(self) -> None:
        me = threading.get_ident()
        last_out = self._owner == me and self._count == 1
        self._inner.release()
        if last_out:
            self._owner = None
            self._count = 0
            if _monitor is not None:
                _monitor.note_released(self._site_key)
        elif self._owner == me:
            self._count -= 1

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    # Condition's private reacquisition protocol.
    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def _recursion_count(self) -> int:
        # multiprocessing.resource_tracker (3.11+) asks for this.
        return self._count if self._owner == threading.get_ident() else 0

    def _release_save(self) -> Tuple[int, Optional[int]]:
        count, owner = self._count, self._owner
        self._owner = None
        self._count = 0
        if _monitor is not None:
            _monitor.note_released(self._site_key)
        for _ in range(count):
            self._inner.release()
        return count, owner

    def _acquire_restore(self, state: Tuple[int, Optional[int]]) -> None:
        count, owner = state
        for _ in range(count):
            self._inner.acquire()
        self._owner = owner
        self._count = count
        if _monitor is not None:
            _monitor.note_acquired(self._site_key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<locksmith {self._KIND} site={self._site_key}>"


def install() -> None:
    """Patch ``threading.Lock``/``threading.RLock`` with monitored
    wrappers. Idempotent. ``Condition()`` and ``queue.Queue()`` pick the
    wrappers up automatically (they resolve the factories through the
    ``threading`` module at call time)."""
    global _monitor
    if _monitor is not None:
        return
    _monitor = _Monitor()
    threading.Lock = _MonitoredLock  # type: ignore[misc]
    threading.RLock = _MonitoredRLock  # type: ignore[misc]


def uninstall() -> None:
    """Restore the real factories (already-created monitored locks keep
    working; they stop being recorded)."""
    global _monitor
    threading.Lock = _ORIG_LOCK  # type: ignore[misc]
    threading.RLock = _ORIG_RLOCK  # type: ignore[misc]
    _monitor = None


def installed() -> bool:
    return _monitor is not None


def reset() -> None:
    """Forget all recorded edges and inversions (keep monitoring)."""
    global _monitor
    if _monitor is not None:
        _monitor = _Monitor()


def inversions() -> List[Inversion]:
    return list(_monitor.inversions) if _monitor is not None else []


def edges() -> Dict[Tuple[str, str], int]:
    return dict(_monitor.edge_counts) if _monitor is not None else {}


def report() -> Dict[str, Any]:
    """The full observation report (JSON-able): sites, edges, inversions."""
    if _monitor is None:
        return {"installed": False, "sites": {}, "edges": [], "inversions": []}
    with _monitor._guard:
        return {
            "installed": True,
            "sites": dict(_monitor.sites),
            "edges": [
                {
                    "a": a,
                    "b": b,
                    "count": count,
                    "stack": _monitor.edge_stacks.get((a, b), []),
                }
                for (a, b), count in sorted(_monitor.edge_counts.items())
            ],
            "inversions": [inv.to_dict() for inv in _monitor.inversions],
        }


def write_report(path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report(), handle, indent=2, sort_keys=True)


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ---------------------------------------------------------------------------
# Static / runtime cross-check
# ---------------------------------------------------------------------------


def _site_matches(static_path: str, static_line: int, runtime_key: str) -> bool:
    """Join a static lock declaration to a runtime site key
    (``path:line``). Paths may differ in prefix (relative vs absolute);
    compare by line plus trailing path components."""
    runtime_path, _, line_text = runtime_key.rpartition(":")
    try:
        if int(line_text) != static_line:
            return False
    except ValueError:
        return False
    a_parts = static_path.replace("\\", "/").split("/")
    b_parts = runtime_path.replace("\\", "/").split("/")
    tail = min(len(a_parts), len(b_parts), 3)
    return a_parts[-tail:] == b_parts[-tail:]


def cross_check(graph: Any, runtime: Dict[str, Any]) -> Dict[str, Any]:
    """Combine the static lock graph with a runtime locksmith report.

    ``graph`` is a :class:`repro.analysis.crossmod.LockOrderGraph`;
    ``runtime`` a dict from :func:`report`/:func:`load_report`. Returns::

        {
          "confirmed":    [...],  # static cycle edges also observed live
          "static_only":  [...],  # predicted cycles never exercised
          "runtime_only": [...],  # observed inversions the static pass
                                  # missed (dynamic dispatch, getattr...)
          "matched_sites": {static_lock_id: runtime_site_key},
        }
    """
    matched: Dict[str, str] = {}
    for lock_id, decl in graph.locks.items():
        for runtime_key in runtime.get("sites", {}):
            if _site_matches(decl.path, decl.line, runtime_key):
                matched[lock_id] = runtime_key
                break

    runtime_edges: Set[Tuple[str, str]] = {
        (edge["a"], edge["b"]) for edge in runtime.get("edges", [])
    }
    confirmed: List[Dict[str, Any]] = []
    static_only: List[Dict[str, Any]] = []
    for cycle in graph.cycles():
        observed_both_ways = False
        for i, node in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            a_key, b_key = matched.get(node), matched.get(nxt)
            if a_key and b_key and (a_key, b_key) in runtime_edges and (
                (b_key, a_key) in runtime_edges
                or any(
                    inv["a"] == a_key and inv["b"] == b_key
                    or inv["a"] == b_key and inv["b"] == a_key
                    for inv in runtime.get("inversions", [])
                )
            ):
                observed_both_ways = True
                break
        entry = {"cycle": cycle, "edges": [
            edge.via for edge in (graph.edge(cycle[i], cycle[(i + 1) % len(cycle)])
                                  for i in range(len(cycle))) if edge is not None
        ]}
        (confirmed if observed_both_ways else static_only).append(entry)

    # Scope runtime-only findings to locks the static pass actually
    # analyzed: an inversion among unmatched sites (test fixtures,
    # third-party code) is outside the program under analysis and must
    # not fail the cross-check.
    matched_keys = set(matched.values())
    runtime_only = [
        inv
        for inv in runtime.get("inversions", [])
        if inv.get("a") in matched_keys
        and inv.get("b") in matched_keys
        and not _runtime_inversion_predicted(inv, matched_keys, confirmed, matched)
    ]
    return {
        "confirmed": confirmed,
        "static_only": static_only,
        "runtime_only": runtime_only,
        "matched_sites": matched,
    }


def _runtime_inversion_predicted(
    inv: Dict[str, Any],
    matched_keys: Set[str],
    confirmed: List[Dict[str, Any]],
    matched: Dict[str, str],
) -> bool:
    if inv.get("a") not in matched_keys or inv.get("b") not in matched_keys:
        return False
    by_key = {v: k for k, v in matched.items()}
    a_id, b_id = by_key.get(inv["a"]), by_key.get(inv["b"])
    for entry in confirmed:
        if a_id in entry["cycle"] and b_id in entry["cycle"]:
            return True
    return False


def install_from_env(env: Optional[Dict[str, str]] = None) -> bool:
    """Install when ``REPRO_LOCKSMITH`` is set (pytest wiring helper)."""
    env = dict(os.environ) if env is None else env
    if env.get("REPRO_LOCKSMITH", "").strip() not in ("", "0", "false"):
        install()
        return True
    return False
