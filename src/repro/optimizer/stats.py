"""The optimizer's statistics store: learned per-operator run facts.

The observability layer already measures everything an optimizer needs —
per-operator record counts, LLM calls, dollars and wall clock flow into
every :class:`~repro.luna.executor.ExecutionTrace` — but until now those
rollups were only *displayed*. :class:`StatsStore` closes the loop: after
each execution :meth:`StatsStore.observe` folds the trace back into a
persistent table of per-``(operation, signature, model)`` selectivity,
$/row and latency/row, and the cost model reads those learned figures in
preference to its static priors on the next query.

Two details matter for correctness elsewhere in the system:

* **Snapshots.** Serving caches key on optimizer decisions, and a store
  that shifts under a running :class:`~repro.serving.service.QueryService`
  would silently change those decisions between identical queries.
  :meth:`StatsStore.snapshot` returns an immutable, fingerprinted view;
  the service pins one per epoch and folds its fingerprint into the
  plan/result cache keys (see ``repro.serving.cache``).
* **Quantized fingerprints.** The fingerprint hashes *bucketed*
  selectivity and $/row (not raw floats), so one more observation that
  barely moves an estimate does not churn cache keys.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..execution.materialize import stable_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (luna -> optimizer)
    from ..luna.executor import ExecutionTrace
    from ..luna.operators import LogicalPlan, PlanNode

#: Operations whose run facts are worth learning. Sources and scalar
#: tail operators (Count, Math, ...) cost nothing per row.
OBSERVED_OPERATIONS = (
    "QueryIndex",
    "BasicFilter",
    "LlmFilter",
    "LlmExtract",
    "Summarize",
)

#: (operation, signature, model) — the store's key space.
StatsKey = Tuple[str, str, str]


def node_signature(node: "PlanNode") -> str:
    """The learned-statistics signature of a plan node.

    Selectivity is a property of *what* the operator asks, not where it
    sits in a plan: an ``LlmFilter`` keys on its (normalized) condition,
    a ``BasicFilter`` on field+comparator, an ``LlmExtract`` on the
    extracted field. Unknown operations key on the empty signature and
    only contribute to operation-level aggregates.
    """
    op = node.operation
    if op == "LlmFilter":
        condition = str(node.params.get("condition", ""))
        return " ".join(condition.lower().split())
    if op == "BasicFilter":
        return f"{node.params.get('field')}:{node.params.get('op')}"
    if op == "LlmExtract":
        return str(node.params.get("field", ""))
    if op in ("QueryIndex", "FromDocuments"):
        return str(node.params.get("index", ""))
    return ""


def node_model_key(node: "PlanNode") -> str:
    """The model component of a node's stats key.

    A cascaded node's $/row mixes draft and verify calls, so cascade
    observations must not pollute the plain per-model estimates: the
    cascade configuration is folded into the key.
    """
    model = str(node.params.get("model") or "")
    cascade = node.params.get("cascade")
    if isinstance(cascade, dict):
        return (
            f"{model}+cascade:{cascade.get('draft_model')}"
            f"x{cascade.get('draft_votes')}@{cascade.get('confidence_threshold')}"
        )
    return model


@dataclass
class OperatorStats:
    """Accumulated run facts for one stats key (additive counters)."""

    operation: str
    signature: str = ""
    model: str = ""
    observations: int = 0
    rows_in: int = 0
    rows_out: int = 0
    cost_usd: float = 0.0
    llm_calls: int = 0
    duration_s: float = 0.0

    @property
    def selectivity(self) -> Optional[float]:
        """Observed rows_out / rows_in, or None before any rows flowed."""
        if self.rows_in <= 0:
            return None
        return min(1.0, self.rows_out / self.rows_in)

    @property
    def cost_per_row(self) -> Optional[float]:
        """Observed dollars per input row, or None before any rows flowed."""
        if self.rows_in <= 0:
            return None
        return self.cost_usd / self.rows_in

    @property
    def latency_per_row(self) -> Optional[float]:
        """Observed seconds per input row, or None before any rows flowed."""
        if self.rows_in <= 0:
            return None
        return self.duration_s / self.rows_in

    def fold(self, rows_in: int, rows_out: int, cost_usd: float,
             llm_calls: int, duration_s: float) -> None:
        self.observations += 1
        self.rows_in += max(0, rows_in)
        self.rows_out += max(0, rows_out)
        self.cost_usd += max(0.0, cost_usd)
        self.llm_calls += max(0, llm_calls)
        self.duration_s += max(0.0, duration_s)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def _quantize_selectivity(value: Optional[float]) -> Optional[float]:
    """0.05-wide buckets: small drifts don't move the fingerprint."""
    if value is None:
        return None
    return round(round(value * 20.0) / 20.0, 2)


def _quantize_cost(value: Optional[float]) -> Optional[float]:
    """Decade-tenth log buckets for $/row (spans sim-small to sim-large)."""
    if value is None or value <= 0.0:
        return None
    return round(math.log10(value), 1)


class _StatsView:
    """Shared lookup logic over an ``{key: OperatorStats}`` mapping.

    Lookups fall back from the exact ``(op, signature, model)`` entry to
    the operation-level aggregate — a fresh condition still benefits from
    what the store learned about LlmFilters in general.
    """

    _entries: Dict[StatsKey, OperatorStats]

    def lookup(
        self, operation: str, signature: str = "", model: str = ""
    ) -> Optional[OperatorStats]:
        """The exact entry for the key, or None."""
        return self._entries.get((operation, signature, model))

    def _aggregate(self, operation: str) -> Optional[OperatorStats]:
        rows = [s for (op, _, _), s in self._entries.items() if op == operation]
        if not rows:
            return None
        total = OperatorStats(operation=operation)
        for s in rows:
            total.fold(s.rows_in, s.rows_out, s.cost_usd, s.llm_calls, s.duration_s)
        return total

    def selectivity(
        self, operation: str, signature: str = "", model: str = ""
    ) -> Optional[float]:
        """Learned selectivity, exact-key first then operation-level."""
        exact = self.lookup(operation, signature, model)
        if exact is not None and exact.selectivity is not None:
            return exact.selectivity
        # Selectivity is model-independent to first order; accept any
        # model's observation of the same signature before aggregating.
        for (op, sig, _), s in sorted(self._entries.items()):
            if op == operation and sig == signature and s.selectivity is not None:
                return s.selectivity
        aggregate = self._aggregate(operation)
        return aggregate.selectivity if aggregate is not None else None

    def cost_per_row(
        self, operation: str, signature: str = "", model: str = ""
    ) -> Optional[float]:
        """Learned $/row for the exact key (model-specific; no cross-model
        fallback — a sim-small observation says nothing about sim-large)."""
        exact = self.lookup(operation, signature, model)
        if exact is not None and exact.cost_per_row is not None:
            return exact.cost_per_row
        for (op, _, mk), s in sorted(self._entries.items()):
            if op == operation and mk == model and s.cost_per_row is not None:
                return s.cost_per_row
        return None

    def latency_per_row(
        self, operation: str, signature: str = "", model: str = ""
    ) -> Optional[float]:
        """Learned seconds/row under the same fallback rules as $/row."""
        exact = self.lookup(operation, signature, model)
        if exact is not None and exact.latency_per_row is not None:
            return exact.latency_per_row
        for (op, _, mk), s in sorted(self._entries.items()):
            if op == operation and mk == model and s.latency_per_row is not None:
                return s.latency_per_row
        return None

    def fingerprint(self) -> str:
        """Stable fingerprint of the store's quantized decisions."""
        payload = [
            [
                op,
                sig,
                model,
                _quantize_selectivity(s.selectivity),
                _quantize_cost(s.cost_per_row),
            ]
            for (op, sig, model), s in sorted(self._entries.items())
        ]
        return stable_fingerprint(payload)

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "fingerprint": self.fingerprint(),
            "entries": [
                s.as_dict() for _, s in sorted(self._entries.items())
            ],
        }


@dataclass(frozen=True)
class StatsSnapshot(_StatsView):
    """An immutable view of a :class:`StatsStore` at one instant.

    The serving layer optimizes every query of an epoch against the same
    snapshot, so identical questions keep producing identical plans (and
    identical cache keys) no matter how many observations land in the
    live store meanwhile.
    """

    _entries: Dict[StatsKey, OperatorStats] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._entries)


class StatsStore(_StatsView):
    """Thread-safe, optionally disk-backed operator statistics.

    ``path`` enables persistence: an existing file is loaded eagerly and
    :meth:`save` writes the whole table back (atomic rename). Without a
    path the store is memory-only — still useful within one process.
    """

    def __init__(self, path: "Path | str | None" = None, registry=None):
        self.path = Path(path) if path is not None else None
        # Reentrant: the shared _StatsView logic calls back into this
        # class's lock-wrapped lookup() from inside selectivity() etc.
        self._lock = threading.RLock()
        self._entries: Dict[StatsKey, OperatorStats] = {}
        if registry is None:
            from ..observability.metrics import get_registry

            registry = get_registry()
        self.registry = registry
        self._m_observations = registry.counter("optimizer.stats_observations")
        if self.path is not None and self.path.exists():
            self.load()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(self, plan: "LogicalPlan", trace: "ExecutionTrace") -> int:
        """Fold one execution's trace back into the store.

        Pairs plan nodes with trace entries by node index. Replayed
        (journal-recovered) and degraded entries are skipped — zero-cost
        replays and pass-through failures would corrupt the estimates.
        Returns the number of entries folded.
        """
        folded = 0
        with self._lock:
            for entry in trace.entries:
                if entry.replayed or entry.error is not None:
                    continue
                if not 0 <= entry.index < len(plan.nodes):
                    continue
                node = plan.nodes[entry.index]
                if node.operation != entry.operation:
                    continue
                if node.operation not in OBSERVED_OPERATIONS:
                    continue
                key = (
                    node.operation,
                    node_signature(node),
                    node_model_key(node),
                )
                stats = self._entries.get(key)
                if stats is None:
                    stats = OperatorStats(
                        operation=key[0], signature=key[1], model=key[2]
                    )
                    self._entries[key] = stats
                stats.fold(
                    rows_in=entry.records_in,
                    rows_out=entry.records_out,
                    cost_usd=entry.llm_cost_usd,
                    llm_calls=entry.llm_calls,
                    duration_s=entry.duration_s,
                )
                folded += 1
        if folded:
            self._m_observations.inc(folded)
        return folded

    # ------------------------------------------------------------------
    # Lookup (lock-wrapped versions of the shared view logic)
    # ------------------------------------------------------------------

    def lookup(self, operation, signature="", model=""):
        with self._lock:
            return super().lookup(operation, signature, model)

    def selectivity(self, operation, signature="", model=""):
        with self._lock:
            return super().selectivity(operation, signature, model)

    def cost_per_row(self, operation, signature="", model=""):
        with self._lock:
            return super().cost_per_row(operation, signature, model)

    def latency_per_row(self, operation, signature="", model=""):
        with self._lock:
            return super().latency_per_row(operation, signature, model)

    def fingerprint(self) -> str:
        with self._lock:
            return super().fingerprint()

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return super().as_dict()

    def snapshot(self) -> StatsSnapshot:
        """An immutable copy of the current table (see class docs)."""
        with self._lock:
            copied = {
                key: OperatorStats(**stats.as_dict())
                for key, stats in self._entries.items()
            }
        return StatsSnapshot(_entries=copied)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: "Path | str | None" = None) -> Path:
        """Write the table as JSON (atomic rename); returns the path."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("StatsStore has no path; pass one to save()")
        payload = self.as_dict()
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(target)
        return target

    def load(self, path: "Path | str | None" = None) -> int:
        """Replace the table from a JSON file; returns the entry count."""
        source = Path(path) if path is not None else self.path
        if source is None:
            raise ValueError("StatsStore has no path; pass one to load()")
        payload = json.loads(source.read_text())
        entries: Dict[StatsKey, OperatorStats] = {}
        for row in payload.get("entries", []):
            stats = OperatorStats(**row)
            entries[(stats.operation, stats.signature, stats.model)] = stats
        with self._lock:
            self._entries = entries
            return len(self._entries)


__all__ = [
    "OBSERVED_OPERATIONS",
    "OperatorStats",
    "StatsSnapshot",
    "StatsStore",
    "node_model_key",
    "node_signature",
]
