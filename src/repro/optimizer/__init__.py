"""Cost-based adaptive query optimization (DESIGN.md §14).

The paper's plan optimizer "makes trade-offs based on cost vs efficiency"
(§6.1); this package makes those trade-offs *adaptive*: a persistent
:class:`StatsStore` learns per-operator selectivity, $/row and latency
from past execution traces, a :class:`CostModel` turns those figures into
plan estimates, and a :class:`CostBasedOptimizer` rewrites logical plans
— selectivity-ordered predicates, index-side scan filters, cheap-model
draft/verify cascades — emitting an :class:`OptimizerReport` so every
decision stays inspectable (the ``plan-explain`` CLI verb).
"""

from .costmodel import (
    ESCALATION_PRIOR,
    SELECTIVITY_PRIORS,
    TOKEN_PROFILES,
    CostModel,
    NodeEstimate,
    PlanEstimate,
)
from .report import OptimizerReport
from .rewriter import DEFAULT_SOURCE_ROWS, SCAN_FILTER_OPS, CostBasedOptimizer
from .stats import (
    OBSERVED_OPERATIONS,
    OperatorStats,
    StatsSnapshot,
    StatsStore,
    node_model_key,
    node_signature,
)

__all__ = [
    "DEFAULT_SOURCE_ROWS",
    "ESCALATION_PRIOR",
    "OBSERVED_OPERATIONS",
    "SCAN_FILTER_OPS",
    "SELECTIVITY_PRIORS",
    "TOKEN_PROFILES",
    "CostBasedOptimizer",
    "CostModel",
    "NodeEstimate",
    "OperatorStats",
    "OptimizerReport",
    "PlanEstimate",
    "StatsSnapshot",
    "StatsStore",
    "node_model_key",
    "node_signature",
]
