"""The cost-based plan rewriter: statistics-driven plan transformations.

:class:`CostBasedOptimizer` sits between the planner and Luna's executor.
It subsumes the policy-driven :class:`~repro.luna.optimizer.LunaOptimizer`
(string-match substitution, pushdown, fusion, model selection) and layers
three statistics-aware rewrite families on top:

* **selectivity reorder** — within a filter chain, run filters by
  ascending ``cost_per_row / (1 - selectivity)`` (cheapest spend per
  removed record first), using learned selectivities from the
  :class:`~repro.optimizer.stats.StatsStore` when available;
* **scan-filter folding** — a full index scan feeding a structured
  comparison on a catalog schema field becomes an index-side scan filter
  (index-scan instead of post-scan filtering), and the filter node
  degrades to ``Identity``;
* **cascade annotation** — when the policy enables cascades, eligible
  semantic operators are annotated to draft on a cheap model and
  escalate to the policy's (expensive) verify model only below a
  confidence threshold (see ``docs/OPTIMIZER.md`` for the semantics).

Like every Luna rewrite, these never change node count or node indexes —
folded nodes degrade to ``Identity`` in place and reorders swap node
contents between positions — so ``Math`` references like ``#4`` stay
valid and plans remain diffable node by node.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..llm.base import DEFAULT_MODELS
from ..luna.operators import (
    CASCADE_ELIGIBLE_OPERATIONS,
    LogicalPlan,
)
from ..luna.optimizer import (
    BALANCED_POLICY,
    POLICIES,
    LunaOptimizer,
    OptimizerPolicy,
)
from .costmodel import CostModel
from .report import OptimizerReport
from .stats import StatsSnapshot, StatsStore

#: Comparators an index scan can apply while reading (mirrors the
#: executor's ``_comparator`` table).
SCAN_FILTER_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "contains")

#: Cardinality assumed for a scan when the caller knows nothing about
#: the index (the cost model only needs relative magnitudes to rank).
DEFAULT_SOURCE_ROWS = 100.0


class CostBasedOptimizer:
    """Cost-based plan optimization over a policy's baseline rewrites.

    ``policy`` is an :class:`~repro.luna.optimizer.OptimizerPolicy` or a
    name in :data:`~repro.luna.optimizer.POLICIES`. ``stats`` supplies
    learned selectivity/$-per-row figures — a live
    :class:`~repro.optimizer.stats.StatsStore`, a frozen
    :class:`~repro.optimizer.stats.StatsSnapshot` (what the serving layer
    pins per epoch), or ``None`` for priors-only optimization.
    """

    def __init__(
        self,
        policy: "OptimizerPolicy | str" = BALANCED_POLICY,
        stats: "StatsStore | StatsSnapshot | None" = None,
        registry=None,
    ):
        if isinstance(policy, str):
            policy = POLICIES[policy]
        self.policy = policy
        self.stats = stats
        self.base = LunaOptimizer(policy)
        self.cost_model = CostModel(stats)
        if registry is None:
            from ..observability.metrics import get_registry

            registry = get_registry()
        self._m_plans = registry.counter("optimizer.plans_optimized")
        self._m_rewrites = registry.counter("optimizer.rewrites")

    # ------------------------------------------------------------------

    def optimize(
        self, plan: LogicalPlan, schema: Optional[Dict[str, str]] = None
    ) -> Tuple[LogicalPlan, List[str]]:
        """Drop-in :class:`LunaOptimizer` surface (report discarded)."""
        optimized, log, _ = self.optimize_with_report(plan, schema)
        return optimized, log

    def optimize_with_report(
        self,
        plan: LogicalPlan,
        schema: Optional[Dict[str, str]] = None,
        source_rows: Optional[float] = None,
    ) -> Tuple[LogicalPlan, List[str], OptimizerReport]:
        """Return (optimized plan, rewrite log, optimizer report).

        ``source_rows`` is the catalog cardinality of the scanned index;
        it scales the cost estimates in the report (not the rewrite
        decisions, which compare per-row figures).
        """
        rows = float(source_rows) if source_rows else DEFAULT_SOURCE_ROWS
        report = OptimizerReport(
            policy=self.policy.name,
            stats_fingerprint=(
                self.stats.fingerprint() if self.stats is not None else ""
            ),
        )
        report.estimated_before = self.cost_model.estimate_plan(plan, rows)

        plan, log = self.base.optimize(plan, schema)
        log.extend(self._reorder_by_selectivity(plan))
        log.extend(self._fold_scan_filter(plan, schema))
        if self.policy.cascade:
            log.extend(self._annotate_cascades(plan))

        report.rewrites = list(log)
        report.estimated_after = self.cost_model.estimate_plan(plan, rows)
        self._m_plans.inc()
        if log:
            self._m_rewrites.inc(len(log))
        return plan, log, report

    # ------------------------------------------------------------------
    # Rewrite families
    # ------------------------------------------------------------------

    def _reorder_by_selectivity(self, plan: LogicalPlan) -> List[str]:
        """Order each filter chain by ascending $-per-removed-record."""
        log = []
        for chain in self.base._filter_chains(plan):
            contents = [plan.nodes[i] for i in chain]
            ranked = sorted(
                range(len(contents)),
                key=lambda i: (self.cost_model.rank(contents[i]), i),
            )
            if ranked == list(range(len(contents))):
                continue
            reordered = [contents[i] for i in ranked]
            # Snapshot wiring before mutating: reordered aliases the
            # plan's node objects (same discipline as filter pushdown).
            original_inputs = [list(plan.nodes[p].inputs) for p in chain]
            for position, node, inputs in zip(chain, reordered, original_inputs):
                node.inputs = inputs
                plan.nodes[position] = node
            ranks = ", ".join(
                f"{plan.nodes[p].operation}@{self.cost_model.rank(plan.nodes[p]):.4g}"
                for p in chain
            )
            log.append(
                "reorder: filter chain "
                + "->".join(str(i) for i in chain)
                + f" ordered by cost-per-removed-record ({ranks})"
            )
        return log

    def _fold_scan_filter(
        self, plan: LogicalPlan, schema: Optional[Dict[str, str]]
    ) -> List[str]:
        """Fold a structured filter over a full scan into the scan itself.

        Applies when a bare ``QueryIndex`` (no relevance ``query``) has a
        single consumer that is a ``BasicFilter`` on a catalog schema
        field: the scan reads only matching records (index-scan choice)
        and the filter node degrades to ``Identity``.
        """
        log = []
        if not schema:
            return log
        for index, node in enumerate(plan.nodes):
            if node.operation != "QueryIndex" or node.params.get("query"):
                continue
            if node.params.get("filter_field"):
                continue  # already folded
            consumers = plan.consumers_of(index)
            if len(consumers) != 1:
                continue
            candidate = consumers[0]
            consumer = plan.nodes[candidate]
            if consumer.operation != "BasicFilter":
                continue
            if consumer.inputs != [index]:
                continue
            field = consumer.params.get("field")
            op = consumer.params.get("op", "eq")
            if field not in schema or op not in SCAN_FILTER_OPS:
                continue
            value = consumer.params.get("value")
            node.params["filter_field"] = field
            node.params["filter_op"] = op
            node.params["filter_value"] = value
            node.description = (
                f"{node.description} (scan-filtered: {field} {op} {value!r})"
            )
            consumer.operation = "Identity"
            consumer.params = {}
            consumer.description = f"(folded into scan at step {index + 1})"
            log.append(
                f"scan-filter: node {candidate} BasicFilter({field} {op} "
                f"{value!r}) folded into node {index} QueryIndex"
            )
        return log

    def _annotate_cascades(self, plan: LogicalPlan) -> List[str]:
        """Annotate eligible semantic nodes with the policy's cascade."""
        log = []
        draft = self.policy.cascade_draft_model
        for index, node in enumerate(plan.nodes):
            if node.operation not in CASCADE_ELIGIBLE_OPERATIONS:
                continue
            verify = str(node.params.get("model") or "")
            if not verify or verify == draft:
                continue  # a cascade onto itself saves nothing
            if draft not in DEFAULT_MODELS:
                continue  # plancheck flags unknown verify models instead
            node.params["cascade"] = {
                "draft_model": draft,
                "draft_votes": self.policy.cascade_votes,
                "confidence_threshold": self.policy.cascade_confidence_threshold,
            }
            log.append(
                f"cascade: node {index} {node.operation} drafts on {draft} "
                f"x{self.policy.cascade_votes}, escalates to {verify} below "
                f"confidence {self.policy.cascade_confidence_threshold}"
            )
        return log


__all__ = ["DEFAULT_SOURCE_ROWS", "SCAN_FILTER_OPS", "CostBasedOptimizer"]
