"""The optimizer's audit trail: estimated vs actual, rewrite by rewrite.

The paper's explainability tenet applies to the optimizer too: a system
that silently reorders operators or swaps models destroys exactly the
trust the plan-inspection loop builds. Every cost-based optimization
emits an :class:`OptimizerReport` — the rewrites applied, the cost the
model predicted before and after, and (once execution finishes) what the
plan actually cost — attached to ``LunaResult.trace.optimizer_report``
and rendered by the ``plan-explain`` CLI verb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from .costmodel import PlanEstimate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..luna.executor import ExecutionTrace


@dataclass
class OptimizerReport:
    """What the cost-based optimizer did to one plan, and how it scored."""

    policy: str = ""
    #: Fingerprint of the stats snapshot the decisions were made against
    #: ("" when the optimizer ran priors-only). The serving layer folds
    #: this same fingerprint into its cache keys.
    stats_fingerprint: str = ""
    #: Human-readable rewrite log (same lines as ``optimization_log``).
    rewrites: List[str] = field(default_factory=list)
    estimated_before: Optional[PlanEstimate] = None
    estimated_after: Optional[PlanEstimate] = None
    #: Filled in after execution by :meth:`record_actuals`.
    actual_cost_usd: Optional[float] = None
    actual_llm_calls: Optional[int] = None
    actual_duration_s: Optional[float] = None

    # ------------------------------------------------------------------

    @property
    def estimated_saving_usd(self) -> float:
        """Predicted spend removed by the rewrites (>= 0 on success)."""
        if self.estimated_before is None or self.estimated_after is None:
            return 0.0
        return self.estimated_before.cost_usd - self.estimated_after.cost_usd

    def record_actuals(self, trace: "ExecutionTrace") -> None:
        """Fold the executed trace's real numbers into the report."""
        self.actual_cost_usd = trace.total_cost_usd()
        self.actual_llm_calls = trace.total_llm_calls()
        self.actual_duration_s = sum(e.duration_s for e in trace.entries)

    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "stats_fingerprint": self.stats_fingerprint,
            "rewrites": list(self.rewrites),
            "estimated_before": (
                self.estimated_before.as_dict()
                if self.estimated_before is not None
                else None
            ),
            "estimated_after": (
                self.estimated_after.as_dict()
                if self.estimated_after is not None
                else None
            ),
            "estimated_saving_usd": round(self.estimated_saving_usd, 6),
            "actual_cost_usd": self.actual_cost_usd,
            "actual_llm_calls": self.actual_llm_calls,
            "actual_duration_s": self.actual_duration_s,
        }

    def render(self) -> str:
        """Human-readable account for explain output and the CLI."""
        lines = [f"Optimizer report (policy={self.policy or 'none'})"]
        if self.stats_fingerprint:
            lines.append(f"  stats fingerprint: {self.stats_fingerprint}")
        if self.rewrites:
            lines.append("  rewrites:")
            lines.extend(f"    - {rewrite}" for rewrite in self.rewrites)
        else:
            lines.append("  rewrites: (none applied)")
        if self.estimated_before is not None and self.estimated_after is not None:
            before, after = self.estimated_before, self.estimated_after
            lines.append(
                f"  estimated cost: ${before.cost_usd:.4f} -> "
                f"${after.cost_usd:.4f} "
                f"(saving ${self.estimated_saving_usd:.4f})"
            )
            lines.append(
                f"  estimated latency: {before.latency_s:.2f}s -> "
                f"{after.latency_s:.2f}s"
            )
        if self.actual_cost_usd is not None:
            drift = ""
            if self.estimated_after is not None and self.actual_cost_usd > 0:
                ratio = self.estimated_after.cost_usd / self.actual_cost_usd
                drift = f" (estimate/actual = {ratio:.2f}x)"
            lines.append(
                f"  actual: ${self.actual_cost_usd:.4f}, "
                f"{self.actual_llm_calls} LLM call(s), "
                f"{self.actual_duration_s:.2f}s{drift}"
            )
        return "\n".join(lines)


__all__ = ["OptimizerReport"]
