"""The optimizer benchmark (E16): equal answers at a fraction of the cost.

Three arms execute the *same hand-built plan* — the LLM predicate written
first, the free structured predicate second, the worst reasonable
authoring order — each in a **fresh** context so the LLM response cache
cannot flatter any arm:

* ``cold`` — the plan exactly as written (rule rewrites disabled),
  quality-tier models. This is the paper's single fixed plan.
* ``optimized`` — :class:`~repro.optimizer.CostBasedOptimizer` under the
  ``quality`` policy: predicate reorder + scan-filter folding, *same*
  models. Per-document verdicts are a pure function of (model, prompt),
  and conjunctive filters commute, so the answer must be byte-identical
  to ``cold`` while the LLM sees only the rows the structured predicate
  lets through.
* ``cascade`` — the ``cascade`` policy: the same reordered plan, but the
  semantic filter drafts on ``sim-small`` and escalates to ``sim-large``
  below the confidence threshold. Verdicts are no longer byte-comparable
  to ``cold`` (a cascade can out-vote a rare expensive-model slip), so
  this arm is gated on the simulation's actual ground truth: the concept
  lexicon applied to each indexed document.

Results land in ``BENCH_optimizer.json``. Gates (enforced by the
benchmark test): ``optimized`` byte-identical to ``cold`` and both
``optimized`` and ``cascade`` at most ``0.6x`` the cold cost, with the
cascade answer equal to ground truth — on both corpora.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

from ..datagen import generate_earnings_corpus, generate_ntsb_corpus
from ..llm.knowledge import condition_holds
from ..luna import Luna
from ..luna.operators import LogicalPlan, PlanNode
from ..luna.optimizer import QUALITY_POLICY, LunaOptimizer
from ..partitioner import ArynPartitioner
from ..sycamore import SycamoreContext

import dataclasses

#: The cold arm: quality-tier models, every rewrite disabled — the plan
#: runs exactly as authored.
COLD_POLICY = dataclasses.replace(
    QUALITY_POLICY,
    name="cold",
    enable_pushdown=False,
    enable_string_substitution=False,
)

NTSB_SCHEMA = {
    "state": "string",
    "incident_year": "int",
    "weather_related": "bool",
    "injuries_fatal": "int",
    "aircraft": "string",
}
EARNINGS_SCHEMA = {
    "company": "string",
    "sector": "string",
    "fiscal_year": "int",
    "revenue_musd": "float",
    "revenue_growth_pct": "float",
    "ceo_changed": "bool",
}


def _node(operation: str, inputs=(), **params) -> PlanNode:
    return PlanNode(operation=operation, inputs=list(inputs), params=params)


def _ntsb_plan() -> LogicalPlan:
    return LogicalPlan(
        nodes=[
            _node("QueryIndex", index="ntsb"),
            _node("LlmFilter", [0], condition="caused by wind"),
            _node("BasicFilter", [1], field="incident_year", op="eq", value=2022),
            _node("Count", [2]),
        ]
    )


def _earnings_plan() -> LogicalPlan:
    return LogicalPlan(
        nodes=[
            _node("QueryIndex", index="earnings"),
            _node("LlmFilter", [0], condition="lowered guidance"),
            _node("BasicFilter", [1], field="sector", op="eq", value="Cloud"),
            _node("Count", [2]),
        ]
    )


WORKLOADS: Dict[str, Dict[str, Any]] = {
    "ntsb": {
        "question": "How many 2022 incidents were caused by wind?",
        "index": "ntsb",
        "schema": NTSB_SCHEMA,
        "plan": _ntsb_plan,
        "condition": "caused by wind",
        "predicate": lambda props: props.get("incident_year") == 2022,
    },
    "earnings": {
        "question": "How many Cloud companies lowered guidance?",
        "index": "earnings",
        "schema": EARNINGS_SCHEMA,
        "plan": _earnings_plan,
        "condition": "lowered guidance",
        "predicate": lambda props: props.get("sector") == "Cloud",
    },
}


def _build_context(
    workload: str,
    n_ntsb: int,
    n_earnings: int,
    ntsb_seed: int,
    earnings_seed: int,
    parallelism: int,
    ctx_seed: int,
) -> SycamoreContext:
    """One corpus partitioned, extracted (sim-large) and indexed.

    Extraction is deterministic in (model, prompt, seed), so every arm of
    a workload sees byte-identical index properties.
    """
    ctx = SycamoreContext(parallelism=parallelism, seed=ctx_seed)
    if workload == "ntsb":
        _, raws = generate_ntsb_corpus(n_ntsb, seed=ntsb_seed)
        schema, index = NTSB_SCHEMA, "ntsb"
    else:
        _, raws = generate_earnings_corpus(n_earnings, seed=earnings_seed)
        schema, index = EARNINGS_SCHEMA, "earnings"
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(schema, model="sim-large")
        .write.index(index)
    )
    return ctx


def _canonical(result: Any) -> str:
    """Answer + provenance, byte-comparable (mirrors the CLI's idiom)."""
    return json.dumps(
        {
            "answer": result.answer,
            "supporting_documents": sorted(result.trace.supporting_documents()),
        },
        sort_keys=True,
        default=repr,
    )


def _ground_truth(
    ctx: SycamoreContext,
    index: str,
    condition: str,
    predicate: Callable[[dict], bool],
) -> int:
    """The count a noise-free filter would produce on this exact index:
    concept-lexicon verdict on the document text, structured predicate on
    the extracted properties (the same inputs the executed plan sees)."""
    return sum(
        1
        for doc in ctx.catalog.get(index).all_documents()
        if predicate(doc.properties) and condition_holds(
            condition, doc.text_representation()
        )
    )


def _run_arm(
    arm: str,
    workload: str,
    spec: Dict[str, Any],
    *,
    n_ntsb: int,
    n_earnings: int,
    ntsb_seed: int,
    earnings_seed: int,
    parallelism: int,
    ctx_seed: int,
) -> Dict[str, Any]:
    ctx = _build_context(
        workload, n_ntsb, n_earnings, ntsb_seed, earnings_seed,
        parallelism, ctx_seed,
    )
    try:
        if arm == "cold":
            luna = Luna(ctx, optimizer=LunaOptimizer(COLD_POLICY))
        else:
            luna = Luna(ctx, policy="quality" if arm == "optimized" else "cascade")
        result = luna.execute_plan(spec["question"], spec["index"], spec["plan"]())
        report = result.trace.optimizer_report
        llm_rows: Optional[int] = next(
            (
                entry.records_in
                for entry in result.trace.entries
                if entry.operation == "LlmFilter"
            ),
            None,
        )
        row = {
            "answer": result.answer,
            "canonical": _canonical(result),
            "cost_usd": result.trace.total_cost_usd(),
            "llm_calls": result.trace.total_llm_calls(),
            "llm_rows": llm_rows,
            "duration_s": sum(e.duration_s for e in result.trace.entries),
            "rewrites": list(report.rewrites) if report is not None else [],
        }
        if arm == "cascade":
            row["ground_truth"] = _ground_truth(
                ctx, spec["index"], spec["condition"], spec["predicate"]
            )
        return row
    finally:
        ctx.close()


def run_optimizer_benchmark(
    n_ntsb: int = 80,
    n_earnings: int = 60,
    ntsb_seed: int = 21,
    earnings_seed: int = 22,
    parallelism: int = 8,
    ctx_seed: int = 9,
    max_cost_ratio: float = 0.6,
) -> Dict[str, Any]:
    """Run all arms over all workloads; returns the results document."""
    workloads: Dict[str, Any] = {}
    for name, spec in WORKLOADS.items():
        arms: Dict[str, Any] = {}
        for arm in ("cold", "optimized", "cascade"):
            arms[arm] = _run_arm(
                arm, name, spec,
                n_ntsb=n_ntsb, n_earnings=n_earnings,
                ntsb_seed=ntsb_seed, earnings_seed=earnings_seed,
                parallelism=parallelism, ctx_seed=ctx_seed,
            )
        cold_cost = arms["cold"]["cost_usd"]
        workloads[name] = {
            "question": spec["question"],
            "condition": spec["condition"],
            "arms": arms,
            "byte_identical": arms["optimized"]["canonical"]
            == arms["cold"]["canonical"],
            "optimized_cost_ratio": arms["optimized"]["cost_usd"] / cold_cost,
            "cascade_cost_ratio": arms["cascade"]["cost_usd"] / cold_cost,
            "cascade_answer_correct": arms["cascade"]["answer"]
            == arms["cascade"]["ground_truth"],
        }
    return {
        "corpora": {"ntsb": n_ntsb, "earnings": n_earnings},
        "gates": {"max_cost_ratio": max_cost_ratio},
        "workloads": workloads,
    }


def render_results(results: Dict[str, Any]) -> str:
    """Paper-style table of the benchmark results."""
    lines: List[str] = []
    header = (
        f"{'workload':<10} {'arm':<10} {'answer':>6} {'$':>9} "
        f"{'calls':>6} {'llm rows':>8} {'ratio':>6}"
    )
    for name, row in results["workloads"].items():
        lines.append(f"=== {name}: {row['question']} ===")
        lines.append(header)
        lines.append("-" * len(header))
        cold_cost = row["arms"]["cold"]["cost_usd"]
        for arm, stats in row["arms"].items():
            ratio = stats["cost_usd"] / cold_cost if cold_cost else 0.0
            lines.append(
                f"{name:<10} {arm:<10} {stats['answer']:>6} "
                f"{stats['cost_usd']:>9.4f} {stats['llm_calls']:>6} "
                f"{str(stats['llm_rows']):>8} {ratio:>6.2f}"
            )
        lines.append(
            f"byte-identical: {row['byte_identical']}  "
            f"cascade ground truth: {row['arms']['cascade']['ground_truth']}  "
            f"cascade correct: {row['cascade_answer_correct']}"
        )
        lines.append("")
    return "\n".join(lines)
