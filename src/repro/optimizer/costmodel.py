"""The optimizer's cost model: per-node and per-plan estimates.

Estimates follow the classic System-R shape specialised to LLM
analytics (see ``docs/OPTIMIZER.md`` for the worked equations):

* rows(node)   — input cardinality times a selectivity estimate, learned
  from the :class:`~repro.optimizer.stats.StatsStore` when available and
  falling back to static priors;
* cost(node)   — rows_in x $/row, where $/row for a semantic operator is
  the model's token prices applied to a per-operation token profile (or
  the learned figure when the store has seen this key);
* latency(node) — rows_in x s/row from the model's virtual latency curve
  divided by the operator's parallelism hint.

Cascade-annotated nodes cost ``votes x draft_$/row + escalation_rate x
verify_$/row``: every row pays the (cheap) draft votes and only the
low-confidence fraction pays the expensive verify model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..llm.base import DEFAULT_MODELS, ModelSpec, get_model_spec
from ..luna.operators import LogicalPlan, PlanNode
from .stats import StatsSnapshot, StatsStore, node_model_key, node_signature

#: Static selectivity priors, used until the stats store has observed a
#: key. Filters keep less than half their input on typical analytics
#: questions; everything else passes records through.
SELECTIVITY_PRIORS: Dict[str, float] = {
    "BasicFilter": 0.5,
    "LlmFilter": 0.4,
    "Distinct": 0.8,
}

#: Per-call token profile of each semantic operator: (input, output).
#: Input tokens are dominated by the document section; outputs range
#: from a yes/no verdict to a JSON object to a paragraph.
TOKEN_PROFILES: Dict[str, "tuple[int, int]"] = {
    "LlmFilter": (400, 2),
    "LlmExtract": (420, 24),
    "Summarize": (1600, 150),
}

#: Prior probability that a cascade's draft votes disagree (or return an
#: unusable value) and the row escalates to the verify model. Learned
#: per-key observations override this through the stats store.
ESCALATION_PRIOR = 0.12

#: Scalar producers: their output is one value, not a record stream.
_SCALAR_OUTPUT = ("Count", "Aggregate", "Math", "Summarize")


@dataclass
class NodeEstimate:
    """Estimated execution profile of one plan node."""

    index: int
    operation: str
    rows_in: float
    rows_out: float
    cost_usd: float
    latency_s: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "operation": self.operation,
            "rows_in": round(self.rows_in, 2),
            "rows_out": round(self.rows_out, 2),
            "cost_usd": round(self.cost_usd, 6),
            "latency_s": round(self.latency_s, 3),
        }


@dataclass
class PlanEstimate:
    """Estimated cost of a whole plan (sum over nodes)."""

    nodes: List[NodeEstimate] = field(default_factory=list)

    @property
    def cost_usd(self) -> float:
        return sum(n.cost_usd for n in self.nodes)

    @property
    def latency_s(self) -> float:
        return sum(n.latency_s for n in self.nodes)

    def as_dict(self) -> Dict[str, object]:
        return {
            "cost_usd": round(self.cost_usd, 6),
            "latency_s": round(self.latency_s, 3),
            "nodes": [n.as_dict() for n in self.nodes],
        }


class CostModel:
    """Estimates node and plan costs from priors + learned statistics.

    ``stats`` is any object with the :class:`~repro.optimizer.stats.StatsStore`
    lookup surface (the live store, a frozen snapshot, or None for
    priors-only estimation). ``default_model`` prices semantic nodes the
    optimizer has not annotated yet.
    """

    def __init__(
        self,
        stats: "StatsStore | StatsSnapshot | None" = None,
        default_model: str = "sim-large",
    ):
        self.stats = stats
        self.default_model = default_model

    # ------------------------------------------------------------------

    def _spec(self, model: Optional[str]) -> ModelSpec:
        name = model or self.default_model
        if name not in DEFAULT_MODELS:
            name = self.default_model
        return get_model_spec(name)

    def selectivity(self, node: PlanNode) -> float:
        """Fraction of input rows the node emits (1.0 = pass-through)."""
        learned = None
        if self.stats is not None:
            learned = self.stats.selectivity(
                node.operation, node_signature(node), node_model_key(node)
            )
        if learned is not None:
            return learned
        return SELECTIVITY_PRIORS.get(node.operation, 1.0)

    def cost_per_row(self, node: PlanNode) -> float:
        """Estimated dollars per input row."""
        learned = None
        if self.stats is not None:
            learned = self.stats.cost_per_row(
                node.operation, node_signature(node), node_model_key(node)
            )
        if learned is not None:
            return learned
        profile = TOKEN_PROFILES.get(node.operation)
        if profile is None:
            return 0.0
        in_tok, out_tok = profile
        cascade = node.params.get("cascade")
        verify = self._spec(node.params.get("model"))
        if isinstance(cascade, dict):
            draft = self._spec(cascade.get("draft_model"))
            votes = int(cascade.get("draft_votes", 2))
            threshold = float(cascade.get("confidence_threshold", 0.0))
            escalation = self._escalation_rate(threshold)
            return (
                votes * draft.cost_usd(in_tok, out_tok)
                + escalation * verify.cost_usd(in_tok, out_tok)
            )
        return verify.cost_usd(in_tok, out_tok)

    @staticmethod
    def _escalation_rate(confidence_threshold: float) -> float:
        """Expected fraction of rows that pay the verify model."""
        if confidence_threshold <= 0.0:
            return 0.0
        if confidence_threshold > 1.0:
            return 1.0
        return ESCALATION_PRIOR

    def latency_per_row(self, node: PlanNode) -> float:
        """Estimated seconds per input row (before parallelism)."""
        learned = None
        if self.stats is not None:
            learned = self.stats.latency_per_row(
                node.operation, node_signature(node), node_model_key(node)
            )
        if learned is not None:
            return learned
        profile = TOKEN_PROFILES.get(node.operation)
        if profile is None:
            return 0.0
        in_tok, out_tok = profile
        cascade = node.params.get("cascade")
        verify = self._spec(node.params.get("model"))
        if isinstance(cascade, dict):
            draft = self._spec(cascade.get("draft_model"))
            votes = int(cascade.get("draft_votes", 2))
            threshold = float(cascade.get("confidence_threshold", 0.0))
            escalation = self._escalation_rate(threshold)
            return (
                votes * draft.latency_s(in_tok, out_tok)
                + escalation * verify.latency_s(in_tok, out_tok)
            )
        return verify.latency_s(in_tok, out_tok)

    # ------------------------------------------------------------------

    def rank(self, node: PlanNode) -> float:
        """Predicate-ordering rank: cost per unit of records removed.

        The classic optimal ordering for independent commuting predicates
        runs them by ascending ``cost_per_row / (1 - selectivity)`` — the
        cheapest most-selective filter first. A free structured filter
        ranks 0 and always leads; a pass-through filter (selectivity 1)
        ranks effectively infinite and trails.
        """
        removed = max(1e-6, 1.0 - self.selectivity(node))
        return self.cost_per_row(node) / removed

    def estimate_node(self, node: PlanNode, rows_in: float, index: int = 0) -> NodeEstimate:
        """Estimate one node given its input cardinality."""
        selectivity = self.selectivity(node)
        if node.operation in _SCALAR_OUTPUT:
            rows_out = 1.0
        elif node.operation in ("Limit", "TopK"):
            k = node.params.get("k", 1)
            try:
                rows_out = min(rows_in, float(k))
            except (TypeError, ValueError):
                rows_out = rows_in
        elif node.operation in ("BasicFilter", "LlmFilter", "Distinct"):
            rows_out = rows_in * selectivity
        else:
            rows_out = rows_in
        # Summarize makes one collection-level call, not one per record.
        effective_rows = 1.0 if node.operation == "Summarize" else rows_in
        parallelism = max(1, int(node.params.get("parallelism", 1) or 1))
        return NodeEstimate(
            index=index,
            operation=node.operation,
            rows_in=rows_in,
            rows_out=rows_out,
            cost_usd=effective_rows * self.cost_per_row(node),
            latency_s=effective_rows * self.latency_per_row(node) / parallelism,
        )

    def estimate_plan(self, plan: LogicalPlan, source_rows: float) -> PlanEstimate:
        """Estimate a whole plan, propagating cardinalities along edges.

        ``source_rows`` is the catalog cardinality of the index a bare
        ``QueryIndex`` scans (a relevance-retrieval scan caps at ``k``).
        """
        estimate = PlanEstimate()
        rows_out: Dict[int, float] = {}
        for index, node in enumerate(plan.nodes):
            if node.operation in ("QueryIndex", "FromDocuments"):
                if node.operation == "FromDocuments":
                    rows = float(len(node.params.get("doc_ids", []) or []))
                elif node.params.get("query"):
                    rows = min(source_rows, float(node.params.get("k", 20)))
                else:
                    rows = source_rows
                    if node.params.get("filter_field"):
                        # A scan-time filter applies BasicFilter selectivity.
                        rows *= SELECTIVITY_PRIORS["BasicFilter"]
                rows_in = 0.0
                node_estimate = self.estimate_node(node, rows_in, index)
                node_estimate.rows_out = rows
            else:
                rows_in = rows_out[node.inputs[0]] if node.inputs else 0.0
                node_estimate = self.estimate_node(node, rows_in, index)
            rows_out[index] = node_estimate.rows_out
            estimate.nodes.append(node_estimate)
        return estimate


__all__ = [
    "ESCALATION_PRIOR",
    "SELECTIVITY_PRIORS",
    "TOKEN_PROFILES",
    "CostModel",
    "NodeEstimate",
    "PlanEstimate",
]
