"""Answer grading for the Luna micro-benchmark (E2).

The paper grades Luna's 18 answers into *correct*, *plausible*, and
*incorrect* (13/3/2, "72% accuracy"). We reproduce that three-way rubric
with typed graders: numeric answers allow a tight tolerance for correct
and a loose one for plausible; categorical answers must match exactly
(plausible when the expected value appears among returned alternatives);
list answers grade by overlap; summaries grade by coverage of expected
key items.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence


class Grade(enum.Enum):
    """The paper's three-way grading rubric."""
    CORRECT = "correct"
    PLAUSIBLE = "plausible"
    INCORRECT = "incorrect"


@dataclass(frozen=True)
class GradeResult:
    """A grade plus a short explanatory note."""
    grade: Grade
    note: str = ""


def _extract_number(value: Any) -> Optional[float]:
    if isinstance(value, bool):
        return float(int(value))
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        match = re.search(r"-?\d+(?:\.\d+)?", value.replace(",", ""))
        if match:
            return float(match.group())
    if isinstance(value, (list, tuple)) and len(value) == 1:
        return _extract_number(value[0])
    return None


def grade_numeric(
    answer: Any,
    expected: float,
    correct_rel_tol: float = 0.02,
    plausible_rel_tol: float = 0.20,
    correct_abs_tol: float = 0.5,
) -> GradeResult:
    """Numeric grading with relative (or small absolute) tolerance."""
    value = _extract_number(answer)
    if value is None:
        return GradeResult(Grade.INCORRECT, f"no number in {answer!r}")
    error = abs(value - expected)
    scale = max(abs(expected), 1e-9)
    if error <= correct_abs_tol or error / scale <= correct_rel_tol:
        return GradeResult(Grade.CORRECT, f"{value} vs {expected}")
    if error / scale <= plausible_rel_tol:
        return GradeResult(Grade.PLAUSIBLE, f"{value} vs {expected}")
    return GradeResult(Grade.INCORRECT, f"{value} vs {expected}")


def grade_exact_count(answer: Any, expected: int, plausible_slack: int = 2) -> GradeResult:
    """Counting questions: exact for correct, off-by-slack for plausible."""
    value = _extract_number(answer)
    if value is None:
        return GradeResult(Grade.INCORRECT, f"no number in {answer!r}")
    if int(round(value)) == expected:
        return GradeResult(Grade.CORRECT, f"{int(value)} vs {expected}")
    if abs(int(round(value)) - expected) <= plausible_slack:
        return GradeResult(Grade.PLAUSIBLE, f"{int(value)} vs {expected}")
    return GradeResult(Grade.INCORRECT, f"{int(value)} vs {expected}")


def _flatten_categorical(answer: Any) -> List[str]:
    if isinstance(answer, str):
        return [answer]
    if isinstance(answer, (list, tuple)):
        values = []
        for item in answer:
            if isinstance(item, (list, tuple)) and item:
                values.append(str(item[0]))
            else:
                values.append(str(item))
        return values
    if isinstance(answer, dict):
        return [str(k) for k in answer]
    return [str(answer)]


def grade_categorical(answer: Any, expected: "str | Sequence[str]") -> GradeResult:
    """One expected value (or any of several acceptable values).

    Correct when the first returned value matches; plausible when a match
    appears among later alternatives (e.g. a TopK that ranked the right
    value second).
    """
    acceptable = [expected] if isinstance(expected, str) else list(expected)
    acceptable_norm = {str(v).strip().lower() for v in acceptable}
    values = [v.strip().lower() for v in _flatten_categorical(answer)]
    if not values:
        return GradeResult(Grade.INCORRECT, "empty answer")
    if values[0] in acceptable_norm:
        return GradeResult(Grade.CORRECT, f"{values[0]!r}")
    if any(v in acceptable_norm for v in values[1:]):
        return GradeResult(Grade.PLAUSIBLE, f"expected among alternatives: {values!r}")
    # A textual answer may embed the expected token.
    if any(a in values[0] for a in acceptable_norm):
        return GradeResult(Grade.CORRECT, f"{values[0]!r} contains expected")
    return GradeResult(Grade.INCORRECT, f"{values!r} vs {acceptable!r}")


def grade_list(
    answer: Any,
    expected: Sequence[str],
    correct_jaccard: float = 0.8,
    plausible_jaccard: float = 0.4,
) -> GradeResult:
    """Set-valued answers graded by Jaccard overlap."""
    got = {v.strip().lower() for v in _flatten_categorical(answer) if v and v != "None"}
    want = {str(v).strip().lower() for v in expected}
    if not want:
        return GradeResult(Grade.CORRECT if not got else Grade.PLAUSIBLE, "empty expectation")
    if not got:
        return GradeResult(Grade.INCORRECT, "empty answer")
    jaccard = len(got & want) / len(got | want)
    if jaccard >= correct_jaccard:
        return GradeResult(Grade.CORRECT, f"jaccard={jaccard:.2f}")
    if jaccard >= plausible_jaccard:
        return GradeResult(Grade.PLAUSIBLE, f"jaccard={jaccard:.2f}")
    return GradeResult(Grade.INCORRECT, f"jaccard={jaccard:.2f}")


def grade_summary(
    answer: Any,
    expected_mentions: Sequence[str],
    correct_coverage: float = 0.7,
    plausible_coverage: float = 0.3,
) -> GradeResult:
    """Summaries graded by coverage of expected key phrases."""
    text = str(answer).lower()
    if not expected_mentions:
        return GradeResult(Grade.CORRECT, "nothing required")
    hits = sum(1 for phrase in expected_mentions if str(phrase).lower() in text)
    coverage = hits / len(expected_mentions)
    if coverage >= correct_coverage:
        return GradeResult(Grade.CORRECT, f"coverage={coverage:.2f}")
    if coverage >= plausible_coverage:
        return GradeResult(Grade.PLAUSIBLE, f"coverage={coverage:.2f}")
    return GradeResult(Grade.INCORRECT, f"coverage={coverage:.2f}")
