"""Evaluation machinery: detection metrics, answer grading, suite harnesses."""

from .detection import (
    DetectionMetrics,
    GroundTruthBox,
    IOU_THRESHOLDS,
    PredictedBox,
    boxes_from_pages,
    evaluate_detections,
)
from .grading import (
    Grade,
    GradeResult,
    grade_categorical,
    grade_exact_count,
    grade_list,
    grade_numeric,
    grade_summary,
)
from .harness import (
    QuestionOutcome,
    SuiteReport,
    grade_answer,
    run_luna_suite,
    run_rag_suite,
)

__all__ = [
    "DetectionMetrics",
    "Grade",
    "GradeResult",
    "GroundTruthBox",
    "IOU_THRESHOLDS",
    "PredictedBox",
    "QuestionOutcome",
    "SuiteReport",
    "boxes_from_pages",
    "evaluate_detections",
    "grade_answer",
    "grade_categorical",
    "grade_exact_count",
    "grade_list",
    "grade_numeric",
    "grade_summary",
    "run_luna_suite",
    "run_rag_suite",
]
