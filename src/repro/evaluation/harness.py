"""Question-suite harnesses: run Luna or RAG over a benchmark suite and
grade the answers into correct / plausible / incorrect (the paper's
three-way rubric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..datagen.questions import BenchmarkQuestion
from ..luna.luna import Luna
from ..rag.pipeline import RagPipeline
from .grading import (
    Grade,
    GradeResult,
    grade_categorical,
    grade_exact_count,
    grade_list,
    grade_numeric,
    grade_summary,
)


@dataclass
class QuestionOutcome:
    """One graded question: answer, expectation, grade, and cost."""
    qid: str
    question: str
    kind: str
    expected: Any
    answer: Any
    grade: Grade
    note: str = ""
    llm_calls: int = 0
    llm_cost_usd: float = 0.0
    error: Optional[str] = None


@dataclass
class SuiteReport:
    """Aggregated outcomes over a question suite."""

    system: str
    outcomes: List[QuestionOutcome] = field(default_factory=list)

    def count(self, grade: Grade) -> int:
        """Number of matching records."""
        return sum(1 for o in self.outcomes if o.grade is grade)

    @property
    def correct(self) -> int:
        """Count of outcomes graded correct."""
        return self.count(Grade.CORRECT)

    @property
    def plausible(self) -> int:
        """Count of outcomes graded plausible."""
        return self.count(Grade.PLAUSIBLE)

    @property
    def incorrect(self) -> int:
        """Count of outcomes graded incorrect."""
        return self.count(Grade.INCORRECT)

    @property
    def accuracy(self) -> float:
        """Fraction graded correct (the paper's headline 72% metric)."""
        if not self.outcomes:
            return 0.0
        return self.correct / len(self.outcomes)

    def render(self) -> str:
        """Render a human-readable text view."""
        lines = [
            f"=== {self.system}: {self.correct} correct, "
            f"{self.plausible} plausible, {self.incorrect} incorrect "
            f"of {len(self.outcomes)} ({self.accuracy:.0%} accuracy) ==="
        ]
        for outcome in self.outcomes:
            answer_text = repr(outcome.answer)
            if len(answer_text) > 60:
                answer_text = answer_text[:57] + "..."
            lines.append(
                f"[{outcome.grade.value:<10}] {outcome.qid}: {outcome.question}"
            )
            lines.append(
                f"             answer={answer_text} expected={outcome.expected!r} "
                f"({outcome.note})"
            )
        return "\n".join(lines)


def grade_answer(question: BenchmarkQuestion, answer: Any) -> GradeResult:
    """Dispatch to the right grader for the question's answer kind."""
    kind = question.kind
    kwargs = dict(question.grade_kwargs)
    if kind == "count":
        return grade_exact_count(answer, int(question.expected), **kwargs)
    if kind in ("percentage", "numeric"):
        return grade_numeric(answer, float(question.expected), **kwargs)
    if kind == "categorical":
        return grade_categorical(answer, question.expected)
    if kind == "list":
        return grade_list(answer, question.expected, **kwargs)
    if kind == "summary":
        return grade_summary(answer, question.expected, **kwargs)
    raise ValueError(f"unknown question kind {kind!r}")


def run_luna_suite(
    luna: Luna,
    questions: List[BenchmarkQuestion],
    system_name: str = "luna",
) -> SuiteReport:
    """Run every question through Luna and grade the answers.

    Failures (planning or execution errors) grade as incorrect — a system
    that cannot answer has not answered.
    """
    report = SuiteReport(system=system_name)
    for question in questions:
        try:
            result = luna.query(question.question, index=question.index)
            graded = grade_answer(question, result.answer)
            report.outcomes.append(
                QuestionOutcome(
                    qid=question.qid,
                    question=question.question,
                    kind=question.kind,
                    expected=question.expected,
                    answer=result.answer,
                    grade=graded.grade,
                    note=graded.note,
                    llm_calls=result.trace.total_llm_calls(),
                    llm_cost_usd=result.trace.total_cost_usd(),
                )
            )
        except Exception as exc:  # noqa: BLE001 - benchmark must survive failures
            report.outcomes.append(
                QuestionOutcome(
                    qid=question.qid,
                    question=question.question,
                    kind=question.kind,
                    expected=question.expected,
                    answer=None,
                    grade=Grade.INCORRECT,
                    note="execution failed",
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
    return report


def run_rag_suite(
    rag: Dict[str, RagPipeline],
    questions: List[BenchmarkQuestion],
    system_name: str = "rag",
) -> SuiteReport:
    """Run the suite through RAG pipelines keyed by index name."""
    report = SuiteReport(system=system_name)
    for question in questions:
        pipeline = rag.get(question.index)
        if pipeline is None:
            report.outcomes.append(
                QuestionOutcome(
                    qid=question.qid,
                    question=question.question,
                    kind=question.kind,
                    expected=question.expected,
                    answer=None,
                    grade=Grade.INCORRECT,
                    note=f"no pipeline for index {question.index!r}",
                )
            )
            continue
        try:
            answer = pipeline.answer(question.question)
            graded = grade_answer(question, answer.answer)
            report.outcomes.append(
                QuestionOutcome(
                    qid=question.qid,
                    question=question.question,
                    kind=question.kind,
                    expected=question.expected,
                    answer=answer.answer,
                    grade=graded.grade,
                    note=graded.note,
                )
            )
        except Exception as exc:  # noqa: BLE001
            report.outcomes.append(
                QuestionOutcome(
                    qid=question.qid,
                    question=question.question,
                    kind=question.kind,
                    expected=question.expected,
                    answer=None,
                    grade=Grade.INCORRECT,
                    note="execution failed",
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
    return report
