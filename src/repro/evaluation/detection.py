"""COCO-style object-detection evaluation (mAP / mAR).

The paper reports the Aryn Partitioner's layout model at mAP 0.602 /
mAR 0.743 on the DocLayNet benchmark versus 0.344 / 0.466 for a cloud
vendor API (§4). This module implements the genuine evaluation protocol:
average precision with 101-point interpolation, averaged over the IoU
thresholds 0.50:0.05:0.95 and over categories, plus mean average recall
at up to 100 detections per image. Only the detector under evaluation is
simulated; the metric machinery is real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..docmodel.bbox import BoundingBox

IOU_THRESHOLDS = tuple(round(0.5 + 0.05 * i, 2) for i in range(10))


@dataclass(frozen=True)
class GroundTruthBox:
    """One annotated ground-truth region."""
    image_id: str
    label: str
    bbox: BoundingBox


@dataclass(frozen=True)
class PredictedBox:
    """One scored predicted region."""
    image_id: str
    label: str
    bbox: BoundingBox
    score: float


@dataclass
class DetectionMetrics:
    """Evaluation result: overall means plus per-category APs."""

    mean_ap: float
    mean_ar: float
    ap_per_category: Dict[str, float]
    ar_per_category: Dict[str, float]

    def render(self) -> str:
        """Render a human-readable text view."""
        lines = [f"mAP@[.5:.95] = {self.mean_ap:.3f}   mAR@100 = {self.mean_ar:.3f}"]
        for label in sorted(self.ap_per_category):
            lines.append(
                f"  {label:<16} AP={self.ap_per_category[label]:.3f} "
                f"AR={self.ar_per_category[label]:.3f}"
            )
        return "\n".join(lines)


def evaluate_detections(
    ground_truth: Sequence[GroundTruthBox],
    predictions: Sequence[PredictedBox],
    max_detections: int = 100,
    iou_thresholds: Sequence[float] = IOU_THRESHOLDS,
) -> DetectionMetrics:
    """Compute mAP@[.5:.95] and mAR over all categories present in GT."""
    categories = sorted({gt.label for gt in ground_truth})
    ap_per_category: Dict[str, float] = {}
    ar_per_category: Dict[str, float] = {}
    for label in categories:
        gts = [g for g in ground_truth if g.label == label]
        preds = [p for p in predictions if p.label == label]
        aps = []
        recalls = []
        for threshold in iou_thresholds:
            ap, recall = _ap_single(gts, preds, threshold, max_detections)
            aps.append(ap)
            recalls.append(recall)
        ap_per_category[label] = float(np.mean(aps))
        ar_per_category[label] = float(np.mean(recalls))
    if not categories:
        return DetectionMetrics(0.0, 0.0, {}, {})
    return DetectionMetrics(
        mean_ap=float(np.mean(list(ap_per_category.values()))),
        mean_ar=float(np.mean(list(ar_per_category.values()))),
        ap_per_category=ap_per_category,
        ar_per_category=ar_per_category,
    )


def _ap_single(
    gts: List[GroundTruthBox],
    preds: List[PredictedBox],
    iou_threshold: float,
    max_detections: int,
) -> Tuple[float, float]:
    """(AP, recall) for one category at one IoU threshold."""
    if not gts:
        return 0.0, 0.0
    # Cap detections per image (COCO's maxDets), then sort globally.
    by_image: Dict[str, List[PredictedBox]] = {}
    for pred in preds:
        by_image.setdefault(pred.image_id, []).append(pred)
    capped: List[PredictedBox] = []
    for image_preds in by_image.values():
        image_preds.sort(key=lambda p: -p.score)
        capped.extend(image_preds[:max_detections])
    capped.sort(key=lambda p: -p.score)

    gt_by_image: Dict[str, List[GroundTruthBox]] = {}
    for gt in gts:
        gt_by_image.setdefault(gt.image_id, []).append(gt)
    matched: Dict[str, List[bool]] = {
        image_id: [False] * len(boxes) for image_id, boxes in gt_by_image.items()
    }

    tp = np.zeros(len(capped))
    fp = np.zeros(len(capped))
    for i, pred in enumerate(capped):
        candidates = gt_by_image.get(pred.image_id, [])
        best_iou = 0.0
        best_j = -1
        for j, gt in enumerate(candidates):
            if matched[pred.image_id][j]:
                continue
            iou = pred.bbox.iou(gt.bbox)
            if iou > best_iou:
                best_iou = iou
                best_j = j
        if best_j >= 0 and best_iou >= iou_threshold:
            matched[pred.image_id][best_j] = True
            tp[i] = 1.0
        else:
            fp[i] = 1.0

    if len(capped) == 0:
        return 0.0, 0.0
    cum_tp = np.cumsum(tp)
    cum_fp = np.cumsum(fp)
    recalls = cum_tp / len(gts)
    precisions = cum_tp / np.maximum(cum_tp + cum_fp, 1e-12)
    ap = _interpolated_ap(recalls, precisions)
    final_recall = float(recalls[-1])
    return ap, final_recall


def _interpolated_ap(recalls: np.ndarray, precisions: np.ndarray) -> float:
    """COCO 101-point interpolated average precision."""
    # Precision envelope: make precision monotonically non-increasing.
    envelope = np.maximum.accumulate(precisions[::-1])[::-1]
    sample_points = np.linspace(0.0, 1.0, 101)
    sampled = np.zeros_like(sample_points)
    for i, point in enumerate(sample_points):
        mask = recalls >= point
        if mask.any():
            sampled[i] = envelope[mask].max()
    return float(sampled.mean())


def boxes_from_pages(pages, doc_id: str) -> List[GroundTruthBox]:
    """Ground-truth boxes of a raw document's pages, keyed per page."""
    boxes = []
    for page_number, page in enumerate(pages):
        for box in page.boxes:
            boxes.append(
                GroundTruthBox(
                    image_id=f"{doc_id}:{page_number}",
                    label=box.label,
                    bbox=box.bbox,
                )
            )
    return boxes
