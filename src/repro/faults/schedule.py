"""Deterministic fault schedules.

A :class:`FaultSchedule` is a pure function from a call index to a
:class:`FaultDecision`. Every decision is derived from ``(seed, index)``
alone, so the same seed always yields the same injected-fault sequence —
the property that makes chaos tests reproducible: a failure observed
under seed 42 can be replayed exactly, regardless of thread timing.

Fault kinds model the weather a hosted-LLM client actually sees:

``transient``
    A 5xx / connection-reset style error (retryable).
``rate_limit``
    HTTP 429 with a retry-after hint.
``latency``
    The call succeeds but only after a latency spike.
``malformed``
    The call succeeds but the output is corrupted (truncated JSON).
``timeout``
    The request exceeds its deadline (retryable).
``brownout``
    A timed window of call indexes during which *every* call fails
    transiently — a backend outage in miniature.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

#: All injectable fault kinds, in the order rates are applied.
FAULT_KINDS: Tuple[str, ...] = (
    "transient",
    "rate_limit",
    "latency",
    "malformed",
    "timeout",
)

BROWNOUT = "brownout"


@dataclass(frozen=True)
class BrownoutWindow:
    """A half-open ``[start, end)`` range of call indexes that all fail."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid brownout window [{self.start}, {self.end})")

    def covers(self, index: int) -> bool:
        """Whether the call index falls inside the window."""
        return self.start <= index < self.end


@dataclass(frozen=True)
class FaultDecision:
    """What (if anything) to inject for one call.

    ``kind`` is one of :data:`FAULT_KINDS`, :data:`BROWNOUT`, or ``None``
    for a clean call. ``latency_s`` is only meaningful for ``latency``
    decisions.
    """

    index: int
    kind: Optional[str] = None
    latency_s: float = 0.0

    @property
    def is_fault(self) -> bool:
        """Whether any fault is injected for this call."""
        return self.kind is not None


def _index_rng(seed: int, index: int) -> random.Random:
    # Mix the seed and index into one 64-bit stream id. splitmix64-style
    # scrambling keeps neighbouring indexes decorrelated.
    x = (seed * 0x9E3779B97F4A7C15 + index + 1) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    return random.Random(x)


@dataclass(frozen=True)
class FaultSchedule:
    """Seeded, order-independent fault plan.

    Rates are per-call probabilities applied in :data:`FAULT_KINDS`
    order; at most one fault fires per call. Brownout windows override
    the probabilistic draw entirely.
    """

    seed: int = 0
    transient_rate: float = 0.0
    rate_limit_rate: float = 0.0
    latency_rate: float = 0.0
    malformed_rate: float = 0.0
    timeout_rate: float = 0.0
    latency_spike_s: float = 0.25
    rate_limit_retry_after_s: float = 0.01
    brownouts: Tuple[BrownoutWindow, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in (
            "transient_rate",
            "rate_limit_rate",
            "latency_rate",
            "malformed_rate",
            "timeout_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        # Accept plain (start, end) tuples for convenience.
        windows = tuple(
            w if isinstance(w, BrownoutWindow) else BrownoutWindow(*w)
            for w in self.brownouts
        )
        object.__setattr__(self, "brownouts", windows)

    def decision(self, index: int) -> FaultDecision:
        """The (deterministic) fault decision for one call index."""
        for window in self.brownouts:
            if window.covers(index):
                return FaultDecision(index=index, kind=BROWNOUT)
        rng = _index_rng(self.seed, index)
        draw = rng.random()
        cumulative = 0.0
        for kind in FAULT_KINDS:
            cumulative += getattr(self, f"{kind}_rate")
            if draw < cumulative:
                latency = self.latency_spike_s if kind == "latency" else 0.0
                return FaultDecision(index=index, kind=kind, latency_s=latency)
        return FaultDecision(index=index)

    def decisions(self, count: int) -> Sequence[FaultDecision]:
        """The first ``count`` decisions (useful for audits and tests)."""
        return [self.decision(i) for i in range(count)]
