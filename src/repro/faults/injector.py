"""Fault injection: wrap LLM clients and task functions with a schedule.

The :class:`FaultInjector` assigns each intercepted call the next call
index (thread-safe) and consults its :class:`FaultSchedule` for what to
inject. Everything injected is logged, so a chaos run ends with an exact,
replayable account of the weather it survived.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ..llm.base import LLMClient, LLMResponse
from ..llm.errors import LLMTimeoutError, RateLimitError, TransientLLMError
from ..observability.metrics import MetricsRegistry, get_registry
from .schedule import BROWNOUT, FaultDecision, FaultSchedule


class InjectedFault(RuntimeError):
    """A non-LLM task failure injected by the harness."""

    def __init__(self, decision: FaultDecision):
        super().__init__(f"injected {decision.kind} fault (call {decision.index})")
        self.decision = decision


class FaultInjector:
    """Hands out fault decisions and keeps the injection ledger.

    One injector can wrap several clients/functions; they share the call
    counter, so the schedule's indexes cover the whole run.

    ``registry`` (default: the process registry) receives aggregate
    ``faults.intercepted_calls`` / ``faults.injected.<kind>`` counters;
    the per-instance ``injected`` dict and ``log`` stay the exact,
    replayable ledger.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        sleeper: Callable[[float], None] = time.sleep,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.schedule = schedule
        self._sleeper = sleeper
        self._lock = threading.Lock()
        self._calls = 0
        self.registry = registry if registry is not None else get_registry()
        self._m_calls = self.registry.counter("faults.intercepted_calls")
        #: Injected-fault counts by kind.
        self.injected: Dict[str, int] = {}
        #: Every injected decision, in call order.
        self.log: List[FaultDecision] = []

    @property
    def calls(self) -> int:
        """Total calls intercepted so far."""
        with self._lock:
            return self._calls

    def next_decision(self) -> FaultDecision:
        """Claim the next call index and return its fault decision."""
        with self._lock:
            index = self._calls
            self._calls += 1
        self._m_calls.inc()
        decision = self.schedule.decision(index)
        if decision.is_fault:
            with self._lock:
                self.injected[decision.kind] = self.injected.get(decision.kind, 0) + 1
                self.log.append(decision)
            self.registry.counter(f"faults.injected.{decision.kind}").inc()
        return decision

    def report(self) -> str:
        """One-line human-readable injection summary."""
        with self._lock:
            total = sum(self.injected.values())
            parts = ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.injected.items())
            )
        return f"{total} faults injected over {self.calls} calls ({parts or 'none'})"

    # ------------------------------------------------------------------

    def wrap_llm(self, client: LLMClient) -> "FaultyLLM":
        """An LLMClient that injects this schedule in front of ``client``."""
        return FaultyLLM(client, self, sleeper=self._sleeper)

    def wrap_fn(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Wrap an executor task fn so scheduled calls fail with
        :class:`InjectedFault` (latency spikes sleep, malformed is a no-op
        for plain functions)."""

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            decision = self.next_decision()
            if decision.kind in ("transient", BROWNOUT, "timeout", "rate_limit"):
                raise InjectedFault(decision)
            if decision.kind == "latency":
                self._sleeper(decision.latency_s)
            return fn(*args, **kwargs)

        return wrapped


class FaultyLLM(LLMClient):
    """LLMClient decorator that injects scheduled faults.

    Failures are raised *before* the backend is consulted (the request
    never "arrived"); latency spikes and output corruption happen after,
    on an otherwise-successful response.
    """

    def __init__(
        self,
        backend: LLMClient,
        injector: FaultInjector,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        self.backend = backend
        self.injector = injector
        self._sleeper = sleeper

    def complete(
        self,
        prompt: str,
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        temperature: float = 0.0,
    ) -> LLMResponse:
        """Complete via the backend, subject to the fault schedule."""
        decision = self.injector.next_decision()
        if decision.kind in ("transient", BROWNOUT):
            raise TransientLLMError(
                f"injected {decision.kind} failure (call {decision.index})"
            )
        if decision.kind == "rate_limit":
            raise RateLimitError(
                f"injected rate limit (call {decision.index})",
                retry_after_s=self.injector.schedule.rate_limit_retry_after_s,
            )
        if decision.kind == "timeout":
            raise LLMTimeoutError(f"injected timeout (call {decision.index})")

        response = self.backend.complete(
            prompt,
            model=model,
            max_output_tokens=max_output_tokens,
            temperature=temperature,
        )
        if decision.kind == "latency":
            self._sleeper(decision.latency_s)
            return LLMResponse(
                text=response.text,
                model=response.model,
                usage=response.usage,
                latency_s=response.latency_s + decision.latency_s,
                cached=response.cached,
            )
        if decision.kind == "malformed":
            return LLMResponse(
                text=_corrupt(response.text),
                model=response.model,
                usage=response.usage,
                latency_s=response.latency_s,
                cached=response.cached,
            )
        return response


def _corrupt(text: str) -> str:
    """Damage a completion the way truncation in flight does: cut it and
    leave an unterminated fragment behind."""
    if not text:
        return '{"truncat'
    cut = max(1, (len(text) * 2) // 3)
    return text[:cut]
