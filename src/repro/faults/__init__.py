"""Deterministic fault injection for chaos testing.

The resilience claims of the paper ("Sycamore handles retries and
model-specific details", §5.2) are only worth anything if they are
exercised. This package injects the failure modes of hosted-LLM backends
— transient errors, rate-limit storms, latency spikes, malformed output,
timeouts, and timed brownouts — reproducibly from a seed, so every chaos
test can be replayed call-for-call.

Typical wiring::

    from repro.faults import BrownoutWindow, FaultInjector, FaultSchedule

    schedule = FaultSchedule(seed=42, transient_rate=0.2,
                             brownouts=[BrownoutWindow(10, 20)])
    injector = FaultInjector(schedule)
    flaky = injector.wrap_llm(backend)       # an LLMClient
    llm = ReliableLLM(flaky)                 # the layer under test
    ...
    print(injector.report())

Invariants:

* **Seeded determinism.** The fault decision for call *i* is a pure
  function of ``(seed, i)`` (splitmix64-style mixing) — no RNG state is
  shared between calls, so the injected sequence is identical across
  runs and independent of thread interleaving. What *can* vary under
  concurrency is which caller claims which index; the per-index
  decisions themselves never do. Adding a draw per decision or reusing
  a stateful RNG would break replayability.
* **Decision log is the ground truth.** :class:`FaultInjector` claims
  indexes under a lock and appends every decision to a replayable log;
  ``report()`` and the per-kind counters derive from it. The
  ``faults.*`` metrics published to the global registry
  (:mod:`repro.observability`) are process-wide aggregates across all
  injectors and may exceed any single injector's ledger.
"""

from .injector import FaultInjector, FaultyLLM, InjectedFault
from .schedule import (
    BROWNOUT,
    BrownoutWindow,
    FAULT_KINDS,
    FaultDecision,
    FaultSchedule,
)

__all__ = [
    "BROWNOUT",
    "BrownoutWindow",
    "FAULT_KINDS",
    "FaultDecision",
    "FaultInjector",
    "FaultSchedule",
    "FaultyLLM",
    "InjectedFault",
]
