"""Deterministic fault injection for chaos testing.

The resilience claims of the paper ("Sycamore handles retries and
model-specific details", §5.2) are only worth anything if they are
exercised. This package injects the failure modes of hosted-LLM backends
— transient errors, rate-limit storms, latency spikes, malformed output,
timeouts, and timed brownouts — reproducibly from a seed, so every chaos
test can be replayed call-for-call.

Typical wiring::

    from repro.faults import BrownoutWindow, FaultInjector, FaultSchedule

    schedule = FaultSchedule(seed=42, transient_rate=0.2,
                             brownouts=[BrownoutWindow(10, 20)])
    injector = FaultInjector(schedule)
    flaky = injector.wrap_llm(backend)       # an LLMClient
    llm = ReliableLLM(flaky)                 # the layer under test
    ...
    print(injector.report())
"""

from .injector import FaultInjector, FaultyLLM, InjectedFault
from .schedule import (
    BROWNOUT,
    BrownoutWindow,
    FAULT_KINDS,
    FaultDecision,
    FaultSchedule,
)

__all__ = [
    "BROWNOUT",
    "BrownoutWindow",
    "FAULT_KINDS",
    "FaultDecision",
    "FaultInjector",
    "FaultSchedule",
    "FaultyLLM",
    "InjectedFault",
]
