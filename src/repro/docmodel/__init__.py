"""Hierarchical, multi-modal document data model (paper §5.1).

Public surface:

* :class:`BoundingBox` — page geometry.
* :class:`Element` / :class:`TableElement` / :class:`ImageElement` — typed
  leaf chunks; :data:`ELEMENT_TYPES` is the layout label vocabulary.
* :class:`Table` / :class:`TableCell` — recovered table structure.
* :class:`Node` / :class:`Document` — the semantic tree DocSets hold.
* :class:`RawDocument` et al. — the PDF stand-in consumed by the partitioner.
"""

from .bbox import BoundingBox, reading_order, union_all
from .document import Document, Node
from .elements import (
    ELEMENT_TYPES,
    Element,
    ImageElement,
    TableElement,
    make_element,
    new_id,
)
from .raw import PAGE_HEIGHT, PAGE_WIDTH, RawBox, RawDocument, RawPage, RawTextRun
from .table import Table, TableCell, merge_tables

__all__ = [
    "BoundingBox",
    "Document",
    "ELEMENT_TYPES",
    "Element",
    "ImageElement",
    "Node",
    "PAGE_HEIGHT",
    "PAGE_WIDTH",
    "RawBox",
    "RawDocument",
    "RawPage",
    "RawTextRun",
    "Table",
    "TableCell",
    "TableElement",
    "make_element",
    "merge_tables",
    "new_id",
    "reading_order",
    "union_all",
]
