"""Axis-aligned bounding boxes used throughout the document model.

Pages use a normalized coordinate system where ``(0, 0)`` is the top-left
corner. Boxes are stored as ``(x1, y1, x2, y2)`` with ``x1 <= x2`` and
``y1 <= y2``. All geometry needed by the partitioner (IoU for detection
evaluation, intersection for table-cell/text matching, union for merging
detections) lives here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle in page coordinates.

    Coordinates are floats; the box is closed on all sides. A degenerate box
    (zero width or height) is permitted and has zero area.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise ValueError(
                f"invalid box: ({self.x1}, {self.y1}, {self.x2}, {self.y2})"
            )

    @classmethod
    def from_xywh(cls, x: float, y: float, w: float, h: float) -> "BoundingBox":
        """Build a box from top-left corner plus width and height."""
        if w < 0 or h < 0:
            raise ValueError(f"negative extent: w={w}, h={h}")
        return cls(x, y, x + w, y + h)

    @classmethod
    def from_tuple(cls, coords: Sequence[float]) -> "BoundingBox":
        """Build a box from an ``(x1, y1, x2, y2)`` sequence."""
        if len(coords) != 4:
            raise ValueError(f"expected 4 coordinates, got {len(coords)}")
        return cls(*coords)

    @property
    def width(self) -> float:
        """Horizontal extent of the box."""
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        """Vertical extent of the box."""
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        """Area of the box (zero for degenerate boxes)."""
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        """The box's center point as ``(x, y)``."""
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def to_tuple(self) -> Tuple[float, float, float, float]:
        """Return the coordinates as an ``(x1, y1, x2, y2)`` tuple."""
        return (self.x1, self.y1, self.x2, self.y2)

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        return {"x1": self.x1, "y1": self.y1, "x2": self.x2, "y2": self.y2}

    @classmethod
    def from_dict(cls, data: dict) -> "BoundingBox":
        """Rebuild from a dictionary produced by ``to_dict``."""
        return cls(data["x1"], data["y1"], data["x2"], data["y2"])

    def intersection(self, other: "BoundingBox") -> Optional["BoundingBox"]:
        """Return the overlapping region, or ``None`` if the boxes are disjoint."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 < x1 or y2 < y1:
            return None
        return BoundingBox(x1, y1, x2, y2)

    def intersects(self, other: "BoundingBox") -> bool:
        """True when the two boxes share any point."""
        return self.intersection(other) is not None

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Return the smallest box containing both boxes."""
        return BoundingBox(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def iou(self, other: "BoundingBox") -> float:
        """Intersection over union, the detection-evaluation overlap metric."""
        inter = self.intersection(other)
        if inter is None:
            return 0.0
        inter_area = inter.area
        union_area = self.area + other.area - inter_area
        if union_area <= 0.0:
            # Two coincident degenerate boxes overlap perfectly by convention.
            return 1.0 if self == other else 0.0
        return inter_area / union_area

    def contains_point(self, x: float, y: float) -> bool:
        """True when the point lies inside or on the boundary."""
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def contains_box(self, other: "BoundingBox") -> bool:
        """True when ``other`` lies entirely within this box."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def overlap_fraction(self, other: "BoundingBox") -> float:
        """Fraction of *this* box's area covered by ``other`` (0 for degenerate)."""
        inter = self.intersection(other)
        if inter is None or self.area <= 0.0:
            return 0.0
        return inter.area / self.area

    def expand(self, margin: float) -> "BoundingBox":
        """Grow (or shrink, for negative margin) the box on every side.

        Shrinking collapses to the center point rather than inverting.
        """
        cx, cy = self.center
        x1 = min(self.x1 - margin, cx)
        y1 = min(self.y1 - margin, cy)
        x2 = max(self.x2 + margin, cx)
        y2 = max(self.y2 + margin, cy)
        return BoundingBox(x1, y1, x2, y2)

    def translate(self, dx: float, dy: float) -> "BoundingBox":
        """Return the box shifted by ``(dx, dy)``."""
        return BoundingBox(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def scale(self, sx: float, sy: float) -> "BoundingBox":
        """Scale about the origin (useful for page-size normalization)."""
        if sx < 0 or sy < 0:
            raise ValueError("scale factors must be non-negative")
        return BoundingBox(self.x1 * sx, self.y1 * sy, self.x2 * sx, self.y2 * sy)

    def distance_to(self, other: "BoundingBox") -> float:
        """Euclidean gap between the two boxes (0 when they touch or overlap)."""
        dx = max(other.x1 - self.x2, self.x1 - other.x2, 0.0)
        dy = max(other.y1 - self.y2, self.y1 - other.y2, 0.0)
        return math.hypot(dx, dy)


def union_all(boxes: Iterable[BoundingBox]) -> BoundingBox:
    """Smallest box containing every box in ``boxes``.

    Raises ``ValueError`` on an empty iterable — there is no identity box in
    an unbounded coordinate system.
    """
    it: Iterator[BoundingBox] = iter(boxes)
    try:
        result = next(it)
    except StopIteration:
        raise ValueError("union_all of empty iterable") from None
    for box in it:
        result = result.union(box)
    return result


def reading_order(boxes: Sequence[BoundingBox], row_tolerance: float = 0.01) -> list:
    """Indices of ``boxes`` sorted in natural reading order (rows, then columns).

    Boxes whose top edges are within ``row_tolerance`` of each other are
    treated as the same visual row and ordered left-to-right.
    """
    indexed = sorted(range(len(boxes)), key=lambda i: (boxes[i].y1, boxes[i].x1))
    result: list = []
    row: list = []
    row_top: Optional[float] = None
    for idx in indexed:
        top = boxes[idx].y1
        if row_top is None or abs(top - row_top) <= row_tolerance:
            row.append(idx)
            row_top = top if row_top is None else row_top
        else:
            row.sort(key=lambda i: boxes[i].x1)
            result.extend(row)
            row = [idx]
            row_top = top
    row.sort(key=lambda i: boxes[i].x1)
    result.extend(row)
    return result
