"""The raw document format — this repository's stand-in for PDF.

Real Aryn ingests PDFs: opaque binaries that render to pages of positioned
text, tables and images. Offline we substitute :class:`RawDocument`, a
page-and-box format with the same observable surface:

* a page is a canvas of *layout regions* (:class:`RawBox`) with a geometry
  and a visual appearance — exactly what a vision segmentation model sees;
* text lives in positioned *runs* (:class:`RawTextRun`) inside regions —
  exactly what PDFMiner-style text extraction sees;
* scanned regions carry no extractable runs, only rasterised text that must
  go through (simulated) OCR;
* every region keeps its *ground-truth* label so detection benchmarks can
  compute real mAP/mAR against it.

The partitioner must treat the ground-truth labels as hidden: its simulated
detector observes geometry and visual features and predicts labels through
a calibrated noise model (see :mod:`repro.partitioner.segmentation`).

A :class:`RawDocument` serialises to bytes, so a freshly-read Sycamore
document is — as in the paper — a single node whose content is the raw
binary, later expanded into a semantic tree by the partition transform.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .bbox import BoundingBox
from .table import Table

#: Default page geometry (US-Letter points, like a typical PDF).
PAGE_WIDTH = 612.0
PAGE_HEIGHT = 792.0


@dataclass
class RawTextRun:
    """A positioned run of text on a page (one line or one table cell)."""

    text: str
    bbox: BoundingBox

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        return {"text": self.text, "bbox": self.bbox.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "RawTextRun":
        """Rebuild from a dictionary produced by ``to_dict``."""
        return cls(text=data["text"], bbox=BoundingBox.from_dict(data["bbox"]))


@dataclass
class RawBox:
    """One layout region on a page.

    ``label`` is the ground-truth layout category (one of
    :data:`repro.docmodel.elements.ELEMENT_TYPES`). ``runs`` hold the
    machine-readable text; for ``scanned=True`` regions the runs represent
    rasterised text reachable only via OCR. Table regions carry the
    ground-truth cell structure in ``table``; picture regions carry image
    metadata and a latent ``image_description`` that a multi-modal model
    could recover.
    """

    label: str
    bbox: BoundingBox
    runs: List[RawTextRun] = field(default_factory=list)
    scanned: bool = False
    table: Optional[Table] = None
    image_format: Optional[str] = None
    image_width_px: int = 0
    image_height_px: int = 0
    image_description: Optional[str] = None
    #: True for table fragments continued from the previous page (the
    #: cross-page split case); the heading row lives only on the first part.
    continues_previous: bool = False

    def text(self) -> str:
        """All machine-readable text in the region, in run order."""
        return "\n".join(run.text for run in self.runs)

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        data: Dict[str, Any] = {
            "label": self.label,
            "bbox": self.bbox.to_dict(),
            "runs": [run.to_dict() for run in self.runs],
        }
        if self.scanned:
            data["scanned"] = True
        if self.table is not None:
            data["table"] = self.table.to_dict()
        if self.image_format is not None:
            data["image_format"] = self.image_format
            data["image_width_px"] = self.image_width_px
            data["image_height_px"] = self.image_height_px
        if self.image_description is not None:
            data["image_description"] = self.image_description
        if self.continues_previous:
            data["continues_previous"] = True
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RawBox":
        """Rebuild from a dictionary produced by ``to_dict``."""
        return cls(
            label=data["label"],
            bbox=BoundingBox.from_dict(data["bbox"]),
            runs=[RawTextRun.from_dict(r) for r in data.get("runs", [])],
            scanned=data.get("scanned", False),
            table=Table.from_dict(data["table"]) if "table" in data else None,
            image_format=data.get("image_format"),
            image_width_px=data.get("image_width_px", 0),
            image_height_px=data.get("image_height_px", 0),
            image_description=data.get("image_description"),
            continues_previous=data.get("continues_previous", False),
        )


@dataclass
class RawPage:
    """A page: a fixed canvas holding layout regions."""

    boxes: List[RawBox] = field(default_factory=list)
    width: float = PAGE_WIDTH
    height: float = PAGE_HEIGHT

    def text_runs(self) -> List[RawTextRun]:
        """Every machine-readable run on the page (what PDFMiner would yield).

        Scanned regions contribute nothing here; their text is only
        reachable through OCR.
        """
        runs: List[RawTextRun] = []
        for box in self.boxes:
            if not box.scanned:
                runs.extend(box.runs)
        return runs

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "width": self.width,
            "height": self.height,
            "boxes": [box.to_dict() for box in self.boxes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RawPage":
        """Rebuild from a dictionary produced by ``to_dict``."""
        return cls(
            width=data.get("width", PAGE_WIDTH),
            height=data.get("height", PAGE_HEIGHT),
            boxes=[RawBox.from_dict(b) for b in data.get("boxes", [])],
        )


@dataclass
class RawDocument:
    """A multi-page raw document plus out-of-band ground truth.

    ``ground_truth`` holds the structured record the document was rendered
    from (datagen writes it; only evaluation code may read it). The
    partitioner and all query paths must work exclusively from pages.
    """

    doc_id: str
    pages: List[RawPage] = field(default_factory=list)
    source_path: Optional[str] = None
    ground_truth: Dict[str, Any] = field(default_factory=dict)

    def num_pages(self) -> int:
        """Number of pages (0-based page indexes + 1)."""
        return len(self.pages)

    def all_text(self) -> str:
        """Naive whole-document text extraction (the RAG-baseline view)."""
        parts = []
        for page in self.pages:
            for run in page.text_runs():
                parts.append(run.text)
        return "\n".join(parts)

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        data: Dict[str, Any] = {
            "doc_id": self.doc_id,
            "pages": [page.to_dict() for page in self.pages],
            "ground_truth": self.ground_truth,
        }
        if self.source_path is not None:
            data["source_path"] = self.source_path
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RawDocument":
        """Rebuild from a dictionary produced by ``to_dict``."""
        return cls(
            doc_id=data["doc_id"],
            pages=[RawPage.from_dict(p) for p in data.get("pages", [])],
            source_path=data.get("source_path"),
            ground_truth=dict(data.get("ground_truth", {})),
        )

    def to_bytes(self) -> bytes:
        """Serialise to the opaque binary a just-read Document carries."""
        return json.dumps(self.to_dict(), sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "RawDocument":
        """Rebuild from bytes produced by ``to_bytes``."""
        return cls.from_dict(json.loads(payload.decode("utf-8")))
