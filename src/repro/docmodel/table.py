"""Table representation for the document model.

The paper (§4) emphasises high-quality table extraction: the partitioner
identifies tables, recovers per-cell bounding boxes, and users can then
convert them "to formats like HTML, CSV, and Pandas Dataframes". This
module provides the :class:`Table` structure those features rest on,
including row/column spans, header detection, and cross-page merging
(a table split across pages with the heading only on the first page is
one of the paper's motivating failure cases for naive text extraction).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .bbox import BoundingBox


@dataclass
class TableCell:
    """One logical cell of a table.

    A cell occupies ``rowspan`` x ``colspan`` grid slots anchored at
    (``row``, ``col``). ``is_header`` marks column-header cells.
    """

    row: int
    col: int
    text: str
    rowspan: int = 1
    colspan: int = 1
    is_header: bool = False
    bbox: Optional[BoundingBox] = None

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise ValueError(f"negative cell anchor: ({self.row}, {self.col})")
        if self.rowspan < 1 or self.colspan < 1:
            raise ValueError(f"spans must be >= 1: ({self.rowspan}, {self.colspan})")

    def covered_slots(self) -> List[tuple]:
        """All (row, col) grid slots this cell occupies."""
        return [
            (r, c)
            for r in range(self.row, self.row + self.rowspan)
            for c in range(self.col, self.col + self.colspan)
        ]

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        data = {
            "row": self.row,
            "col": self.col,
            "text": self.text,
            "rowspan": self.rowspan,
            "colspan": self.colspan,
            "is_header": self.is_header,
        }
        if self.bbox is not None:
            data["bbox"] = self.bbox.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TableCell":
        """Rebuild from a dictionary produced by ``to_dict``."""
        bbox = BoundingBox.from_dict(data["bbox"]) if "bbox" in data else None
        return cls(
            row=data["row"],
            col=data["col"],
            text=data["text"],
            rowspan=data.get("rowspan", 1),
            colspan=data.get("colspan", 1),
            is_header=data.get("is_header", False),
            bbox=bbox,
        )


@dataclass
class Table:
    """A logical table: a set of cells on an implicit rectangular grid.

    The grid is defined by the cells themselves; :meth:`num_rows` and
    :meth:`num_cols` derive its extent. Overlapping cells are rejected at
    validation time so every grid slot maps to at most one cell.
    """

    cells: List[TableCell] = field(default_factory=list)
    caption: Optional[str] = None

    def validate(self) -> None:
        """Raise ``ValueError`` if any two cells overlap on the grid."""
        seen: Dict[tuple, TableCell] = {}
        for cell in self.cells:
            for slot in cell.covered_slots():
                if slot in seen:
                    raise ValueError(
                        f"cells overlap at grid slot {slot}: "
                        f"{seen[slot]!r} vs {cell!r}"
                    )
                seen[slot] = cell

    @property
    def num_rows(self) -> int:
        """Number of grid rows."""
        if not self.cells:
            return 0
        return max(c.row + c.rowspan for c in self.cells)

    @property
    def num_cols(self) -> int:
        """Number of grid columns."""
        if not self.cells:
            return 0
        return max(c.col + c.colspan for c in self.cells)

    def cell_at(self, row: int, col: int) -> Optional[TableCell]:
        """The cell covering grid slot (row, col), or ``None`` if empty."""
        for cell in self.cells:
            if (
                cell.row <= row < cell.row + cell.rowspan
                and cell.col <= col < cell.col + cell.colspan
            ):
                return cell
        return None

    def header_rows(self) -> List[int]:
        """Row indices that consist entirely of header cells."""
        rows = []
        for r in range(self.num_rows):
            row_cells = [c for c in self.cells if c.row <= r < c.row + c.rowspan]
            if row_cells and all(c.is_header for c in row_cells):
                rows.append(r)
        return rows

    def column_names(self) -> List[str]:
        """Names of the columns, taken from header cells when present.

        Falls back to ``col_<i>`` for columns without a header cell.
        """
        names = []
        header_rows = self.header_rows()
        header_row = header_rows[0] if header_rows else None
        for c in range(self.num_cols):
            name = f"col_{c}"
            if header_row is not None:
                cell = self.cell_at(header_row, c)
                if cell is not None and cell.text:
                    name = cell.text
            names.append(name)
        return names

    def to_grid(self) -> List[List[str]]:
        """Dense 2-D list of cell texts; spanned slots repeat the cell text."""
        grid = [["" for _ in range(self.num_cols)] for _ in range(self.num_rows)]
        for cell in self.cells:
            for r, c in cell.covered_slots():
                grid[r][c] = cell.text
        return grid

    def body_rows(self) -> List[List[str]]:
        """Grid rows excluding header rows."""
        headers = set(self.header_rows())
        return [row for r, row in enumerate(self.to_grid()) if r not in headers]

    def to_records(self) -> List[Dict[str, str]]:
        """Rows as dictionaries keyed by column name (a pandas-free DataFrame)."""
        names = self.column_names()
        return [dict(zip(names, row)) for row in self.body_rows()]

    def to_csv(self) -> str:
        """CSV rendering including header rows."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        for row in self.to_grid():
            writer.writerow(row)
        return buf.getvalue()

    def to_html(self) -> str:
        """Minimal HTML rendering preserving row/column spans."""
        parts = ["<table>"]
        if self.caption:
            parts.append(f"<caption>{_escape(self.caption)}</caption>")
        anchored: Dict[tuple, TableCell] = {(c.row, c.col): c for c in self.cells}
        covered = {
            slot
            for cell in self.cells
            for slot in cell.covered_slots()
            if slot != (cell.row, cell.col)
        }
        for r in range(self.num_rows):
            parts.append("<tr>")
            for c in range(self.num_cols):
                if (r, c) in covered:
                    continue
                cell = anchored.get((r, c))
                if cell is None:
                    parts.append("<td></td>")
                    continue
                tag = "th" if cell.is_header else "td"
                attrs = ""
                if cell.rowspan > 1:
                    attrs += f' rowspan="{cell.rowspan}"'
                if cell.colspan > 1:
                    attrs += f' colspan="{cell.colspan}"'
                parts.append(f"<{tag}{attrs}>{_escape(cell.text)}</{tag}>")
            parts.append("</tr>")
        parts.append("</table>")
        return "".join(parts)

    def to_text(self) -> str:
        """Plain-text rendering, one row per line, cells joined by ' | '."""
        return "\n".join(" | ".join(row) for row in self.to_grid())

    def lookup(self, column: str, value: str, target_column: str) -> List[str]:
        """Values of ``target_column`` in rows where ``column`` equals ``value``.

        Column matching is case-insensitive on names; value matching is exact
        after stripping whitespace.
        """
        results = []
        for record in self.to_records():
            matched_col = _find_key(record, column)
            matched_target = _find_key(record, target_column)
            if matched_col is None or matched_target is None:
                continue
            if record[matched_col].strip() == value.strip():
                results.append(record[matched_target])
        return results

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        data: dict = {"cells": [c.to_dict() for c in self.cells]}
        if self.caption is not None:
            data["caption"] = self.caption
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Table":
        """Rebuild from a dictionary produced by ``to_dict``."""
        return cls(
            cells=[TableCell.from_dict(c) for c in data.get("cells", [])],
            caption=data.get("caption"),
        )

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence[str]],
        header: bool = True,
        caption: Optional[str] = None,
    ) -> "Table":
        """Build a simple span-free table from a list of text rows."""
        cells = []
        for r, row in enumerate(rows):
            for c, text in enumerate(row):
                cells.append(
                    TableCell(row=r, col=c, text=str(text), is_header=header and r == 0)
                )
        table = cls(cells=cells, caption=caption)
        table.validate()
        return table


def merge_tables(first: Table, second: Table) -> Table:
    """Merge a table continuation into its start (cross-page table repair).

    The paper calls out tables split across PDF pages, where the heading is
    only present on the first fragment, as a case that "befuddles" text
    extraction. This helper appends the second fragment's rows below the
    first fragment's grid. If the second fragment repeats the first's header
    row verbatim, the repeated header is dropped.
    """
    offset = first.num_rows
    second_cells = list(second.cells)
    if first.num_cols == second.num_cols and first.num_cols > 0:
        first_header = first.to_grid()[0] if first.num_rows else None
        second_first = second.to_grid()[0] if second.num_rows else None
        if first_header is not None and first_header == second_first:
            second_cells = [c for c in second_cells if c.row != 0]
            # Shift remaining rows up to close the gap left by the header.
            second_cells = [
                TableCell(
                    row=c.row - 1,
                    col=c.col,
                    text=c.text,
                    rowspan=c.rowspan,
                    colspan=c.colspan,
                    is_header=c.is_header,
                    bbox=c.bbox,
                )
                for c in second_cells
            ]
    merged_cells = list(first.cells) + [
        TableCell(
            row=c.row + offset,
            col=c.col,
            text=c.text,
            rowspan=c.rowspan,
            colspan=c.colspan,
            is_header=False,
            bbox=c.bbox,
        )
        for c in second_cells
    ]
    merged = Table(cells=merged_cells, caption=first.caption or second.caption)
    merged.validate()
    return merged


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _find_key(record: Dict[str, str], name: str) -> Optional[str]:
    lowered = name.strip().lower()
    for key in record:
        if key.strip().lower() == lowered:
            return key
    return None
