"""The hierarchical Document — the unit that DocSets are collections of.

Per the paper (§5.1): "a document in Sycamore is a tree, where each node
contains some content, which may be text or binary, an ordered list of
child nodes, and a set of JSON-like key-value properties." Leaf-level
nodes are :class:`~repro.docmodel.elements.Element` instances.

A freshly-read document may be a single node holding raw binary content;
after partitioning it becomes a tree of sections whose leaves are typed
elements. Documents are flexible enough to represent every processing
stage, which is what lets Sycamore blur the ETL/analytics line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from .elements import Element, new_id


@dataclass
class Node:
    """An internal node of the document tree (e.g. a section or chapter).

    ``label`` names the structural role ("section", "page", ...); ``title``
    is human-readable. Children may be further nodes or leaf elements.
    """

    label: str = "section"
    title: str = ""
    children: List[Any] = field(default_factory=list)  # Node | Element
    properties: Dict[str, Any] = field(default_factory=dict)
    node_id: str = field(default_factory=new_id)

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "kind": "Node",
            "label": self.label,
            "title": self.title,
            "node_id": self.node_id,
            "properties": self.properties,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Node":
        """Rebuild from a dictionary produced by ``to_dict``."""
        return cls(
            label=data.get("label", "section"),
            title=data.get("title", ""),
            node_id=data.get("node_id", new_id()),
            properties=dict(data.get("properties", {})),
            children=[_child_from_dict(c) for c in data.get("children", [])],
        )


def _child_from_dict(data: dict) -> Any:
    if data.get("kind") == "Node":
        return Node.from_dict(data)
    return Element.from_dict(data)


@dataclass
class Document:
    """A hierarchical, multi-modal document.

    ``doc_id`` is stable across transforms (lineage keys on it unless a
    transform explicitly creates derived documents). ``binary`` holds raw
    unparsed content (the just-read-a-PDF state); ``root`` holds the parsed
    semantic tree. ``properties`` carries extracted metadata — the target
    of ``extract_properties`` and the input to analytic transforms.
    """

    doc_id: str = field(default_factory=new_id)
    binary: Optional[bytes] = None
    text: str = ""
    root: Optional[Node] = None
    properties: Dict[str, Any] = field(default_factory=dict)
    parent_id: Optional[str] = None

    # ------------------------------------------------------------------
    # Tree access
    # ------------------------------------------------------------------

    @property
    def elements(self) -> List[Element]:
        """All leaf elements in document order (empty before partitioning)."""
        if self.root is None:
            return []
        return list(_iter_elements(self.root))

    def walk(self) -> Iterator[Any]:
        """Depth-first, pre-order traversal yielding every node and element."""
        if self.root is None:
            return
        yield from _walk(self.root)

    def elements_of_type(self, element_type: str) -> List[Element]:
        """Leaf elements with the given layout type."""
        return [e for e in self.elements if e.type == element_type]

    @property
    def tables(self) -> List[Element]:
        """All table elements, in document order."""
        return self.elements_of_type("Table")

    @property
    def images(self) -> List[Element]:
        """All picture elements, in document order."""
        return self.elements_of_type("Picture")

    def find_elements(self, predicate: Callable[[Element], bool]) -> List[Element]:
        """Leaf elements satisfying an arbitrary predicate."""
        return [e for e in self.elements if predicate(e)]

    def num_pages(self) -> int:
        """Number of pages (0-based page indexes + 1)."""
        pages = [e.page for e in self.elements if e.page is not None]
        return max(pages) + 1 if pages else 0

    # ------------------------------------------------------------------
    # Text views
    # ------------------------------------------------------------------

    def text_representation(self, max_elements: Optional[int] = None) -> str:
        """The document rendered as plain text, element by element.

        This is what LLM transforms put in their prompts; ``max_elements``
        supports prompts that only need a prefix (e.g. extracting authors
        from the first page, per §5.2).
        """
        elements = self.elements
        if max_elements is not None:
            elements = elements[:max_elements]
        parts = [e.text_representation() for e in elements]
        if not parts and self.text:
            return self.text
        return "\n".join(part for part in parts if part)

    # ------------------------------------------------------------------
    # Derivation and copying
    # ------------------------------------------------------------------

    def copy(self) -> "Document":
        """Structural copy safe to mutate without aliasing the original."""
        return Document.from_dict(self.to_dict())

    def derive(self, **overrides: Any) -> "Document":
        """A new document derived from this one (new id, parent lineage set)."""
        child = self.copy()
        child.doc_id = new_id()
        child.parent_id = self.doc_id
        for key, value in overrides.items():
            setattr(child, key, value)
        return child

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        data: Dict[str, Any] = {
            "doc_id": self.doc_id,
            "text": self.text,
            "properties": self.properties,
        }
        if self.binary is not None:
            data["binary"] = self.binary.hex()
        if self.root is not None:
            data["root"] = self.root.to_dict()
        if self.parent_id is not None:
            data["parent_id"] = self.parent_id
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Document":
        """Rebuild from a dictionary produced by ``to_dict``."""
        return cls(
            doc_id=data.get("doc_id", new_id()),
            binary=bytes.fromhex(data["binary"]) if "binary" in data else None,
            text=data.get("text", ""),
            root=Node.from_dict(data["root"]) if "root" in data else None,
            properties=json.loads(json.dumps(data.get("properties", {}))),
            parent_id=data.get("parent_id"),
        )

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "Document":
        """Rebuild from a JSON string produced by ``to_json``."""
        return cls.from_dict(json.loads(payload))

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_elements(
        cls,
        elements: List[Element],
        properties: Optional[Dict[str, Any]] = None,
        doc_id: Optional[str] = None,
    ) -> "Document":
        """Flat document: a root node whose children are the given elements."""
        doc = cls(
            root=Node(label="document", children=list(elements)),
            properties=dict(properties or {}),
        )
        if doc_id is not None:
            doc.doc_id = doc_id
        return doc

    @classmethod
    def from_text(cls, text: str, properties: Optional[Dict[str, Any]] = None) -> "Document":
        """Single-blob text document (the pre-partitioning state for text files)."""
        return cls(text=text, properties=dict(properties or {}))


def _iter_elements(node: Node) -> Iterator[Element]:
    for child in node.children:
        if isinstance(child, Node):
            yield from _iter_elements(child)
        else:
            yield child


def _walk(node: Node) -> Iterator[Any]:
    yield node
    for child in node.children:
        if isinstance(child, Node):
            yield from _walk(child)
        else:
            yield child
