"""Element types of the Sycamore document tree.

Per the paper (§5.1), a document is a tree whose nodes carry content (text
or binary), an ordered list of children, and JSON-like properties. Leaf
nodes are *elements* corresponding to concrete chunks — paragraphs, titles,
tables, images — and some element types have reserved, type-specific
properties: a ``TableElement`` carries the recovered :class:`~repro.docmodel.table.Table`
structure, an ``ImageElement`` carries format and resolution.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Type

from .bbox import BoundingBox
from .table import Table

#: The layout label vocabulary, modelled on DocLayNet's 11 categories
#: (the dataset the paper's Deformable-DETR partitioner model is trained on).
ELEMENT_TYPES = (
    "Text",
    "Title",
    "Section-header",
    "Table",
    "Picture",
    "Caption",
    "List-item",
    "Page-header",
    "Page-footer",
    "Footnote",
    "Formula",
)


def new_id() -> str:
    """Fresh unique identifier for documents and elements."""
    return uuid.uuid4().hex


@dataclass
class Element:
    """A leaf chunk of a document: some content plus metadata.

    ``type`` is one of :data:`ELEMENT_TYPES` (unknown types are allowed but
    treated as plain text by downstream transforms). ``bbox`` locates the
    element on its page; ``page`` is the 0-based page number.
    """

    type: str = "Text"
    text: str = ""
    binary: Optional[bytes] = None
    bbox: Optional[BoundingBox] = None
    page: Optional[int] = None
    properties: Dict[str, Any] = field(default_factory=dict)
    element_id: str = field(default_factory=new_id)

    def text_representation(self) -> str:
        """The element rendered as plain text (what an LLM prompt would see)."""
        return self.text

    def copy(self) -> "Element":
        """Deep-enough copy: properties dict is copied, content is shared."""
        return type(self)(**self._copy_kwargs())

    def _copy_kwargs(self) -> Dict[str, Any]:
        return {
            "type": self.type,
            "text": self.text,
            "binary": self.binary,
            "bbox": self.bbox,
            "page": self.page,
            "properties": dict(self.properties),
            "element_id": self.element_id,
        }

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        data: Dict[str, Any] = {
            "kind": type(self).__name__,
            "type": self.type,
            "text": self.text,
            "element_id": self.element_id,
            "properties": self.properties,
        }
        if self.binary is not None:
            data["binary"] = self.binary.hex()
        if self.bbox is not None:
            data["bbox"] = self.bbox.to_dict()
        if self.page is not None:
            data["page"] = self.page
        data.update(self._extra_dict())
        return data

    def _extra_dict(self) -> Dict[str, Any]:
        return {}

    @classmethod
    def from_dict(cls, data: dict) -> "Element":
        """Rebuild from a dictionary produced by ``to_dict``."""
        kind = data.get("kind", "Element")
        klass = _ELEMENT_KINDS.get(kind, Element)
        return klass._build(data)

    @classmethod
    def _build(cls, data: dict) -> "Element":
        return cls(**cls._base_kwargs(data))

    @staticmethod
    def _base_kwargs(data: dict) -> Dict[str, Any]:
        kwargs: Dict[str, Any] = {
            "type": data.get("type", "Text"),
            "text": data.get("text", ""),
            "properties": dict(data.get("properties", {})),
            "element_id": data.get("element_id", new_id()),
        }
        if "binary" in data:
            kwargs["binary"] = bytes.fromhex(data["binary"])
        if "bbox" in data:
            kwargs["bbox"] = BoundingBox.from_dict(data["bbox"])
        if "page" in data:
            kwargs["page"] = data["page"]
        return kwargs


@dataclass
class TableElement(Element):
    """A table chunk carrying the recovered cell structure.

    Reserved properties per the paper: rows and columns are exposed through
    the embedded :class:`Table`; :meth:`text_representation` renders the grid
    so LLM transforms can consume tables as text.
    """

    table: Table = field(default_factory=Table)

    def __post_init__(self) -> None:
        self.type = "Table"

    @property
    def num_rows(self) -> int:
        """Number of grid rows."""
        return self.table.num_rows

    @property
    def num_cols(self) -> int:
        """Number of grid columns."""
        return self.table.num_cols

    def text_representation(self) -> str:
        """The content rendered as plain text."""
        rendered = self.table.to_text()
        if self.table.caption:
            return f"{self.table.caption}\n{rendered}"
        return rendered

    def _copy_kwargs(self) -> Dict[str, Any]:
        kwargs = super()._copy_kwargs()
        kwargs["table"] = Table.from_dict(self.table.to_dict())
        return kwargs

    def _extra_dict(self) -> Dict[str, Any]:
        return {"table": self.table.to_dict()}

    @classmethod
    def _build(cls, data: dict) -> "TableElement":
        kwargs = cls._base_kwargs(data)
        kwargs["table"] = Table.from_dict(data.get("table", {"cells": []}))
        return cls(**kwargs)


@dataclass
class ImageElement(Element):
    """An image chunk with format/resolution metadata and an optional summary.

    The partitioner can attach a textual ``summary`` (the paper uses
    multi-modal LLMs for this) which then participates in text processing.
    """

    format: str = "png"
    width_px: int = 0
    height_px: int = 0
    summary: Optional[str] = None

    def __post_init__(self) -> None:
        self.type = "Picture"

    @property
    def resolution(self) -> tuple:
        """Pixel dimensions as ``(width, height)``."""
        return (self.width_px, self.height_px)

    def text_representation(self) -> str:
        """The content rendered as plain text."""
        if self.summary:
            return f"[image: {self.summary}]"
        return "[image]"

    def _copy_kwargs(self) -> Dict[str, Any]:
        kwargs = super()._copy_kwargs()
        kwargs.update(
            format=self.format,
            width_px=self.width_px,
            height_px=self.height_px,
            summary=self.summary,
        )
        return kwargs

    def _extra_dict(self) -> Dict[str, Any]:
        extra: Dict[str, Any] = {
            "format": self.format,
            "width_px": self.width_px,
            "height_px": self.height_px,
        }
        if self.summary is not None:
            extra["summary"] = self.summary
        return extra

    @classmethod
    def _build(cls, data: dict) -> "ImageElement":
        kwargs = cls._base_kwargs(data)
        kwargs.update(
            format=data.get("format", "png"),
            width_px=data.get("width_px", 0),
            height_px=data.get("height_px", 0),
            summary=data.get("summary"),
        )
        return cls(**kwargs)


_ELEMENT_KINDS: Dict[str, Type[Element]] = {
    "Element": Element,
    "TableElement": TableElement,
    "ImageElement": ImageElement,
}


def make_element(
    type: str,
    text: str = "",
    bbox: Optional[BoundingBox] = None,
    page: Optional[int] = None,
    properties: Optional[Dict[str, Any]] = None,
    table: Optional[Table] = None,
    **image_kwargs: Any,
) -> Element:
    """Factory that picks the right Element subclass for a layout label."""
    props = dict(properties or {})
    if type == "Table":
        return TableElement(
            text=text,
            bbox=bbox,
            page=page,
            properties=props,
            table=table if table is not None else Table(),
        )
    if type == "Picture":
        return ImageElement(text=text, bbox=bbox, page=page, properties=props, **image_kwargs)
    return Element(type=type, text=text, bbox=bbox, page=page, properties=props)
