"""repro.runtime — the shared LLM serving substrate.

A process-wide :class:`RequestScheduler` that all LLM call sites submit
:class:`LLMRequest`\\ s to: dynamic micro-batching per model, in-flight
deduplication, two-level priority admission control with backpressure,
and a :class:`SchedulerStats` snapshot for observability. See
:mod:`repro.runtime.scheduler` for the design rationale.

Invariants call sites must preserve:

* **Dedup-key alignment.** The in-flight dedup key is the byte-exact
  ``(model, prompt, max_output_tokens)`` triple at temperature 0, and
  ``ReliableLLM``'s response cache keys on the same bytes. Transform
  factories therefore build prompts via the hoisted prefix cache
  (:func:`repro.llm.prompts.append_section`) so identical logical
  requests produce identical prompt bytes — any formatting drift
  (whitespace, key ordering, f-string variation) silently defeats both
  dedup and caching without breaking correctness.
* **No lost futures.** Every admitted request's future resolves exactly
  once — with a result, the upstream exception, or
  :class:`SchedulerClosedError` on a drainless close. Waiters sharing a
  deduped future observe the same outcome, including failure.
* **Tracing hand-off.** Request spans are created at submit time under
  the caller's ambient span (so they land in the caller's trace) and
  finished by the dispatcher; batch spans are separate trace roots that
  member spans reference by id via the ``batch_span`` attribute, never
  by parentage (one batch serves many queries). See ``DESIGN.md`` §9.
"""

from .client import ScheduledLLM
from .scheduler import (
    LLMRequest,
    Priority,
    RequestScheduler,
    SchedulerClosedError,
    SchedulerError,
    SchedulerSaturatedError,
    SchedulerStats,
)

__all__ = [
    "LLMRequest",
    "Priority",
    "RequestScheduler",
    "ScheduledLLM",
    "SchedulerClosedError",
    "SchedulerError",
    "SchedulerSaturatedError",
    "SchedulerStats",
]
