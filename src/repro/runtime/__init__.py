"""repro.runtime — the shared LLM serving substrate.

A process-wide :class:`RequestScheduler` that all LLM call sites submit
:class:`LLMRequest`\\ s to: dynamic micro-batching per model, in-flight
deduplication, two-level priority admission control with backpressure,
and a :class:`SchedulerStats` snapshot for observability. See
:mod:`repro.runtime.scheduler` for the design rationale.
"""

from .client import ScheduledLLM
from .scheduler import (
    LLMRequest,
    Priority,
    RequestScheduler,
    SchedulerClosedError,
    SchedulerError,
    SchedulerSaturatedError,
    SchedulerStats,
)

__all__ = [
    "LLMRequest",
    "Priority",
    "RequestScheduler",
    "ScheduledLLM",
    "SchedulerClosedError",
    "SchedulerError",
    "SchedulerSaturatedError",
    "SchedulerStats",
]
