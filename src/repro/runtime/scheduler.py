"""The shared LLM request scheduler: micro-batching, dedup, priorities.

The paper's stack funnels *all* LLM traffic — Luna planning, per-document
transforms, summarization trees — through hosted model endpoints, and its
cost/latency story depends on how efficiently that traffic is scheduled
(§3 "LLMs are slow and expensive"). ScaleDoc (arXiv:2509.12610) and
"Towards Accurate and Efficient Document Analytics with LLMs"
(arXiv:2405.04674) both show that batching, dedup and admission-aware
scheduling of LLM predicates dominate end-to-end performance at
collection scale. This module is that serving substrate:

* **Micro-batching** — requests for the same (model, max_tokens) are
  collected into batches of up to ``max_batch_size``, waiting at most
  ``max_wait_ms`` from the first request's arrival, then drained into
  :meth:`LLMClient.complete_many` so the transport parallelizes them.
* **In-flight dedup** — identical (model, prompt, max_tokens) requests
  from concurrent pipelines share one upstream call: later submitters get
  the *same* future, including its exception if the call fails.
* **Two-level priority** — INTERACTIVE (Luna query paths) is served
  before BULK (ETL/ingest), with a starvation guard that promotes BULK
  after ``starvation_limit`` consecutive INTERACTIVE batches.
* **Admission control** — each priority queue is bounded; submitting to a
  full queue raises :class:`SchedulerSaturatedError` instead of growing
  memory without bound (backpressure).
* **Observability** — :meth:`RequestScheduler.stats` snapshots queue
  depths, the batch-size histogram, dedup hits, and wait/service times;
  ``python -m repro runtime-stats`` prints them.

The scheduler composes with the reliability layer: its client is normally
a :class:`repro.llm.client.ReliableLLM`, so every dispatched batch enjoys
retries, the circuit breaker, the retry budget, and the response cache —
and chaos schedules injected *below* the reliability layer exercise the
queue under brownouts (see tests/test_scheduler.py).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..lifecycle.deadline import (
    CancelScope,
    DeadlineExceeded,
    QueryCancelled,
    current_scope,
    wait_future,
)
from ..llm.base import LLMClient, LLMResponse, get_model_spec
from ..observability.metrics import MetricsRegistry, get_registry
from ..observability.tracing import Span, Tracer


class SchedulerError(RuntimeError):
    """Base class for scheduler-level failures."""


class SchedulerSaturatedError(SchedulerError):
    """Admission control rejected a request: the target queue is full."""


class SchedulerClosedError(SchedulerError):
    """The scheduler is shut down; the request was not (or will not be)
    dispatched."""


class Priority(IntEnum):
    """Admission classes, in service order.

    INTERACTIVE is the latency-sensitive class (Luna planning and query
    operators — a user is waiting); BULK is throughput-oriented ETL and
    ingest traffic.
    """

    INTERACTIVE = 0
    BULK = 1


def _coerce_priority(priority: "Priority | int | str") -> Priority:
    if isinstance(priority, Priority):
        return priority
    if isinstance(priority, str):
        try:
            return Priority[priority.upper()]
        except KeyError:
            raise ValueError(
                f"unknown priority {priority!r}; known: "
                f"{[p.name.lower() for p in Priority]}"
            ) from None
    return Priority(priority)


#: Dedup key: requests identical along these axes share one upstream call.
DedupKey = Tuple[str, str, Optional[int]]


@dataclass
class LLMRequest:
    """One unit of admitted work: a completion request plus its future."""

    prompt: str
    model: str
    max_output_tokens: Optional[int]
    temperature: float
    priority: Priority
    future: "Future[LLMResponse]"
    enqueued_at: float
    #: Dedup key, or None when the request is not dedupable/batchable
    #: (non-zero temperature).
    key: Optional[DedupKey] = None
    #: Trace span opened at submission (under the submitter's context)
    #: and finished when the future resolves; None when untraced.
    span: Optional[Span] = None
    #: The submitting query's lifecycle scope, captured at admission.
    #: Cancelled or deadline-expired entries are purged (typed failure)
    #: at batch-formation time instead of being dispatched.
    scope: Optional[CancelScope] = None

    @property
    def batchable(self) -> bool:
        """Whether this request may share a batch (deterministic only)."""
        return self.temperature == 0.0


@dataclass
class SchedulerStats:
    """A point-in-time snapshot of scheduler counters.

    Times are cumulative seconds; histogram maps batch size -> count.
    """

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    dedup_hits: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    batches_dispatched: int = 0
    starvation_promotions: int = 0
    queue_depth_interactive: int = 0
    queue_depth_bulk: int = 0
    peak_queue_depth: int = 0
    total_wait_s: float = 0.0
    total_service_s: float = 0.0
    batch_size_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def upstream_requests(self) -> int:
        """Requests actually dispatched (admitted minus still-queued,
        minus dedup-shared waiters)."""
        return self.completed + self.failed

    def avg_batch_size(self) -> float:
        """Mean dispatched batch size (0.0 before any dispatch)."""
        total = sum(size * count for size, count in self.batch_size_histogram.items())
        return total / self.batches_dispatched if self.batches_dispatched else 0.0

    def avg_wait_ms(self) -> float:
        """Mean queue wait per dispatched request, in milliseconds."""
        done = self.completed + self.failed
        return (self.total_wait_s / done) * 1000.0 if done else 0.0

    def avg_service_ms(self) -> float:
        """Mean service (dispatch -> resolution) time per batch, in ms."""
        n = self.batches_dispatched
        return (self.total_service_s / n) * 1000.0 if n else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict view (stable keys) for logging and the CLI."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "dedup_hits": self.dedup_hits,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "batches_dispatched": self.batches_dispatched,
            "starvation_promotions": self.starvation_promotions,
            "queue_depth_interactive": self.queue_depth_interactive,
            "queue_depth_bulk": self.queue_depth_bulk,
            "peak_queue_depth": self.peak_queue_depth,
            "avg_batch_size": round(self.avg_batch_size(), 3),
            "avg_wait_ms": round(self.avg_wait_ms(), 3),
            "avg_service_ms": round(self.avg_service_ms(), 3),
            "batch_size_histogram": dict(sorted(self.batch_size_histogram.items())),
        }


class RequestScheduler:
    """Process-wide scheduler all LLM call sites submit through.

    Parameters
    ----------
    client:
        The transport to drain batches into — normally a
        :class:`repro.llm.client.ReliableLLM`. May be None at
        construction and bound later (``scheduler.client = llm``);
        :class:`repro.sycamore.context.SycamoreContext` binds its own
        reliability-wrapped client to an unbound scheduler.
    max_batch_size:
        Upper bound on requests per dispatched batch.
    max_wait_ms:
        Micro-batch window: how long a batch may wait (from its first
        request's arrival) for more compatible requests. 0 dispatches
        whatever is immediately available.
    max_queue_depth:
        Per-priority admission bound; a full queue rejects submissions
        with :class:`SchedulerSaturatedError`.
    dispatch_parallelism:
        How many batches may be in flight at once.
    starvation_limit:
        Consecutive INTERACTIVE batches after which a waiting BULK batch
        is promoted (the starvation guard).
    dedup:
        Whether identical in-flight requests share one upstream call.
    clock:
        Injectable monotonic clock (tests).
    tracer:
        Optional :class:`~repro.observability.Tracer`. Request spans are
        created at submit time under the submitter's ambient span; each
        dispatched batch gets its own ``batch`` span (a separate trace —
        one batch serves many queries) and member request spans link to
        it via the ``batch_span`` attribute.
    registry:
        :class:`~repro.observability.MetricsRegistry` the scheduler
        publishes counters/histograms into (default: process registry).
        :meth:`stats` remains the per-instance compatibility shim.
    """

    def __init__(
        self,
        client: Optional[LLMClient] = None,
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        max_queue_depth: int = 1024,
        dispatch_parallelism: int = 4,
        starvation_limit: int = 4,
        dedup: bool = True,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if dispatch_parallelism < 1:
            raise ValueError("dispatch_parallelism must be >= 1")
        if starvation_limit < 1:
            raise ValueError("starvation_limit must be >= 1")
        self.client = client
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.max_queue_depth = max_queue_depth
        self.dispatch_parallelism = dispatch_parallelism
        self.starvation_limit = starvation_limit
        self.dedup = dedup
        self._clock = clock
        self.tracer = tracer
        self.registry = registry if registry is not None else get_registry()
        reg = self.registry
        self._m_submitted = reg.counter("scheduler.submitted")
        self._m_admitted = reg.counter("scheduler.admitted")
        self._m_rejected = reg.counter("scheduler.rejected")
        self._m_dedup_hits = reg.counter("scheduler.dedup_hits")
        self._m_completed = reg.counter("scheduler.completed")
        self._m_failed = reg.counter("scheduler.failed")
        self._m_cancelled = reg.counter("scheduler.cancelled")
        self._m_batches = reg.counter("scheduler.batches_dispatched")
        self._m_starvation = reg.counter("scheduler.starvation_promotions")
        self._m_batch_size = reg.histogram("scheduler.batch_size")
        self._m_wait_ms = reg.histogram("scheduler.wait_ms")
        self._m_service_ms = reg.histogram("scheduler.service_ms")
        self._g_depth_interactive = reg.gauge("scheduler.queue_depth_interactive")
        self._g_depth_bulk = reg.gauge("scheduler.queue_depth_bulk")
        self._cond = threading.Condition()
        self._queues: Dict[Priority, Deque[LLMRequest]] = {
            Priority.INTERACTIVE: deque(),
            Priority.BULK: deque(),
        }
        self._inflight: Dict[DedupKey, "Future[LLMResponse]"] = {}
        self._stats = SchedulerStats()
        self._consecutive_interactive = 0
        self._closed = False
        self._drain_on_close = True
        self._dispatch_slots = threading.Semaphore(dispatch_parallelism)
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=dispatch_parallelism,
            thread_name_prefix="repro-sched-dispatch",
        )
        self._worker = threading.Thread(
            target=self._run, name="repro-sched-worker", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Submission side
    # ------------------------------------------------------------------

    def submit(
        self,
        prompt: str,
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        temperature: float = 0.0,
        priority: "Priority | int | str" = Priority.BULK,
    ) -> "Future[LLMResponse]":
        """Admit a request; returns a future resolving to its response.

        Identical in-flight requests (same model, prompt, max_tokens, at
        temperature 0) return the *same* future — one upstream call, and
        one shared exception if it fails.
        """
        priority = _coerce_priority(priority)
        shared: "Optional[Future[LLMResponse]]" = None
        waiter_span: Optional[Span] = None
        with self._cond:
            if self._closed:
                raise SchedulerClosedError("scheduler is closed")
            self._stats.submitted += 1
            self._m_submitted.inc()
            key: Optional[DedupKey] = None
            if self.dedup and temperature == 0.0:
                key = (model, prompt, max_output_tokens)
                shared = self._inflight.get(key)
            if shared is None:
                return self._enqueue_locked(
                    prompt, model, max_output_tokens, temperature, priority, key
                )
            self._stats.dedup_hits += 1
            self._m_dedup_hits.inc()
            if self.tracer is not None:
                # The waiter gets its own span (attributed to ITS
                # query), finished when the shared call resolves:
                # full tokens, zero dollars, savings reported.
                waiter_span = self.tracer.start_span(
                    f"llm:{model}",
                    kind="llm_request",
                    model=model,
                    priority=priority.name.lower(),
                    dedup="inflight",
                )
        # Registered outside the lock: an already-resolved shared future
        # runs the callback inline, and the span bookkeeping must not
        # execute while holding _cond.
        if waiter_span is not None:
            span = waiter_span
            shared.add_done_callback(
                lambda f, s=span: self._finish_request_span(s, f, charge=False)
            )
        return shared

    def _enqueue_locked(
        self,
        prompt: str,
        model: str,
        max_output_tokens: Optional[int],
        temperature: float,
        priority: Priority,
        key: Optional[DedupKey],
    ) -> "Future[LLMResponse]":
        """Admit a new request to its priority queue; caller holds _cond."""
        queue = self._queues[priority]
        if len(queue) >= self.max_queue_depth:
            self._stats.rejected += 1
            self._m_rejected.inc()
            raise SchedulerSaturatedError(
                f"{priority.name.lower()} queue is full "
                f"({self.max_queue_depth} requests)"
            )
        future: "Future[LLMResponse]" = Future()
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                f"llm:{model}",
                kind="llm_request",
                model=model,
                priority=priority.name.lower(),
            )
        request = LLMRequest(
            prompt=prompt,
            model=model,
            max_output_tokens=max_output_tokens,
            temperature=temperature,
            priority=priority,
            future=future,
            enqueued_at=self._clock(),
            key=key,
            span=span,
            scope=current_scope(),
        )
        if key is not None:
            self._inflight[key] = future
        queue.append(request)
        self._stats.admitted += 1
        self._m_admitted.inc()
        depth = sum(len(q) for q in self._queues.values())
        if depth > self._stats.peak_queue_depth:
            self._stats.peak_queue_depth = depth
        self._g_depth_interactive.set(len(self._queues[Priority.INTERACTIVE]))
        self._g_depth_bulk.set(len(self._queues[Priority.BULK]))
        self._cond.notify_all()
        return future

    def _finish_request_span(
        self,
        span: Span,
        resolved: "Future[LLMResponse] | LLMResponse | BaseException",
        charge: bool,
        batch_span_id: Optional[str] = None,
        dedup: Optional[str] = None,
    ) -> None:
        """Close one request span from its outcome.

        ``charge=False`` (dedup waiters, within-batch duplicates) counts
        tokens at zero dollars and reports the avoided spend as
        ``saved_usd`` — the conservative-accounting invariant.
        """
        assert self.tracer is not None
        result: "LLMResponse | BaseException"
        if isinstance(resolved, Future):
            exc = resolved.exception()
            # Callers only pass resolved futures (exception() returned).
            result = exc if exc is not None else resolved.result()  # repro: lint-ignore[timeout-not-propagated,event-loop-blocker]
        else:
            result = resolved
        if batch_span_id is not None:
            span.set_attributes(batch_span=batch_span_id)
        if dedup is not None:
            span.set_attributes(dedup=dedup)
        if isinstance(result, BaseException):
            self.tracer.finish(
                span, status="error", error=f"{type(result).__name__}: {result}"
            )
            return
        usage = result.usage
        try:
            full_cost = get_model_spec(result.model).cost_usd(
                usage.input_tokens, usage.output_tokens
            )
        except Exception:  # unknown model: no price card
            full_cost = 0.0
        charged = full_cost if charge and not result.cached else 0.0
        span.set_attributes(
            input_tokens=usage.input_tokens,
            output_tokens=usage.output_tokens,
            cost_usd=charged,
            saved_usd=full_cost - charged,
            cached=result.cached,
        )
        self.tracer.finish(span)

    def complete(
        self,
        prompt: str,
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        temperature: float = 0.0,
        priority: "Priority | int | str" = Priority.BULK,
        timeout: Optional[float] = None,
    ) -> LLMResponse:
        """Submit and block for the response (convenience wrapper).

        The wait is scope-aware: a caller running under a lifecycle
        scope observes its own cancellation/deadline while blocked, even
        when the future is shared with other submitters via dedup.
        """
        future = self.submit(
            prompt,
            model=model,
            max_output_tokens=max_output_tokens,
            temperature=temperature,
            priority=priority,
        )
        return wait_future(future, timeout=timeout)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> SchedulerStats:
        """A consistent snapshot of the scheduler's counters."""
        with self._cond:
            snapshot = SchedulerStats(
                submitted=self._stats.submitted,
                admitted=self._stats.admitted,
                rejected=self._stats.rejected,
                dedup_hits=self._stats.dedup_hits,
                completed=self._stats.completed,
                failed=self._stats.failed,
                cancelled=self._stats.cancelled,
                batches_dispatched=self._stats.batches_dispatched,
                starvation_promotions=self._stats.starvation_promotions,
                queue_depth_interactive=len(self._queues[Priority.INTERACTIVE]),
                queue_depth_bulk=len(self._queues[Priority.BULK]),
                peak_queue_depth=self._stats.peak_queue_depth,
                total_wait_s=self._stats.total_wait_s,
                total_service_s=self._stats.total_service_s,
                batch_size_histogram=dict(self._stats.batch_size_histogram),
            )
        return snapshot

    def metrics(self) -> Dict[str, Any]:
        """Flat counter dict (the shape ReliableLLM.metrics uses)."""
        return self.stats().as_dict()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut down. ``drain=True`` dispatches everything already queued
        first; ``drain=False`` fails queued futures with
        :class:`SchedulerClosedError`. Either way no future is lost."""
        cancelled: List[LLMRequest] = []
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._drain_on_close = drain
            if not drain:
                for queue in self._queues.values():
                    while queue:
                        cancelled.append(queue.popleft())
                for request in cancelled:
                    if request.key is not None:
                        self._inflight.pop(request.key, None)
                    self._stats.cancelled += 1
                    self._m_cancelled.inc()
            self._cond.notify_all()
        for request in cancelled:
            if self.tracer is not None and request.span is not None:
                self.tracer.finish(
                    request.span,
                    status="error",
                    error="SchedulerClosedError: scheduler closed before dispatch",
                )
            request.future.set_exception(
                SchedulerClosedError("scheduler closed before dispatch")
            )
        self._worker.join(timeout=timeout)
        self._dispatch_pool.shutdown(wait=True)

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker: batch formation and dispatch
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            # Claim a dispatch slot *before* forming a batch, so batch
            # wait times are measured against real dispatch capacity —
            # and never while holding the lock (dispatch threads need it
            # to resolve futures). The slot is released by the dispatch
            # task (on a pool thread), so no try/finally can pair with
            # this acquire.
            self._dispatch_slots.acquire()  # repro: lint-ignore[bare-lock-acquire]
            purged: List[Tuple[LLMRequest, Exception]] = []
            with self._cond:
                while not self._closed and self._total_depth() == 0:
                    # Heartbeat timeout: close() notifies, but a bounded
                    # wait also guards against a lost wakeup leaving the
                    # worker parked forever.
                    self._cond.wait(timeout=0.5)
                if self._total_depth() == 0:  # closed and empty: done
                    self._dispatch_slots.release()
                    return
                batch = self._form_batch_locked(purged)
            self._fail_purged(purged)
            if not batch:
                # Everything poppable was cancelled/expired; the slot
                # goes back and the loop re-evaluates the queues.
                self._dispatch_slots.release()
                continue
            try:
                dispatched = self._dispatch_pool.submit(self._dispatch, batch)
            except RuntimeError:  # pool torn down mid-close
                self._dispatch_slots.release()
                self._fail_batch(
                    batch, SchedulerClosedError("scheduler closed during dispatch")
                )
            else:
                dispatched.add_done_callback(
                    lambda f, b=batch: self._dispatch_postmortem(f, b)
                )

    def _total_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _pick_priority_locked(self) -> Priority:
        interactive = self._queues[Priority.INTERACTIVE]
        bulk = self._queues[Priority.BULK]
        if not bulk:
            return Priority.INTERACTIVE
        if not interactive:
            self._consecutive_interactive = 0
            return Priority.BULK
        # Both non-empty: serve INTERACTIVE unless it has monopolized the
        # last ``starvation_limit`` batches.
        if self._consecutive_interactive >= self.starvation_limit:
            self._consecutive_interactive = 0
            self._stats.starvation_promotions += 1
            self._m_starvation.inc()
            return Priority.BULK
        return Priority.INTERACTIVE

    def _form_batch_locked(
        self, purged: List[Tuple[LLMRequest, Exception]]
    ) -> List[LLMRequest]:
        priority = self._pick_priority_locked()
        if priority == Priority.INTERACTIVE:
            self._consecutive_interactive += 1
        queue = self._queues[priority]
        head = self._pop_live_locked(queue, purged)
        if head is None:
            return []
        batch = [head]
        if not head.batchable or self.max_batch_size == 1:
            return batch
        deadline = head.enqueued_at + self.max_wait_ms / 1000.0
        if head.scope is not None:
            # The micro-batch window never outlives the head's remaining
            # budget: a nearly-expired query dispatches immediately
            # instead of waiting for batch mates it cannot afford.
            remaining_budget = head.scope.remaining()
            if remaining_budget is not None:
                deadline = min(deadline, self._clock() + remaining_budget)
        while len(batch) < self.max_batch_size:
            self._take_compatible_locked(queue, head, batch, purged)
            if len(batch) >= self.max_batch_size or self._closed:
                break
            remaining = deadline - self._clock()
            if remaining <= 0:
                break
            self._cond.wait(timeout=remaining)
        return batch

    def _lifecycle_error_for(self, request: LLMRequest) -> Optional[Exception]:
        """The typed failure a queued request has already earned (its
        scope was cancelled or its deadline expired), or None."""
        scope = request.scope
        if scope is None:
            return None
        if scope.cancelled:
            return QueryCancelled(
                "request cancelled while queued",
                query_id=scope.query_id,
                reason=scope.cancel_reason,
            )
        if scope.deadline is not None and scope.deadline.expired:
            deadline = scope.deadline
            return DeadlineExceeded(
                f"request queued past its deadline of {deadline.budget_s:.3f}s",
                budget_s=deadline.budget_s,
                elapsed_s=deadline.elapsed(),
            )
        return None

    def _pop_live_locked(
        self,
        queue: Deque[LLMRequest],
        purged: List[Tuple[LLMRequest, Exception]],
    ) -> Optional[LLMRequest]:
        """Pop the next request whose query is still alive; cancelled or
        expired entries are purged lazily here (their futures are failed
        by the caller once the lock is released)."""
        while queue:
            request = queue.popleft()
            error = self._lifecycle_error_for(request)
            if error is None:
                return request
            self._purge_locked(request, error, purged)
        return None

    def _purge_locked(
        self,
        request: LLMRequest,
        error: Exception,
        purged: List[Tuple[LLMRequest, Exception]],
    ) -> None:
        if request.key is not None:
            self._inflight.pop(request.key, None)
        self._stats.cancelled += 1
        self._m_cancelled.inc()
        purged.append((request, error))

    def _fail_purged(
        self, purged: List[Tuple[LLMRequest, Exception]]
    ) -> None:
        """Resolve purged futures (outside the lock: done-callbacks run
        inline on ``set_exception``)."""
        for request, error in purged:
            if self.tracer is not None and request.span is not None:
                self.tracer.finish(
                    request.span,
                    status="error",
                    error=f"{type(error).__name__}: {error}",
                )
            try:
                request.future.set_exception(error)
            except BaseException:  # caller cancelled the future while queued
                pass

    @staticmethod
    def _compatible(head: LLMRequest, other: LLMRequest) -> bool:
        return (
            other.batchable
            and other.model == head.model
            and other.max_output_tokens == head.max_output_tokens
        )

    def _take_compatible_locked(
        self,
        queue: Deque[LLMRequest],
        head: LLMRequest,
        batch: List[LLMRequest],
        purged: List[Tuple[LLMRequest, Exception]],
    ) -> None:
        """Move queue entries compatible with ``head`` into ``batch``,
        preserving the relative order of everything left behind.
        Cancelled/expired entries encountered along the way are purged."""
        kept: List[LLMRequest] = []
        while queue and len(batch) < self.max_batch_size:
            candidate = queue.popleft()
            error = self._lifecycle_error_for(candidate)
            if error is not None:
                self._purge_locked(candidate, error, purged)
            elif self._compatible(head, candidate):
                batch.append(candidate)
            else:
                kept.append(candidate)
        for request in reversed(kept):
            queue.appendleft(request)

    # ------------------------------------------------------------------

    def _dispatch(self, batch: List[LLMRequest]) -> None:
        started = self._clock()
        batch_span: Optional[Span] = None
        if self.tracer is not None:
            head = batch[0]
            # A batch is its own trace root: its members may belong to
            # many different query traces, so they link to it by the
            # ``batch_span`` attribute rather than by parentage.
            batch_span = self.tracer.start_span(
                f"batch:{head.model}",
                kind="batch",
                parent=None,
                model=head.model,
                size=len(batch),
                priority=head.priority.name.lower(),
            )
        try:
            client = self.client
            if client is None:
                results: List[Any] = [
                    SchedulerError("scheduler has no client bound")
                ] * len(batch)
            elif batch_span is not None:
                with self.tracer.attach(batch_span):
                    results = self._call_client(client, batch)
            else:
                results = self._call_client(client, batch)
        except BaseException as exc:  # noqa: BLE001 - whole-batch failure
            results = [exc] * len(batch)
        finished = self._clock()
        if self.tracer is not None and batch_span is not None:
            failures = sum(1 for r in results if isinstance(r, BaseException))
            batch_span.set_attributes(failed=failures)
            self.tracer.finish(
                batch_span,
                status="error" if failures == len(batch) else "ok",
            )
            seen_in_batch: set = set()
            for request, result in zip(batch, results):
                if request.span is None:
                    continue
                identity = (request.model, request.prompt, request.max_output_tokens)
                duplicate = identity in seen_in_batch
                seen_in_batch.add(identity)
                self._finish_request_span(
                    request.span,
                    result,
                    charge=not duplicate,
                    batch_span_id=batch_span.span_id,
                    dedup="batch" if duplicate else None,
                )
        with self._cond:
            self._stats.batches_dispatched += 1
            self._m_batches.inc()
            size = len(batch)
            self._stats.batch_size_histogram[size] = (
                self._stats.batch_size_histogram.get(size, 0) + 1
            )
            self._m_batch_size.observe(float(size))
            self._stats.total_service_s += finished - started
            self._m_service_ms.observe((finished - started) * 1000.0)
            for request, result in zip(batch, results):
                wait_s = started - request.enqueued_at
                self._stats.total_wait_s += wait_s
                self._m_wait_ms.observe(wait_s * 1000.0)
                if request.key is not None:
                    self._inflight.pop(request.key, None)
                if isinstance(result, BaseException):
                    self._stats.failed += 1
                    self._m_failed.inc()
                else:
                    self._stats.completed += 1
                    self._m_completed.inc()
            self._g_depth_interactive.set(len(self._queues[Priority.INTERACTIVE]))
            self._g_depth_bulk.set(len(self._queues[Priority.BULK]))
            self._cond.notify_all()
        self._dispatch_slots.release()
        for request, result in zip(batch, results):
            try:
                if isinstance(result, BaseException):
                    request.future.set_exception(result)
                else:
                    request.future.set_result(result)
            except BaseException:  # caller cancelled the future while queued
                with self._cond:
                    self._stats.cancelled += 1
                    self._m_cancelled.inc()

    def _call_client(self, client: LLMClient, batch: List[LLMRequest]) -> List[Any]:
        head = batch[0]
        if len(batch) == 1 and not head.batchable:
            # Stochastic request: dispatch alone, preserving temperature.
            try:
                return [
                    client.complete(
                        head.prompt,
                        model=head.model,
                        max_output_tokens=head.max_output_tokens,
                        temperature=head.temperature,
                    )
                ]
            except Exception as exc:  # noqa: BLE001
                return [exc]
        complete_many = getattr(client, "complete_many", None)
        if complete_many is not None:
            try:
                return complete_many(
                    [request.prompt for request in batch],
                    model=head.model,
                    max_output_tokens=head.max_output_tokens,
                    return_exceptions=True,
                )
            except TypeError:
                pass  # client predates return_exceptions; fall through
        results: List[Any] = []
        for request in batch:
            try:
                results.append(
                    client.complete(
                        request.prompt,
                        model=request.model,
                        max_output_tokens=request.max_output_tokens,
                        temperature=request.temperature,
                    )
                )
            except Exception as exc:  # noqa: BLE001 - isolate per request
                results.append(exc)
        return results

    def _dispatch_postmortem(
        self, task: "Future[None]", batch: List[LLMRequest]
    ) -> None:
        """Backstop for a dispatch task that died outside its own error
        containment (i.e. a bug in post-processing): free the dispatch
        slot it was holding and fail its futures, so waiters observe the
        crash instead of hanging forever on a leaked slot."""
        exc = task.exception()
        if exc is None:
            return
        # _dispatch releases the slot immediately before resolving
        # futures, and everything after that point is per-request
        # contained — an escaped exception implies the release was
        # never reached.
        self._dispatch_slots.release()
        with self._cond:
            for request in batch:
                if request.key is not None:
                    self._inflight.pop(request.key, None)
                if not request.future.done():
                    self._stats.failed += 1
                    self._m_failed.inc()
        for request in batch:
            if request.future.done():
                continue
            if self.tracer is not None and request.span is not None:
                self.tracer.finish(
                    request.span,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
            request.future.set_exception(
                SchedulerError(f"dispatch task crashed: {exc!r}")
            )

    def _fail_batch(self, batch: List[LLMRequest], exc: Exception) -> None:
        with self._cond:
            for request in batch:
                if request.key is not None:
                    self._inflight.pop(request.key, None)
                self._stats.cancelled += 1
                self._m_cancelled.inc()
        for request in batch:
            if self.tracer is not None and request.span is not None:
                self.tracer.finish(
                    request.span,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
            request.future.set_exception(exc)
