"""A client-shaped adapter over the scheduler.

Call sites written against :class:`repro.llm.base.LLMClient` (transform
factories, the Luna planner, the RAG generator) do not need to know about
futures or priorities: :class:`ScheduledLLM` binds a scheduler and a
priority class and exposes the familiar ``complete`` / ``complete_json``
/ ``complete_many`` surface, routing every call through the shared queue.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..lifecycle.deadline import wait_future
from ..llm.base import LLMClient, LLMResponse
from ..llm.client import repair_json
from ..llm.errors import MalformedOutputError
from .scheduler import Priority, RequestScheduler


class ScheduledLLM(LLMClient):
    """LLMClient facade that submits through a :class:`RequestScheduler`.

    Parameters
    ----------
    scheduler:
        The shared scheduler to submit to.
    priority:
        Admission class for every call made through this adapter.
    request_timeout_s:
        Optional cap on how long a caller blocks on its future. None
        blocks until the scheduler resolves it (the scheduler itself
        never loses a future, so this is safe).
    """

    def __init__(
        self,
        scheduler: RequestScheduler,
        priority: "Priority | int | str" = Priority.BULK,
        request_timeout_s: Optional[float] = None,
    ):
        self.scheduler = scheduler
        self.priority = priority
        self.request_timeout_s = request_timeout_s

    def complete(
        self,
        prompt: str,
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        temperature: float = 0.0,
    ) -> LLMResponse:
        """Submit through the scheduler and block for the response."""
        return self.scheduler.complete(
            prompt,
            model=model,
            max_output_tokens=max_output_tokens,
            temperature=temperature,
            priority=self.priority,
            timeout=self.request_timeout_s,
        )

    def complete_json(
        self,
        prompt: str,
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        json_retries: int = 2,
    ) -> Any:
        """Scheduled counterpart of :meth:`ReliableLLM.complete_json`.

        Malformed-output retries nudge the temperature, which also takes
        them out of the dedup/batch pool — a retry must not be collapsed
        onto the in-flight request that just produced garbage. When the
        underlying client caches responses, the poisoned entry is dropped
        so the retry reaches the backend.
        """
        last_error: Optional[MalformedOutputError] = None
        for attempt in range(json_retries + 1):
            temperature = 0.0 if attempt == 0 else 0.1
            response = self.complete(
                prompt,
                model=model,
                max_output_tokens=max_output_tokens,
                temperature=temperature,
            )
            try:
                return repair_json(response.text)
            except MalformedOutputError as exc:
                last_error = exc
                drop = getattr(self.scheduler.client, "_drop_cached", None)
                if drop is not None:
                    drop(model, prompt, max_output_tokens)
        assert last_error is not None
        raise last_error

    def complete_many(
        self,
        prompts: List[str],
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        parallelism: int = 8,
        return_exceptions: bool = False,
    ) -> List[Any]:
        """Submit all prompts at once and gather in input order.

        The scheduler does the batching; ``parallelism`` is accepted for
        interface compatibility but concurrency is governed by the
        scheduler's dispatch configuration.
        """
        del parallelism
        futures = [
            self.scheduler.submit(
                prompt,
                model=model,
                max_output_tokens=max_output_tokens,
                priority=self.priority,
            )
            for prompt in prompts
        ]
        results: List[Any] = []
        for future in futures:
            try:
                # Scope-aware gather: a cancelled/expired query stops
                # waiting here with its typed error instead of riding
                # shared futures to completion.
                results.append(wait_future(future, timeout=self.request_timeout_s))
            except Exception as exc:  # noqa: BLE001 - isolate per request
                if not return_exceptions:
                    raise
                results.append(exc)
        return results
