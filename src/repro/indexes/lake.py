"""The data lake: file-based storage of raw, unprocessed documents.

Figure 1 shows Sycamore reading from "a data lake (or similar) where
unstructured data is kept". This module implements that corner of the
architecture: a directory of ``.rawdoc`` files (the raw-document binary
format), written by crawlers/generators and read lazily by
``context.read.lake`` so ingestion never holds the whole corpus in
memory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional

from ..docmodel.raw import RawDocument

RAW_SUFFIX = ".rawdoc"


class DataLake:
    """A directory of raw documents.

    Filenames are ``<doc_id><suffix>``; doc ids therefore must be valid
    filename stems (the generators' ids are).
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def write(self, document: RawDocument) -> Path:
        """Store one raw document; returns its path."""
        path = self._path_for(document.doc_id)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(document.to_bytes())
        tmp.replace(path)
        return path

    def write_many(self, documents: Iterable[RawDocument]) -> int:
        """Store several raw documents; returns the count."""
        count = 0
        for document in documents:
            self.write(document)
            count += 1
        return count

    # ------------------------------------------------------------------

    def doc_ids(self) -> List[str]:
        """All stored document ids."""
        return sorted(p.stem for p in self.root.glob(f"*{RAW_SUFFIX}"))

    def __len__(self) -> int:
        return len(self.doc_ids())

    def __contains__(self, doc_id: str) -> bool:
        return self._path_for(doc_id).exists()

    def read(self, doc_id: str) -> RawDocument:
        """Return the cached records."""
        path = self._path_for(doc_id)
        if not path.exists():
            raise KeyError(f"no raw document {doc_id!r} in lake {self.root}")
        return RawDocument.from_bytes(path.read_bytes())

    def scan(self) -> Iterator[RawDocument]:
        """Lazily yield every raw document, sorted by id."""
        for doc_id in self.doc_ids():
            yield self.read(doc_id)

    def delete(self, doc_id: str) -> bool:
        """Remove by id; returns False when absent."""
        path = self._path_for(doc_id)
        if not path.exists():
            return False
        path.unlink()
        return True

    def _path_for(self, doc_id: str) -> Path:
        if "/" in doc_id or "\\" in doc_id or doc_id in ("", ".", ".."):
            raise ValueError(f"doc id {doc_id!r} is not a valid lake filename")
        return self.root / f"{doc_id}{RAW_SUFFIX}"
