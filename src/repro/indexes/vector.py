"""Vector index: exact cosine search plus an IVF-Flat approximate mode.

The vector store of Figure 1. Exact mode scans a packed matrix (fast
enough at bench scale); IVF mode clusters vectors into ``n_cells``
centroids with a small k-means and probes only the ``n_probe`` nearest
cells at query time — the standard recall/latency trade-off, which the
ablation benches can sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from .keyword import SearchHit


@dataclass
class _IvfState:
    centroids: np.ndarray  # (n_cells, dim)
    assignments: Dict[str, int]


class VectorIndex:
    """Cosine-similarity nearest-neighbour index over named vectors."""

    def __init__(self, dimensions: int):
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        self.dimensions = dimensions
        self._ids: List[str] = []
        self._id_to_row: Dict[str, int] = {}
        self._matrix = np.zeros((0, dimensions), dtype=np.float64)
        self._ivf: Optional[_IvfState] = None

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._id_to_row

    def add(self, doc_id: str, vector: Sequence[float]) -> None:
        """Add (or replace) a vector. Vectors are L2-normalized on entry."""
        array = np.asarray(vector, dtype=np.float64)
        if array.shape != (self.dimensions,):
            raise ValueError(
                f"expected vector of dimension {self.dimensions}, got {array.shape}"
            )
        norm = float(np.linalg.norm(array))
        if norm > 1e-12:
            array = array / norm
        else:
            array = np.zeros_like(array)
        row = self._id_to_row.get(doc_id)
        if row is not None:
            self._matrix[row] = array
        else:
            self._id_to_row[doc_id] = len(self._ids)
            self._ids.append(doc_id)
            self._matrix = np.vstack([self._matrix, array[None, :]])
        self._ivf = None  # clustering is stale

    def add_many(self, items: Dict[str, Sequence[float]]) -> None:
        """Add several entries."""
        for doc_id, vector in items.items():
            self.add(doc_id, vector)

    def remove(self, doc_id: str) -> bool:
        """Remove by id; returns False when absent."""
        row = self._id_to_row.pop(doc_id, None)
        if row is None:
            return False
        self._ids.pop(row)
        self._matrix = np.delete(self._matrix, row, axis=0)
        self._id_to_row = {d: i for i, d in enumerate(self._ids)}
        self._ivf = None
        return True

    def get(self, doc_id: str) -> Optional[np.ndarray]:
        """Fetch by id (None/KeyError when absent, per container)."""
        row = self._id_to_row.get(doc_id)
        if row is None:
            return None
        return self._matrix[row].copy()

    # ------------------------------------------------------------------

    def search(
        self,
        query: Sequence[float],
        k: int = 10,
        approximate: bool = False,
        n_probe: int = 4,
    ) -> List[SearchHit]:
        """Top-``k`` by cosine similarity. ``approximate`` uses IVF probing."""
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.dimensions,):
            raise ValueError(f"query dimension mismatch: {q.shape}")
        if k <= 0 or not self._ids:
            return []
        norm = float(np.linalg.norm(q))
        # Denormal norms lose precision under division; treat near-zero
        # vectors as zero (every similarity is then 0).
        if norm > 1e-12:
            q = q / norm
        else:
            q = np.zeros_like(q)
        if approximate and len(self._ids) >= 64:
            rows = self._ivf_candidate_rows(q, n_probe)
        else:
            rows = np.arange(len(self._ids))
        scores = np.clip(self._matrix[rows] @ q, -1.0, 1.0)
        order = np.argsort(-scores, kind="stable")[:k]
        return [
            SearchHit(doc_id=self._ids[int(rows[i])], score=float(scores[i]))
            for i in order
        ]

    # ------------------------------------------------------------------
    # IVF clustering
    # ------------------------------------------------------------------

    def _ivf_candidate_rows(self, q: np.ndarray, n_probe: int) -> np.ndarray:
        state = self._ensure_ivf()
        sims = state.centroids @ q
        probe = np.argsort(-sims)[: max(1, n_probe)]
        probe_set = set(int(c) for c in probe)
        rows = [
            self._id_to_row[doc_id]
            for doc_id, cell in state.assignments.items()
            if cell in probe_set
        ]
        if not rows:  # pathological clustering; fall back to exact
            return np.arange(len(self._ids))
        return np.asarray(sorted(rows))

    def _ensure_ivf(self, n_cells: Optional[int] = None, iterations: int = 8) -> _IvfState:
        if self._ivf is not None:
            return self._ivf
        n = len(self._ids)
        cells = n_cells or max(2, int(np.sqrt(n)))
        cells = min(cells, n)
        rng = np.random.default_rng(0)
        centroids = self._matrix[rng.choice(n, size=cells, replace=False)].copy()
        assignments = np.zeros(n, dtype=np.int64)
        for _ in range(iterations):
            sims = self._matrix @ centroids.T  # (n, cells)
            assignments = np.argmax(sims, axis=1)
            for cell in range(cells):
                members = self._matrix[assignments == cell]
                if len(members):
                    centroid = members.mean(axis=0)
                    norm = np.linalg.norm(centroid)
                    if norm > 0:
                        centroids[cell] = centroid / norm
        self._ivf = _IvfState(
            centroids=centroids,
            assignments={
                self._ids[i]: int(assignments[i]) for i in range(n)
            },
        )
        return self._ivf

    # ------------------------------------------------------------------

    def save(self, path: Path) -> None:
        """Persist to the given path."""
        payload = {
            "dimensions": self.dimensions,
            "ids": self._ids,
            "matrix": self._matrix.tolist(),
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Path) -> "VectorIndex":
        """Restore from a path written by ``save``."""
        payload = json.loads(Path(path).read_text())
        index = cls(dimensions=payload["dimensions"])
        index._ids = list(payload["ids"])
        index._id_to_row = {d: i for i, d in enumerate(index._ids)}
        matrix = np.asarray(payload["matrix"], dtype=np.float64)
        if matrix.size == 0:
            matrix = np.zeros((0, index.dimensions), dtype=np.float64)
        index._matrix = matrix
        return index
