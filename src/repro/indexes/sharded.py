"""Shard-aware retrieval: scatter a query, gather an exact global top-k.

The paper's OpenSearch deployment splits every index into shards and
answers queries by fanning out to all of them, merging per-shard top-k
lists into a global ranking. This module reproduces that shape over the
local index types:

* Documents are placed on shards by the same stable-fingerprint hash
  the cluster layer uses (:func:`~repro.cluster.sharding.shard_for`), so
  the index shard owning a document and the worker shard processing it
  agree by construction.
* BM25 stays *exact* under sharding: a first (cheap, postings-only)
  round sums per-term document frequencies, document counts and lengths
  across shards into a global :class:`~repro.indexes.keyword.CorpusStats`;
  the scoring round then runs on every shard with those global values,
  which makes per-shard scores directly comparable — the distributed-IDF
  technique production engines use.
* Cosine scores need no correction (the query is normalized once), so
  the vector fan-out is merge-only.

Per-shard queries run in a thread pool (index scans release the GIL in
numpy and are cheap in the BM25 dict walk); the merge is a pure sort on
``(-score, doc_id)``, so results are independent of shard completion
order — the same order-stability contract the cluster gather makes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

from ..cluster.sharding import shard_for
from .keyword import CorpusStats, KeywordIndex, SearchHit
from .vector import VectorIndex


def merge_hits(per_shard: Sequence[List[SearchHit]], k: int) -> List[SearchHit]:
    """Global top-``k`` from per-shard rankings (score desc, id asc)."""
    merged = [hit for hits in per_shard for hit in hits]
    merged.sort(key=lambda hit: (-hit.score, hit.doc_id))
    return merged[:k]


class ShardedKeywordIndex:
    """BM25 over ``n_shards`` disjoint :class:`KeywordIndex` shards.

    ``search`` is exact: it returns the same hits and scores as one
    unsharded index over the union of the documents (the equality the
    cluster test suite asserts).
    """

    def __init__(self, n_shards: int = 4, k1: float = 1.2, b: float = 0.75):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.shards = [KeywordIndex(k1=k1, b=b) for _ in range(n_shards)]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._shard_of(doc_id)

    def _shard_of(self, doc_id: str) -> KeywordIndex:
        return self.shards[shard_for(doc_id, len(self.shards))]

    def add(self, doc_id: str, text: str) -> None:
        """Index on the owning shard (stable-hash placement)."""
        self._shard_of(doc_id).add(doc_id, text)

    def remove(self, doc_id: str) -> bool:
        """Remove from the owning shard."""
        return self._shard_of(doc_id).remove(doc_id)

    def global_stats(self, query: str) -> CorpusStats:
        """Corpus statistics summed across every shard for this query."""
        from ..embedding.embedder import tokenize

        terms = set(tokenize(query))
        n_docs = 0
        total_length = 0.0
        doc_freqs: Dict[str, int] = {term: 0 for term in terms}
        for shard in self.shards:
            local = shard.local_stats(terms)
            n_docs += local.n_docs
            total_length += local.avg_length * local.n_docs
            for term in terms:
                doc_freqs[term] += local.doc_freqs.get(term, 0)
        return CorpusStats(
            n_docs=n_docs,
            avg_length=(total_length / n_docs) if n_docs else 0.0,
            doc_freqs=doc_freqs,
        )

    def search(self, query: str, k: int = 10) -> List[SearchHit]:
        """Exact global top-``k``: stats round, parallel scoring round,
        order-stable merge."""
        if k <= 0 or len(self) == 0:
            return []
        stats = self.global_stats(query)
        with ThreadPoolExecutor(
            max_workers=len(self.shards), thread_name_prefix="repro-fanout"
        ) as pool:
            per_shard = list(
                pool.map(lambda shard: shard.search(query, k=k, stats=stats), self.shards)
            )
        return merge_hits(per_shard, k)


class ShardedVectorIndex:
    """Cosine search over ``n_shards`` disjoint :class:`VectorIndex` shards."""

    def __init__(self, dimensions: int, n_shards: int = 4):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.dimensions = dimensions
        self.shards = [VectorIndex(dimensions) for _ in range(n_shards)]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._shard_of(doc_id)

    def _shard_of(self, doc_id: str) -> VectorIndex:
        return self.shards[shard_for(doc_id, len(self.shards))]

    def add(self, doc_id: str, vector: Sequence[float]) -> None:
        """Add to the owning shard (stable-hash placement)."""
        self._shard_of(doc_id).add(doc_id, vector)

    def remove(self, doc_id: str) -> bool:
        """Remove from the owning shard."""
        return self._shard_of(doc_id).remove(doc_id)

    def search(self, query: Sequence[float], k: int = 10) -> List[SearchHit]:
        """Exact global top-``k`` by cosine: per-shard scans are already
        on a common scale, so fan-out + merge needs no stats round."""
        if k <= 0 or len(self) == 0:
            return []
        with ThreadPoolExecutor(
            max_workers=len(self.shards), thread_name_prefix="repro-fanout"
        ) as pool:
            per_shard = list(
                pool.map(lambda shard: shard.search(query, k=k), self.shards)
            )
        return merge_hits(per_shard, k)
