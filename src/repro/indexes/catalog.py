"""The index catalog: named, multi-modal indexes plus their schemas.

Luna plans name an index ("read from the 'ntsb' index"); the catalog is
where that name resolves. Each named index bundles a keyword index, a
vector index, the backing doc store, and the *data schema* Luna's planner
consults — "Luna uses this schema during the query planning phase to
determine the appropriate set of operators" (§6.1). The schema can evolve
as new properties are extracted, which :meth:`NamedIndex.refresh_schema`
implements by sampling stored documents.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..docmodel.document import Document
from ..embedding.embedder import Embedder, HashingEmbedder
from .docstore import DocStore
from .graph import GraphStore
from .keyword import KeywordIndex, SearchHit
from .vector import VectorIndex


def infer_schema(documents: List[Document], sample: int = 100) -> Dict[str, str]:
    """Infer {field -> type} from document properties.

    A field's type is the dominant JSON type among non-null values in the
    sample. This is the "schema discovered in the data" the paper's
    planner relies on.
    """
    counts: Dict[str, Dict[str, int]] = {}
    for document in documents[:sample]:
        for key, value in document.properties.items():
            if value is None:
                continue
            counts.setdefault(key, {})
            name = _type_name(value)
            counts[key][name] = counts[key].get(name, 0) + 1
    return {
        key: max(sorted(type_counts), key=lambda t: type_counts[t])
        for key, type_counts in counts.items()
    }


def _type_name(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, list):
        return "list"
    if isinstance(value, dict):
        return "object"
    return "string"


@dataclass
class NamedIndex:
    """One logical dataset: documents plus retrieval structures and schema."""

    name: str
    embedder: Embedder
    docstore: DocStore = field(default_factory=DocStore)
    keyword: KeywordIndex = field(default_factory=KeywordIndex)
    vector: Optional[VectorIndex] = None
    graph: GraphStore = field(default_factory=GraphStore)
    schema: Dict[str, str] = field(default_factory=dict)
    description: str = ""
    #: Monotonically increasing corpus version, bumped on every mutation
    #: (document ingest). Serving-layer result caches key on it, so a
    #: version bump is the invalidation signal for cached answers.
    version: int = 0

    def __post_init__(self) -> None:
        if self.vector is None:
            self.vector = VectorIndex(dimensions=self.embedder.dimensions)

    def __len__(self) -> int:
        return len(self.docstore)

    def add_document(self, document: Document, embed: bool = True) -> None:
        """Store and index one document (text + optional vector)."""
        self.docstore.put(document)
        text = document.text_representation() or document.text
        self.keyword.add(document.doc_id, text)
        if embed:
            self.vector.add(document.doc_id, self.embedder.embed(text))
        self.version += 1

    def add_documents(self, documents: List[Document], embed: bool = True) -> None:
        """Store and index several documents, then refresh the schema."""
        for document in documents:
            self.add_document(document, embed=embed)
        self.refresh_schema()

    def all_documents(self) -> List[Document]:
        """Every stored document, in insertion order."""
        return list(self.docstore.scan())

    def search_keyword(self, query: str, k: int = 10) -> List[Document]:
        """Top-k documents by BM25."""
        hits = self.keyword.search(query, k=k)
        return self.docstore.get_many([h.doc_id for h in hits])

    def search_vector(self, query: str, k: int = 10, approximate: bool = False) -> List[Document]:
        """Top-k documents by embedding similarity."""
        hits = self.vector.search(self.embedder.embed(query), k=k, approximate=approximate)
        return self.docstore.get_many([h.doc_id for h in hits])

    def search_hybrid(self, query: str, k: int = 10, alpha: float = 0.5) -> List[Document]:
        """Reciprocal-rank-fusion of keyword and vector rankings."""
        keyword_hits = self.keyword.search(query, k=k * 2)
        vector_hits = self.vector.search(self.embedder.embed(query), k=k * 2)
        scores: Dict[str, float] = {}
        for rank, hit in enumerate(keyword_hits):
            scores[hit.doc_id] = scores.get(hit.doc_id, 0.0) + (1 - alpha) / (rank + 60)
        for rank, hit in enumerate(vector_hits):
            scores[hit.doc_id] = scores.get(hit.doc_id, 0.0) + alpha / (rank + 60)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return self.docstore.get_many([d for d, _ in ranked[:k]])

    def refresh_schema(self) -> Dict[str, str]:
        """Re-infer the schema from stored document properties."""
        self.schema = infer_schema(self.all_documents())
        return self.schema

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, directory: Path) -> None:
        """Persist the whole index (documents, retrieval structures,
        schema) to a directory for reuse across sessions."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.docstore.save(directory / "documents.jsonl")
        self.keyword.save(directory / "keyword.json")
        self.vector.save(directory / "vector.json")
        self.graph.save(directory / "graph.json")
        (directory / "meta.json").write_text(
            json.dumps(
                {
                    "name": self.name,
                    "description": self.description,
                    "schema": self.schema,
                    "version": self.version,
                }
            )
        )

    @classmethod
    def load(cls, directory: Path, embedder: Embedder) -> "NamedIndex":
        """Restore an index previously written by :meth:`save`."""
        directory = Path(directory)
        meta = json.loads((directory / "meta.json").read_text())
        index = cls(
            name=meta["name"],
            embedder=embedder,
            docstore=DocStore.load(directory / "documents.jsonl"),
            keyword=KeywordIndex.load(directory / "keyword.json"),
            vector=VectorIndex.load(directory / "vector.json"),
            graph=GraphStore.load(directory / "graph.json"),
            schema=dict(meta.get("schema", {})),
            description=meta.get("description", ""),
            version=int(meta.get("version", 0)),
        )
        return index

    def schema_for_planner(self) -> Dict[str, Any]:
        """The schema payload placed in the planner prompt."""
        return {
            "index": self.name,
            "description": self.description,
            "fields": dict(self.schema),
        }


class IndexCatalog:
    """Registry of named indexes shared by Sycamore writers and Luna.

    The catalog carries a monotonically increasing :meth:`version`
    covering every mutation under it — index creation, deletion, and
    document ingest into any member index. Serving-layer caches use it
    (and the per-index ``version``) as their invalidation signal.
    """

    def __init__(self, embedder: Optional[Embedder] = None):
        self.embedder = embedder or HashingEmbedder()
        self._indexes: Dict[str, NamedIndex] = {}
        #: Mutations not captured by live index versions (create/drop/load,
        #: plus the final versions of dropped indexes so the total never
        #: goes backwards).
        self._retired_versions = 0

    def version(self) -> int:
        """Monotonic catalog version: bumps on create/drop/load and on
        every document ingested into any member index."""
        return self._retired_versions + sum(
            index.version for index in self._indexes.values()
        )

    def versions(self) -> Dict[str, int]:
        """Per-index corpus versions (for status displays)."""
        return {name: self._indexes[name].version for name in sorted(self._indexes)}

    def create(self, name: str, description: str = "", exist_ok: bool = False) -> NamedIndex:
        """Create (or with exist_ok, fetch) a named index."""
        if name in self._indexes:
            if exist_ok:
                return self._indexes[name]
            raise ValueError(f"index {name!r} already exists")
        index = NamedIndex(name=name, embedder=self.embedder, description=description)
        self._indexes[name] = index
        self._retired_versions += 1
        return index

    def get(self, name: str) -> NamedIndex:
        """Fetch by id (None/KeyError when absent, per container)."""
        try:
            return self._indexes[name]
        except KeyError:
            raise KeyError(
                f"unknown index {name!r}; known: {sorted(self._indexes)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._indexes

    def names(self) -> List[str]:
        """Sorted names of all registered indexes."""
        return sorted(self._indexes)

    def drop(self, name: str) -> bool:
        """Remove an index; returns False when absent."""
        dropped = self._indexes.pop(name, None)
        if dropped is None:
            return False
        # Fold the dropped index's version into the retired tally so the
        # catalog version stays monotonic across drop + recreate.
        self._retired_versions += dropped.version + 1
        return True

    def save(self, directory: Path) -> None:
        """Persist every index to ``directory/<name>/``."""
        directory = Path(directory)
        for name, index in self._indexes.items():
            index.save(directory / name)

    def load(self, directory: Path) -> List[str]:
        """Load every index found under ``directory``; returns their names."""
        directory = Path(directory)
        loaded = []
        for child in sorted(directory.iterdir()):
            if (child / "meta.json").exists():
                index = NamedIndex.load(child, embedder=self.embedder)
                replaced = self._indexes.get(index.name)
                if replaced is not None:
                    self._retired_versions += replaced.version
                self._indexes[index.name] = index
                self._retired_versions += 1
                loaded.append(index.name)
        return loaded
