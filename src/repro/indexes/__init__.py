"""Index substrate: keyword (BM25), vector, graph, and document stores.

These stand in for OpenSearch in the paper's architecture (Figure 1).
The :class:`IndexCatalog` is the top-level entry point: it hands out
:class:`NamedIndex` bundles that Sycamore writes and Luna queries.
"""

from .catalog import IndexCatalog, NamedIndex, infer_schema
from .docstore import DocStore
from .graph import GraphStore, Triple
from .keyword import KeywordIndex, SearchHit
from .lake import DataLake
from .vector import VectorIndex

__all__ = [
    "DocStore",
    "GraphStore",
    "DataLake",
    "IndexCatalog",
    "KeywordIndex",
    "NamedIndex",
    "SearchHit",
    "Triple",
    "VectorIndex",
    "infer_schema",
]
