"""Property-graph triple store.

The graph store of Figure 1, used for the pay-as-you-go knowledge graph
the paper discusses (§7): entities extracted from documents become nodes,
relations become labelled edges, and every triple keeps provenance back
to the document it came from — the paper's accuracy tenet requires
hallucination-auditable graphs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

import networkx as nx


@dataclass(frozen=True)
class Triple:
    """One (subject, predicate, object) fact with provenance."""

    subject: str
    predicate: str
    object: str
    source_doc_id: Optional[str] = None

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        data = {"subject": self.subject, "predicate": self.predicate, "object": self.object}
        if self.source_doc_id is not None:
            data["source_doc_id"] = self.source_doc_id
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Triple":
        """Rebuild from a dictionary produced by ``to_dict``."""
        return cls(
            subject=data["subject"],
            predicate=data["predicate"],
            object=data["object"],
            source_doc_id=data.get("source_doc_id"),
        )


class GraphStore:
    """Multi-relational graph over string-named entities.

    Backed by a :class:`networkx.MultiDiGraph`; each edge carries its
    predicate and the id of the document that asserted it.
    """

    def __init__(self) -> None:
        self._graph = nx.MultiDiGraph()

    # ------------------------------------------------------------------

    def add_triple(
        self,
        subject: str,
        predicate: str,
        object: str,
        source_doc_id: Optional[str] = None,
    ) -> Triple:
        """Assert one (subject, predicate, object) fact."""
        triple = Triple(subject, predicate, object, source_doc_id)
        self._graph.add_edge(
            subject, object, predicate=predicate, source_doc_id=source_doc_id
        )
        return triple

    def add_entity(self, name: str, **attributes: Any) -> None:
        """Register an entity node with attributes."""
        self._graph.add_node(name, **attributes)

    def entity_attributes(self, name: str) -> Dict[str, Any]:
        """Attributes dict of a known entity."""
        if name not in self._graph:
            raise KeyError(f"unknown entity {name!r}")
        return dict(self._graph.nodes[name])

    # ------------------------------------------------------------------

    def num_entities(self) -> int:
        """Number of entities in the graph."""
        return self._graph.number_of_nodes()

    def num_triples(self) -> int:
        """Number of asserted facts."""
        return self._graph.number_of_edges()

    def entities(self) -> List[str]:
        """All entity names."""
        return list(self._graph.nodes)

    def triples(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        object: Optional[str] = None,
    ) -> List[Triple]:
        """Pattern match with any combination of fixed positions."""
        results = []
        for s, o, data in self._graph.edges(data=True):
            if subject is not None and s != subject:
                continue
            if object is not None and o != object:
                continue
            if predicate is not None and data.get("predicate") != predicate:
                continue
            results.append(Triple(s, data.get("predicate", ""), o, data.get("source_doc_id")))
        return results

    def neighbors(self, entity: str, predicate: Optional[str] = None) -> List[str]:
        """Objects reachable from ``entity`` via one (optionally typed) edge."""
        if entity not in self._graph:
            return []
        found = []
        for _, target, data in self._graph.out_edges(entity, data=True):
            if predicate is None or data.get("predicate") == predicate:
                found.append(target)
        return sorted(set(found))

    def incoming(self, entity: str, predicate: Optional[str] = None) -> List[str]:
        """Subjects with an (optionally typed) edge into ``entity``."""
        if entity not in self._graph:
            return []
        found = []
        for source, _, data in self._graph.in_edges(entity, data=True):
            if predicate is None or data.get("predicate") == predicate:
                found.append(source)
        return sorted(set(found))

    def path_exists(self, source: str, target: str, max_hops: int = 3) -> bool:
        """True when target is reachable within max_hops."""
        if source not in self._graph or target not in self._graph:
            return False
        try:
            length = nx.shortest_path_length(self._graph, source, target)
        except nx.NetworkXNoPath:
            return False
        return length <= max_hops

    def provenance(self, subject: str, predicate: str, object: str) -> List[str]:
        """Document ids asserting the given fact (the audit trail)."""
        return sorted(
            {
                t.source_doc_id
                for t in self.triples(subject, predicate, object)
                if t.source_doc_id is not None
            }
        )

    # ------------------------------------------------------------------

    def save(self, path: Path) -> None:
        """Persist to the given path."""
        payload = {
            "nodes": [
                {"name": n, "attributes": dict(attrs)}
                for n, attrs in self._graph.nodes(data=True)
            ],
            "triples": [t.to_dict() for t in self.triples()],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Path) -> "GraphStore":
        """Restore from a path written by ``save``."""
        payload = json.loads(Path(path).read_text())
        store = cls()
        for node in payload.get("nodes", []):
            store.add_entity(node["name"], **node.get("attributes", {}))
        for data in payload.get("triples", []):
            triple = Triple.from_dict(data)
            store.add_triple(
                triple.subject, triple.predicate, triple.object, triple.source_doc_id
            )
        return store
