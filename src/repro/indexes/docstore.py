"""Document store: the system of record Sycamore writes processed DocSets to.

Holds full :class:`~repro.docmodel.document.Document` objects by id with
optional JSONL persistence. The keyword/vector indexes store only ids and
scores; query execution fetches the documents themselves from here.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

from ..docmodel.document import Document


class DocStore:
    """In-memory document store with JSONL save/load."""

    def __init__(self) -> None:
        self._docs: Dict[str, Document] = {}

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._docs

    def put(self, document: Document) -> None:
        """Store one document, replacing any same-id entry."""
        self._docs[document.doc_id] = document

    def put_many(self, documents: List[Document]) -> None:
        """Store several documents."""
        for document in documents:
            self.put(document)

    def get(self, doc_id: str) -> Optional[Document]:
        """Fetch by id (None/KeyError when absent, per container)."""
        return self._docs.get(doc_id)

    def get_many(self, doc_ids: List[str]) -> List[Document]:
        """Fetch documents by id, silently skipping unknown ids."""
        return [self._docs[d] for d in doc_ids if d in self._docs]

    def delete(self, doc_id: str) -> bool:
        """Remove by id; returns False when absent."""
        return self._docs.pop(doc_id, None) is not None

    def scan(self, predicate: Optional[Callable[[Document], bool]] = None) -> Iterator[Document]:
        """All documents in insertion order, optionally filtered."""
        for document in self._docs.values():
            if predicate is None or predicate(document):
                yield document

    def doc_ids(self) -> List[str]:
        """All stored document ids."""
        return list(self._docs)

    def clear(self) -> None:
        """Remove all entries."""
        self._docs.clear()

    # ------------------------------------------------------------------

    def save(self, path: Path) -> None:
        """Persist to the given path."""
        with open(path, "w", encoding="utf-8") as handle:
            for document in self._docs.values():
                handle.write(document.to_json())
                handle.write("\n")

    @classmethod
    def load(cls, path: Path) -> "DocStore":
        """Restore from a path written by ``save``."""
        store = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    store.put(Document.from_json(line))
        return store
