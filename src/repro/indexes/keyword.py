"""BM25 keyword index, written from scratch.

Stands in for the OpenSearch keyword store in the paper's architecture
(Figure 1: Sycamore "can store processed data in a variety of indexes,
including keyword, vector, and graph stores"). Implements the standard
Okapi BM25 ranking function over an inverted index, with incremental
add/remove and JSON persistence.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from ..embedding.embedder import tokenize


@dataclass
class SearchHit:
    """One ranked retrieval result."""

    doc_id: str
    score: float


@dataclass
class CorpusStats:
    """Corpus-level BM25 statistics, separable from any one index.

    A sharded deployment computes these *globally* (documents and term
    document-frequencies summed across shards) and passes them into each
    shard's :meth:`KeywordIndex.search`, which makes per-shard scores
    globally comparable — the standard distributed-BM25 trick that keeps
    scatter/gather retrieval exact rather than approximate.
    """

    n_docs: int
    avg_length: float
    #: term -> number of documents containing it (across the corpus).
    doc_freqs: Dict[str, int]


class KeywordIndex:
    """Okapi BM25 over an in-memory inverted index.

    ``k1`` saturates term frequency; ``b`` controls length normalization.
    Defaults are the standard Robertson values.
    """

    def __init__(self, k1: float = 1.2, b: float = 0.75):
        if k1 < 0 or not 0.0 <= b <= 1.0:
            raise ValueError(f"invalid BM25 parameters k1={k1}, b={b}")
        self.k1 = k1
        self.b = b
        # term -> {doc_id -> term frequency}
        self._postings: Dict[str, Dict[str, int]] = {}
        self._doc_lengths: Dict[str, int] = {}
        self._total_length = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    def doc_ids(self) -> List[str]:
        """All stored document ids."""
        return list(self._doc_lengths)

    def add(self, doc_id: str, text: str) -> None:
        """Index ``text`` under ``doc_id``; re-adding replaces the old text."""
        if doc_id in self._doc_lengths:
            self.remove(doc_id)
        tokens = tokenize(text)
        self._doc_lengths[doc_id] = len(tokens)
        self._total_length += len(tokens)
        for token in tokens:
            self._postings.setdefault(token, {})
            self._postings[token][doc_id] = self._postings[token].get(doc_id, 0) + 1

    def remove(self, doc_id: str) -> bool:
        """Remove a document; returns False if it was not indexed."""
        length = self._doc_lengths.pop(doc_id, None)
        if length is None:
            return False
        self._total_length -= length
        empty_terms = []
        for term, postings in self._postings.items():
            if doc_id in postings:
                del postings[doc_id]
                if not postings:
                    empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]
        return True

    # ------------------------------------------------------------------

    def search(
        self, query: str, k: int = 10, stats: Optional[CorpusStats] = None
    ) -> List[SearchHit]:
        """Top-``k`` documents by BM25 score; ties break on doc_id.

        ``stats`` overrides the corpus-level quantities (document count,
        average length, per-term document frequency) with externally
        computed values — how a shard of a larger corpus scores its
        local postings on the global scale (see :class:`CorpusStats`).
        """
        if k <= 0 or not self._doc_lengths:
            return []
        if stats is None:
            n_docs = len(self._doc_lengths)
            avg_length = self._total_length / n_docs if n_docs else 0.0
        else:
            n_docs = stats.n_docs
            avg_length = stats.avg_length
        scores: Dict[str, float] = {}
        for term in set(tokenize(query)):
            postings = self._postings.get(term)
            if not postings:
                continue
            df = len(postings) if stats is None else stats.doc_freqs.get(term, 0)
            if df <= 0:
                continue
            idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
            for doc_id, tf in postings.items():
                length = self._doc_lengths[doc_id]
                denom = tf + self.k1 * (
                    1.0 - self.b + self.b * (length / avg_length if avg_length else 1.0)
                )
                scores[doc_id] = scores.get(doc_id, 0.0) + idf * tf * (self.k1 + 1.0) / denom
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [SearchHit(doc_id=d, score=s) for d, s in ranked[:k]]

    def term_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term.lower(), {}))

    def local_stats(self, terms: "Set[str] | None" = None) -> CorpusStats:
        """This index's contribution to corpus-level statistics.

        A scatter/gather searcher sums these across shards (documents,
        total length via ``avg_length * n_docs``, per-term document
        frequencies) to build the global :class:`CorpusStats` it then
        scores every shard with.
        """
        if terms is None:
            terms = set(self._postings)
        n_docs = len(self._doc_lengths)
        return CorpusStats(
            n_docs=n_docs,
            avg_length=(self._total_length / n_docs) if n_docs else 0.0,
            doc_freqs={
                term: len(self._postings.get(term, {})) for term in terms
            },
        )

    # ------------------------------------------------------------------

    def save(self, path: Path) -> None:
        """Persist to the given path."""
        payload = {
            "k1": self.k1,
            "b": self.b,
            "postings": self._postings,
            "doc_lengths": self._doc_lengths,
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Path) -> "KeywordIndex":
        """Restore from a path written by ``save``."""
        payload = json.loads(Path(path).read_text())
        index = cls(k1=payload["k1"], b=payload["b"])
        index._postings = {
            term: dict(postings) for term, postings in payload["postings"].items()
        }
        index._doc_lengths = dict(payload["doc_lengths"])
        index._total_length = sum(index._doc_lengths.values())
        return index
