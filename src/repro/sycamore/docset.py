"""DocSet: the reliable distributed collection at the core of Sycamore.

"DocSets are reliable distributed collections, similar to Spark
DataFrames, but the elements are hierarchical documents represented with
semantic trees and additional metadata" (§3). A DocSet wraps a lazy
execution plan over :class:`~repro.docmodel.document.Document` records;
transforms compose new plans, and terminal operations (count, take,
write) trigger execution on the context's executor.

The transform catalogue follows the paper's Table 1:

=============  ==================================================
Core           ``map``, ``filter``, ``flat_map``
Structural     ``partition``, ``explode``, ``merge_elements``
Analytic       ``reduce_by_key``, ``sort``, ``top_k``, ``aggregate``,
               ``filter_by_property``, ``join``
LLM-powered    ``llm_query``, ``llm_filter``, ``extract_properties``,
               ``summarize``, ``classify``, ``embed``
=============  ==================================================
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..docmodel.document import Document, Node
from ..docmodel.elements import Element
from ..execution.materialize import DiskCache, MemoryCache
from ..execution.plan import Plan
from ..llm.prompts import PromptTemplate
from . import aggregates, llm_transforms
from .context import SycamoreContext

_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "contains": lambda a, b: str(b).lower() in str(a).lower(),
}


class DocSet:
    """A lazy collection of documents bound to a context."""

    def __init__(self, context: SycamoreContext, plan: Plan):
        self.context = context
        self.plan = plan

    @classmethod
    def from_documents(cls, context: SycamoreContext, documents: Sequence[Document]) -> "DocSet":
        """DocSet over an in-memory document list."""
        return cls(context, Plan.from_items(list(documents), name="read_documents"))

    # ------------------------------------------------------------------
    # Core functional transforms
    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[Document], Document],
        name: Optional[str] = None,
        on_error: Optional[str] = None,
    ) -> "DocSet":
        """Apply an arbitrary per-document UDF.

        ``on_error`` sets this transform's failure-containment policy
        (``fail`` | ``retry`` | ``skip`` | ``dead_letter``); the default
        defers to the context.
        """
        return DocSet(self.context, self.plan.map(fn, name=name, on_error=on_error))

    def filter(
        self,
        fn: Callable[[Document], bool],
        name: Optional[str] = None,
        on_error: Optional[str] = None,
    ) -> "DocSet":
        """Keep documents satisfying an arbitrary predicate UDF."""
        return DocSet(self.context, self.plan.filter(fn, name=name, on_error=on_error))

    def flat_map(
        self,
        fn: Callable[[Document], Iterable[Document]],
        name: Optional[str] = None,
        on_error: Optional[str] = None,
    ) -> "DocSet":
        """Map each document to zero or more documents."""
        return DocSet(self.context, self.plan.flat_map(fn, name=name, on_error=on_error))

    # ------------------------------------------------------------------
    # Structural transforms
    # ------------------------------------------------------------------

    def partition(self, partitioner: Any, name: str = "partition") -> "DocSet":
        """Parse raw binary documents into semantic trees (§4, Fig. 3).

        ``partitioner`` is any object with ``partition(document) ->
        Document`` (e.g. :class:`repro.partitioner.ArynPartitioner`).
        """
        return self.map(partitioner.partition, name=name)

    def explode(self, name: str = "explode") -> "DocSet":
        """One document per leaf element (chunk preparation, §5.2).

        Child documents inherit the parent's properties, carry the element
        text as their text, and record ``parent_id`` for lineage.
        """

        def explode_document(document: Document) -> List[Document]:
            children = []
            for position, element in enumerate(document.elements):
                child = Document(
                    text=element.text_representation(),
                    parent_id=document.doc_id,
                    properties=dict(document.properties),
                )
                child.properties.update(
                    {
                        "element_type": element.type,
                        "element_index": position,
                        "page": element.page,
                    }
                )
                child.root = Node(label="chunk", children=[element.copy()])
                children.append(child)
            return children

        return self.flat_map(explode_document, name=name)

    def map_elements(
        self, fn: Callable[[Element], Element], name: str = "map_elements"
    ) -> "DocSet":
        """Apply a UDF to every leaf element, preserving tree structure."""

        def apply(document: Document) -> Document:
            result = document.copy()
            _rewrite_elements(result.root, fn)
            return result

        return self.map(apply, name=name)

    def filter_elements(
        self, predicate: Callable[[Element], bool], name: str = "filter_elements"
    ) -> "DocSet":
        """Drop leaf elements failing the predicate (e.g. page furniture)."""

        def apply(document: Document) -> Document:
            result = document.copy()
            _prune_elements(result.root, predicate)
            return result

        return self.map(apply, name=name)

    def flatten_properties(self, separator: str = ".") -> "DocSet":
        """Flatten nested property objects into dotted keys (Table 1 'flatten').

        ``{"meta": {"year": 2023}}`` becomes ``{"meta.year": 2023}`` so
        analytic transforms and index schemas can address nested fields
        directly.
        """

        def apply(document: Document) -> Document:
            result = document.copy()
            result.properties = _flatten(result.properties, separator)
            return result

        return self.map(apply, name="flatten_properties")

    def merge_elements(
        self,
        should_merge: Callable[[Element, Element], bool],
        name: str = "merge_elements",
    ) -> "DocSet":
        """Coalesce adjacent leaf elements when ``should_merge`` approves.

        Used to stitch fragmented text regions back together before
        chunking (a structural transform in the sense of Table 1).
        """

        def merge(document: Document) -> Document:
            result = document.copy()
            merged: List[Element] = []
            for element in result.elements:
                if merged and should_merge(merged[-1], element):
                    merged[-1] = merged[-1].copy()
                    merged[-1].text = f"{merged[-1].text}\n{element.text}"
                else:
                    merged.append(element)
            result.root = Node(label="document", children=merged)
            return result

        return self.map(merge, name=name)

    # ------------------------------------------------------------------
    # Analytic transforms (property-oriented; missing values tolerated)
    # ------------------------------------------------------------------

    def filter_by_property(
        self, field: str, op: str, value: Any, name: Optional[str] = None
    ) -> "DocSet":
        """Structured filter on a property; missing values never match."""
        if op not in _COMPARATORS:
            raise ValueError(f"unknown operator {op!r}; known: {sorted(_COMPARATORS)}")
        compare = _COMPARATORS[op]
        get = aggregates.property_getter(field)

        def predicate(document: Document) -> bool:
            actual = get(document)
            if actual is None:
                return False
            try:
                return bool(compare(actual, value))
            except TypeError:
                return False

        return self.filter(predicate, name=name or f"filter_{field}_{op}")

    def sort(self, field: str, descending: bool = False) -> "DocSet":
        """Sort by property (barrier); missing values sort last."""
        return DocSet(
            self.context,
            self.plan.aggregate(
                lambda docs: aggregates.sort_documents(docs, field, descending),
                name=f"sort_{field}",
            ),
        )

    def limit(self, k: int) -> "DocSet":
        """Keep the first ``k`` documents."""
        if k < 0:
            raise ValueError("limit must be non-negative")
        return DocSet(
            self.context,
            self.plan.aggregate(lambda docs: docs[:k], name=f"limit_{k}"),
        )

    def reduce_by_key(
        self,
        key: Union[str, Callable[[Document], Any]],
        reduce_fn: Callable[[List[Document]], Any],
    ) -> "DocSet":
        """Group-and-reduce (Table 1); result docs have ``key``/``value``."""
        key_fn = aggregates.property_getter(key) if isinstance(key, str) else key
        return DocSet(
            self.context,
            self.plan.aggregate(
                lambda docs: aggregates.reduce_by_key(docs, key_fn, reduce_fn),
                name="reduce_by_key",
            ),
        )

    def join(
        self, other: "DocSet", left_on: str, right_on: str, how: str = "inner"
    ) -> "DocSet":
        """Property-equality join with another DocSet (barrier on both sides)."""
        right_docs = other.take_all()
        return DocSet(
            self.context,
            self.plan.aggregate(
                lambda docs: aggregates.hash_join(docs, right_docs, left_on, right_on, how),
                name=f"join_{left_on}_{right_on}",
            ),
        )

    # ------------------------------------------------------------------
    # LLM-powered transforms
    # ------------------------------------------------------------------

    def llm_query(
        self,
        prompt: "PromptTemplate | str",
        output_property: str,
        model: Optional[str] = None,
        num_elements: Optional[int] = None,
        parse_json: bool = False,
        on_error: Optional[str] = None,
    ) -> "DocSet":
        """Run a prompt against each document, storing the output (§5.2)."""
        fn = llm_transforms.make_llm_query_fn(
            self.context, prompt, output_property, model, num_elements, parse_json
        )
        return self.map(fn, name=f"llm_query_{output_property}", on_error=on_error)

    def extract_properties(
        self,
        schema: Dict[str, str],
        model: Optional[str] = None,
        num_elements: Optional[int] = None,
        on_error: Optional[str] = None,
    ) -> "DocSet":
        """Extract schema fields from each document into properties (Fig. 3)."""
        fn = llm_transforms.make_extract_properties_fn(
            self.context, schema, model, num_elements
        )
        return self.map(fn, name="extract_properties", on_error=on_error)

    def llm_filter(
        self,
        condition: str,
        model: Optional[str] = None,
        num_elements: Optional[int] = None,
        on_error: Optional[str] = None,
    ) -> "DocSet":
        """Keep documents satisfying a natural-language condition."""
        fn = llm_transforms.make_llm_filter_fn(self.context, condition, model, num_elements)
        return self.filter(fn, name="llm_filter", on_error=on_error)

    def summarize(
        self,
        output_property: str = "summary",
        model: Optional[str] = None,
        max_sentences: int = 3,
        on_error: Optional[str] = None,
    ) -> "DocSet":
        """Per-document summary into a property."""
        fn = llm_transforms.make_summarize_fn(
            self.context, output_property, model, max_sentences
        )
        return self.map(fn, name="summarize", on_error=on_error)

    def classify(
        self,
        categories: Sequence[str],
        output_property: str,
        model: Optional[str] = None,
        on_error: Optional[str] = None,
    ) -> "DocSet":
        """Assign each document one of ``categories``."""
        fn = llm_transforms.make_classify_fn(self.context, categories, output_property, model)
        return self.map(fn, name=f"classify_{output_property}", on_error=on_error)

    def extract_entities(
        self,
        output_property: str = "entities",
        model: Optional[str] = None,
        num_elements: Optional[int] = None,
        on_error: Optional[str] = None,
    ) -> "DocSet":
        """Extract entity/relation triples into a property (§7)."""
        fn = llm_transforms.make_extract_entities_fn(
            self.context, output_property, model, num_elements
        )
        return self.map(fn, name="extract_entities", on_error=on_error)

    def embed(self, on_error: Optional[str] = None) -> "DocSet":
        """Attach an embedding vector property to each document (Fig. 3)."""
        return self.map(
            llm_transforms.make_embed_fn(self.context), name="embed", on_error=on_error
        )

    # ------------------------------------------------------------------
    # Materialization and terminals
    # ------------------------------------------------------------------

    def materialize(self, path: Optional[Path] = None) -> "DocSet":
        """Cache boundary: to memory, or to disk when ``path`` is given (§5.3).

        Disk materializations are stamped with the upstream plan's
        structural fingerprint, so a cache file left by a *different*
        pipeline is recomputed instead of served stale.
        """
        if path is not None:
            from ..execution.materialize import plan_fingerprint

            cache: Any = DiskCache(path, fingerprint=plan_fingerprint(self.plan))
        else:
            cache = MemoryCache()
        return DocSet(self.context, self.plan.materialize(cache))

    def take_all(self) -> List[Document]:
        """Execute the plan and collect every document."""
        executor = self.context.executor()
        documents = executor.take_all(self.plan)
        self.context.last_stats = executor.last_stats
        return documents

    def take(self, k: int) -> List[Document]:
        """Execute and collect up to k output documents."""
        executor = self.context.executor()
        results = []
        for document in executor.execute(self.plan):
            results.append(document)
            if len(results) >= k:
                break
        self.context.last_stats = executor.last_stats
        return results

    def first(self) -> Optional[Document]:
        """The first output document, or None."""
        taken = self.take(1)
        return taken[0] if taken else None

    def count(self) -> int:
        """Execute and count the documents."""
        executor = self.context.executor()
        total = executor.count(self.plan)
        self.context.last_stats = executor.last_stats
        return total

    def distinct(self, field: str) -> "DocSet":
        """Keep the first document per distinct value of a property."""

        def dedupe(documents: List[Document]) -> List[Document]:
            get = aggregates.property_getter(field)
            seen = set()
            kept = []
            for document in documents:
                value = get(document)
                try:
                    key = value if not isinstance(value, list) else tuple(value)
                    hash(key)
                except TypeError:
                    key = str(value)
                if key not in seen:
                    seen.add(key)
                    kept.append(document)
            return kept

        return DocSet(
            self.context,
            self.plan.aggregate(dedupe, name=f"distinct_{field}"),
        )

    def project(self, fields: "str | Sequence[str]") -> List[Any]:
        """Values of the named properties, per document (terminal).

        One field yields a flat list; several yield tuples — the shape
        Luna's ``Project`` operator returns.
        """
        if isinstance(fields, str):
            fields = [fields]
        getters = [aggregates.property_getter(str(f)) for f in fields]
        documents = self.take_all()
        if len(getters) == 1:
            return [getters[0](d) for d in documents]
        return [tuple(get(d) for get in getters) for d in documents]

    def top_k(self, field: str, k: int = 1, descending: bool = True) -> List[tuple]:
        """(value, count) pairs of the most/least frequent property values."""
        return aggregates.top_k_values(self.take_all(), field, k, descending)

    def aggregate(
        self, func: str, field: str, group_by: Optional[str] = None
    ) -> Union[Optional[float], Dict[Any, Optional[float]]]:
        """Numeric aggregate over a property, optionally grouped."""
        documents = self.take_all()
        if group_by is None:
            return aggregates.aggregate_field(documents, func, field)
        return aggregates.grouped_aggregate(documents, func, field, group_by)

    def summarize_all(
        self, model: Optional[str] = None, question: Optional[str] = None
    ) -> str:
        """Collection-level synthesis (terminal)."""
        return llm_transforms.summarize_collection(
            self.context, self.take_all(), model=model, question=question
        )

    def explain(self) -> str:
        """Render the logical plan (the user-facing debugging view)."""
        return self.plan.explain()

    # ------------------------------------------------------------------

    @property
    def write(self) -> "DocSetWriter":
        """The terminal-sink namespace for this DocSet."""
        return DocSetWriter(self)


def _rewrite_elements(node: Optional[Node], fn: Callable[[Element], Element]) -> None:
    if node is None:
        return
    for position, child in enumerate(node.children):
        if isinstance(child, Node):
            _rewrite_elements(child, fn)
        else:
            node.children[position] = fn(child)


def _prune_elements(node: Optional[Node], predicate: Callable[[Element], bool]) -> None:
    if node is None:
        return
    kept = []
    for child in node.children:
        if isinstance(child, Node):
            _prune_elements(child, predicate)
            kept.append(child)
        elif predicate(child):
            kept.append(child)
    node.children[:] = kept


def _flatten(properties: Dict[str, Any], separator: str) -> Dict[str, Any]:
    flat: Dict[str, Any] = {}
    for key, value in properties.items():
        if isinstance(value, dict) and value:
            for sub_key, sub_value in _flatten(value, separator).items():
                flat[f"{key}{separator}{sub_key}"] = sub_value
        else:
            flat[key] = value
    return flat


class DocSetWriter:
    """The ``docset.write`` namespace: terminal sinks."""

    def __init__(self, docset: DocSet):
        self._docset = docset

    def index(self, name: str, create: bool = True) -> int:
        """Write into a named catalog index (docstore + keyword + vector).

        Returns the number of documents written. The index schema is
        refreshed from the written documents' properties, which is how
        Luna's planner learns what fields exist.
        """
        context = self._docset.context
        if create:
            index = context.catalog.create(name, exist_ok=True)
        else:
            index = context.catalog.get(name)
        documents = self._docset.take_all()
        index.add_documents(documents)
        return len(documents)

    def docstore(self, store: Any) -> int:
        """Write every document into the given DocStore."""
        documents = self._docset.take_all()
        store.put_many(documents)
        return len(documents)

    def jsonl(self, path: Path) -> int:
        """Read/write documents as JSON lines at the path."""
        documents = self._docset.take_all()
        with open(path, "w", encoding="utf-8") as handle:
            for document in documents:
                handle.write(document.to_json())
                handle.write("\n")
        return len(documents)

    def knowledge_graph(
        self,
        store: Any,
        model: Optional[str] = None,
        triples_property: str = "entities",
    ) -> int:
        """Extract entities with an LLM and assert them into a graph (§7).

        Documents that already carry extracted triples (in
        ``triples_property``) are used as-is; others go through the
        ``extract_entities`` transform first. Every triple is asserted
        with the source document id as provenance — the audit trail the
        paper's accuracy tenet demands. Returns the number of triples
        written.
        """
        documents = self._docset.take_all()
        context = self._docset.context
        fn = llm_transforms.make_extract_entities_fn(
            context, output_property=triples_property, model=model
        )
        written = 0
        for document in documents:
            triples = document.properties.get(triples_property)
            if triples is None:
                triples = fn(document).properties[triples_property]
            for triple in triples:
                store.add_triple(
                    triple["subject"],
                    triple["predicate"],
                    triple["object"],
                    source_doc_id=document.doc_id,
                )
                written += 1
        return written

    def graph(
        self,
        store: Any,
        subject_property: str,
        edges: Sequence[tuple],
    ) -> int:
        """Project properties into a knowledge graph (pay-as-you-go, §7).

        ``edges`` is a sequence of (predicate, object_property) pairs; for
        each document a triple (subject, predicate, object_value) is
        asserted with the document as provenance.
        """
        documents = self._docset.take_all()
        get_subject = aggregates.property_getter(subject_property)
        written = 0
        for document in documents:
            subject = get_subject(document)
            if subject is None:
                continue
            for predicate, object_property in edges:
                value = aggregates.property_getter(object_property)(document)
                if value is None:
                    continue
                store.add_triple(
                    str(subject), predicate, str(value), source_doc_id=document.doc_id
                )
                written += 1
        return written
