"""The Sycamore context: shared services and DocSet readers.

A :class:`SycamoreContext` bundles everything transforms need — the LLM
client, embedder, index catalog, executor configuration and lineage
tracker — and exposes ``context.read.*`` entry points mirroring the
paper's programming model (Figure 3 starts with ``ctx.read.binary``;
Luna's generated code starts with ``context.read.opensearch``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from ..docmodel.document import Document
from ..docmodel.raw import RawDocument
from ..embedding.embedder import Embedder, HashingEmbedder
from ..execution.executor import Executor
from ..execution.lineage import Lineage
from ..indexes.catalog import IndexCatalog
from ..indexes.docstore import DocStore
from ..llm.base import LLMClient
from ..llm.client import ReliableLLM
from ..llm.cost import CostTracker
from ..llm.simulated import SimulatedLLM
from ..observability.metrics import MetricsRegistry, get_registry
from ..observability.tracing import Tracer
from ..runtime import Priority, RequestScheduler, ScheduledLLM

if TYPE_CHECKING:
    from .docset import DocSet


class SycamoreContext:
    """Shared state for a Sycamore session.

    Parameters default to a fully self-contained stack: a simulated LLM
    wrapped in the reliability layer, a hashing embedder, a fresh index
    catalog, and single-threaded execution. ``default_model`` is what
    LLM-powered transforms use when not told otherwise.

    ``scheduler`` optionally routes every LLM-powered transform through a
    shared :class:`repro.runtime.RequestScheduler` (micro-batching,
    in-flight dedup, priority admission). A scheduler constructed without
    a client is bound to this context's reliability-wrapped LLM, so the
    dispatch path keeps retries, the circuit breaker and the cache.

    Each context owns a :class:`~repro.observability.Tracer` (``tracer``
    injects one) so query traces from concurrent contexts stay separate;
    metrics go to the shared process :class:`MetricsRegistry` unless
    ``registry`` overrides it. The tracer is threaded into the LLM
    reliability layer, the scheduler (when the context binds it) and
    every executor the context creates.
    """

    def __init__(
        self,
        llm: Optional[LLMClient] = None,
        embedder: Optional[Embedder] = None,
        catalog: Optional[IndexCatalog] = None,
        parallelism: int = 1,
        max_task_retries: int = 2,
        default_model: str = "sim-large",
        seed: int = 0,
        on_error: str = "retry",
        scheduler: Optional[RequestScheduler] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.cost_tracker = CostTracker()
        self.tracer = tracer if tracer is not None else Tracer()
        self.registry = registry if registry is not None else get_registry()
        if llm is None:
            llm = ReliableLLM(
                SimulatedLLM(seed=seed, tracker=self.cost_tracker),
                tracer=self.tracer,
                registry=self.registry,
            )
        elif not isinstance(llm, ReliableLLM):
            llm = ReliableLLM(llm, tracer=self.tracer, registry=self.registry)
        else:
            if llm.tracer is None:
                llm.tracer = self.tracer
        self.llm: ReliableLLM = llm
        self.scheduler = scheduler
        if scheduler is not None and scheduler.client is None:
            scheduler.client = self.llm
            if scheduler.tracer is None:
                scheduler.tracer = self.tracer
        self._scheduled_clients: dict = {}
        self.embedder: Embedder = embedder or HashingEmbedder(seed=seed)
        self.catalog = catalog or IndexCatalog(embedder=self.embedder)
        self.lineage = Lineage()
        self.parallelism = parallelism
        self.max_task_retries = max_task_retries
        self.default_model = default_model
        self.on_error = on_error
        #: Optional :class:`repro.cluster.ClusterCoordinator`. When set,
        #: engines may scatter large per-record LLM operators across
        #: worker processes (Luna routes LlmFilter/LlmExtract through it
        #: past ``min_cluster_docs``). Injected like the scheduler: the
        #: creator owns its lifecycle, ``close()`` leaves it running.
        self.cluster = None
        #: ExecutionStats of the most recent DocSet terminal run through
        #: this context (dead letters, skips, retries — see repro.execution).
        self.last_stats = None
        self.read = _Readers(self)

    def close(self) -> None:
        """Release background resources the context owns.

        The reliability-wrapped LLM lazily builds a batch thread pool
        (``complete_many``); a context that is dropped without closing
        it leaks those non-daemon workers. The scheduler and cluster,
        when present, are *not* closed here: they are injected, so their
        creators own their lifecycles.
        """
        self.llm.close()

    def __enter__(self) -> "SycamoreContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def llm_for(self, priority: "Priority | str" = Priority.BULK) -> LLMClient:
        """The client call sites should use for the given priority class.

        With a scheduler configured this is a :class:`ScheduledLLM` bound
        to that priority; without one it falls back to the direct
        reliability-wrapped client.
        """
        if self.scheduler is None:
            return self.llm
        if isinstance(priority, str):
            priority = Priority[priority.upper()]
        client = self._scheduled_clients.get(priority)
        if client is None:
            client = ScheduledLLM(self.scheduler, priority)
            self._scheduled_clients[priority] = client
        return client

    def executor(self, on_error: Optional[str] = None) -> Executor:
        """A fresh executor honouring this context's configuration.

        ``on_error`` overrides the context's default failure-containment
        policy for this one execution (e.g. Luna's graceful-degradation
        mode runs DocSet plans with ``dead_letter``).
        """
        return Executor(
            parallelism=self.parallelism,
            max_task_retries=self.max_task_retries,
            lineage=self.lineage,
            on_error=on_error or self.on_error,
            scheduler=self.scheduler,
            tracer=self.tracer,
            registry=self.registry,
        )


class _Readers:
    """The ``context.read`` namespace."""

    def __init__(self, context: SycamoreContext):
        self._context = context

    def documents(self, documents: Sequence[Document]) -> "DocSet":
        """DocSet over already-built documents."""
        from .docset import DocSet

        return DocSet.from_documents(self._context, documents)

    def raw(self, raw_documents: Sequence[RawDocument]) -> "DocSet":
        """DocSet over raw documents, as single-node binary documents.

        This is the just-read-a-PDF state of §5.1: each document is one
        node whose content is the raw binary, awaiting ``partition``.
        """
        from .docset import DocSet

        documents = [
            Document(doc_id=raw.doc_id, binary=raw.to_bytes()) for raw in raw_documents
        ]
        return DocSet.from_documents(self._context, documents)

    def docstore(self, store: DocStore) -> "DocSet":
        """DocSet over the documents of a DocStore."""
        from .docset import DocSet

        return DocSet.from_documents(self._context, list(store.scan()))

    def index(self, name: str, query: Optional[str] = None, k: Optional[int] = None) -> "DocSet":
        """Read from a catalog index: full scan, or top-k retrieval.

        Mirrors ``context.read.opensearch(index_name=...)`` in the
        paper's generated code (§6.2).
        """
        from .docset import DocSet

        index = self._context.catalog.get(name)
        if query is None:
            documents = index.all_documents()
        else:
            documents = index.search_hybrid(query, k=k or 10)
        return DocSet.from_documents(self._context, documents)

    def lake(self, lake: "Path | object") -> "DocSet":
        """Lazily read raw documents from a data lake directory (Fig. 1).

        Accepts a :class:`repro.indexes.lake.DataLake` or a path to one.
        Documents stream from disk during execution — the corpus is never
        fully resident before partitioning.
        """
        from ..indexes.lake import DataLake
        from ..execution.plan import Plan
        from .docset import DocSet

        if not isinstance(lake, DataLake):
            lake = DataLake(Path(lake))

        def read_lake():
            for raw in lake.scan():
                yield Document(doc_id=raw.doc_id, binary=raw.to_bytes())

        return DocSet(self._context, Plan.source(read_lake, name="read_lake"))

    def jsonl(self, path: Path) -> "DocSet":
        """DocSet over documents stored as JSON lines."""
        from .docset import DocSet

        documents: List[Document] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    documents.append(Document.from_json(line))
        return DocSet.from_documents(self._context, documents)
