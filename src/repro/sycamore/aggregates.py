"""Analytic transform implementations: sorting, grouping, aggregation.

Per §5.2 these operate on document *properties* and "all handle missing
values to accommodate the fact that some documents may be missing certain
fields": missing keys never raise — they sort last, group under ``None``,
and are excluded from numeric aggregates.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..docmodel.document import Document

AGG_FUNCS = ("sum", "avg", "min", "max", "count", "median")


def property_getter(field: str) -> Callable[[Document], Any]:
    """Accessor for a property; missing -> None.

    A literal key match wins (join outputs store merged properties under
    keys like ``right.sector``); otherwise the name is treated as a
    dotted path into nested dictionaries.
    """
    parts = field.split(".")

    def get(document: Document) -> Any:
        if field in document.properties:
            return document.properties[field]
        value: Any = document.properties
        for part in parts:
            if not isinstance(value, dict) or part not in value:
                return None
            value = value[part]
        return value

    return get


def sort_documents(
    documents: List[Document], field: str, descending: bool = False
) -> List[Document]:
    """Stable sort by property; documents missing the field go last."""
    get = property_getter(field)

    def key(document: Document) -> Tuple[int, Any]:
        value = get(document)
        if value is None:
            return (1, 0)
        return (0, _orderable(value, descending))

    return sorted(documents, key=key)


def _orderable(value: Any, descending: bool) -> Any:
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, (int, float)):
        return -value if descending else value
    text = str(value)
    if descending:
        # Invert lexicographic order without relying on reverse=True, so
        # that missing values still sort last either way.
        return tuple(-ord(c) for c in text)
    return text


def group_counts(documents: List[Document], field: str) -> Dict[Any, int]:
    """Occurrences of each value of ``field`` (missing grouped under None)."""
    get = property_getter(field)
    counts: Dict[Any, int] = {}
    for document in documents:
        value = get(document)
        key = value if _hashable(value) else str(value)
        counts[key] = counts.get(key, 0) + 1
    return counts


def top_k_values(
    documents: List[Document], field: str, k: int = 1, descending: bool = True
) -> List[Tuple[Any, int]]:
    """Most (or least) frequent values of ``field``; ties break on value."""
    counts = group_counts(documents, field)
    counts.pop(None, None)
    ordered = sorted(
        counts.items(),
        key=lambda item: ((-item[1] if descending else item[1]), str(item[0])),
    )
    return ordered[:k]


def aggregate_field(
    documents: List[Document], func: str, field: str
) -> Optional[float]:
    """Numeric aggregate over a property; non-numeric/missing values skipped.

    Returns ``None`` for an empty input (except ``count``, which is 0).
    """
    if func not in AGG_FUNCS:
        raise ValueError(f"unknown aggregate {func!r}; known: {AGG_FUNCS}")
    get = property_getter(field)
    values: List[float] = []
    for document in documents:
        value = get(document)
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            values.append(float(value))
    if func == "count":
        return float(len(values))
    if not values:
        return None
    if func == "sum":
        return sum(values)
    if func == "avg":
        return sum(values) / len(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    values.sort()
    mid = len(values) // 2
    if len(values) % 2:
        return values[mid]
    return (values[mid - 1] + values[mid]) / 2.0


def grouped_aggregate(
    documents: List[Document], func: str, field: str, group_by: str
) -> Dict[Any, Optional[float]]:
    """Per-group aggregate of ``field`` grouped by ``group_by``."""
    get_group = property_getter(group_by)
    groups: Dict[Any, List[Document]] = {}
    for document in documents:
        value = get_group(document)
        key = value if _hashable(value) else str(value)
        groups.setdefault(key, []).append(document)
    return {key: aggregate_field(members, func, field) for key, members in groups.items()}


def reduce_by_key(
    documents: List[Document],
    key_fn: Callable[[Document], Any],
    reduce_fn: Callable[[List[Document]], Any],
) -> List[Document]:
    """Generic reduce: group by ``key_fn``, reduce each group to a value.

    Returns one synthetic document per group with properties ``key`` and
    ``value`` — the shape downstream transforms and writers expect.
    """
    groups: Dict[Any, List[Document]] = {}
    order: List[Any] = []
    for document in documents:
        key = key_fn(document)
        if not _hashable(key):
            key = str(key)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(document)
    results = []
    for key in order:
        results.append(
            Document(properties={"key": key, "value": reduce_fn(groups[key])})
        )
    return results


def hash_join(
    left: List[Document],
    right: List[Document],
    left_on: str,
    right_on: str,
    how: str = "inner",
) -> List[Document]:
    """Property-equality hash join producing merged documents.

    The merged document keeps the left document's identity and text and
    gains the right document's properties under ``right.<name>``.
    ``how`` is ``inner`` or ``left``. (The paper notes Sycamore "does not
    yet support full joins"; this implements the equality join Luna's
    operator set needs, as a forward-looking extension — see DESIGN.md.)
    """
    if how not in ("inner", "left"):
        raise ValueError(f"unsupported join type {how!r}")
    get_right = property_getter(right_on)
    index: Dict[Any, List[Document]] = {}
    for document in right:
        key = get_right(document)
        if key is None or not _hashable(key):
            continue
        index.setdefault(key, []).append(document)
    get_left = property_getter(left_on)
    results: List[Document] = []
    for document in left:
        key = get_left(document)
        matches = index.get(key, []) if key is not None else []
        if not matches:
            if how == "left":
                results.append(document.copy())
            continue
        for match in matches:
            merged = document.copy()
            for name, value in match.properties.items():
                merged.properties[f"right.{name}"] = value
            results.append(merged)
    return results


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True
