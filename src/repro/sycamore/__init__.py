"""Sycamore: the declarative document processing engine (paper §5).

Entry point::

    from repro.sycamore import SycamoreContext

    ctx = SycamoreContext(parallelism=4)
    ds = (
        ctx.read.raw(raw_documents)
        .partition(ArynPartitioner())
        .extract_properties({"us_state": "string", "weather_related": "bool"})
        .explode()
        .embed()
    )
    ds.write.index("ntsb")
"""

from .aggregates import (
    AGG_FUNCS,
    aggregate_field,
    group_counts,
    grouped_aggregate,
    hash_join,
    property_getter,
    reduce_by_key,
    sort_documents,
    top_k_values,
)
from .context import SycamoreContext
from .docset import DocSet, DocSetWriter
from .llm_transforms import summarize_collection

__all__ = [
    "AGG_FUNCS",
    "DocSet",
    "DocSetWriter",
    "SycamoreContext",
    "aggregate_field",
    "group_counts",
    "grouped_aggregate",
    "hash_join",
    "property_getter",
    "reduce_by_key",
    "sort_documents",
    "summarize_collection",
    "top_k_values",
]
