"""LLM-powered transform implementations for DocSets.

Per §5.2: "LLM-powered transforms are used to enrich Documents. The most
basic, llm_query, allows callers to specify a prompt that will be used to
process each document... The output is stored in a property of the input
document. Sycamore includes a number of more specific transforms like
extract_properties and summarize that leverage built-in prompts."

Each factory returns a per-document callable suitable for a plan ``map``
or ``filter`` node; prompt assembly, JSON parsing and retries all go
through the reliability layer.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..docmodel.document import Document
from ..llm.prompts import (
    CLASSIFY_TEXT,
    EXTRACT_PROPERTIES,
    FILTER_DOCUMENT,
    PromptTemplate,
    SUMMARIZE_COLLECTION,
    SUMMARIZE_DOCUMENT,
    render_task_prompt,
)
from .context import SycamoreContext


def _document_text(document: Document, num_elements: Optional[int]) -> str:
    return document.text_representation(max_elements=num_elements)


def make_extract_properties_fn(
    context: SycamoreContext,
    schema: Dict[str, str],
    model: Optional[str] = None,
    num_elements: Optional[int] = None,
) -> Callable[[Document], Document]:
    """Per-document property extraction against a JSON schema (Fig. 3/4)."""
    schema_json = json.dumps(schema, sort_keys=True)
    model_name = model or context.default_model

    def extract(document: Document) -> Document:
        prompt = EXTRACT_PROPERTIES.render(
            schema=schema_json, document=_document_text(document, num_elements)
        )
        values = context.llm.complete_json(prompt, model=model_name)
        result = document.copy()
        if isinstance(values, dict):
            for key in schema:
                result.properties[key] = values.get(key)
        return result

    return extract


def make_llm_query_fn(
    context: SycamoreContext,
    prompt: "PromptTemplate | str",
    output_property: str,
    model: Optional[str] = None,
    num_elements: Optional[int] = None,
    parse_json: bool = False,
) -> Callable[[Document], Document]:
    """The generic ``llm_query`` transform.

    ``prompt`` may be a :class:`PromptTemplate` (rendered with the
    document text) or a plain instruction string. Instruction strings may
    reference document properties with ``{property_name}`` placeholders,
    matching the paper's "parameterized by the content ... and/or the
    properties of the document".
    """
    model_name = model or context.default_model

    def query(document: Document) -> Document:
        text = _document_text(document, num_elements)
        if isinstance(prompt, PromptTemplate):
            rendered = prompt.render(document=text)
        else:
            instructions = _fill_placeholders(prompt, document.properties)
            rendered = render_task_prompt(
                "llm_query", {"instructions": instructions, "document": text}
            )
        result = document.copy()
        if parse_json:
            result.properties[output_property] = context.llm.complete_json(
                rendered, model=model_name
            )
        else:
            result.properties[output_property] = context.llm.complete(
                rendered, model=model_name
            ).text
        return result

    return query


def make_llm_filter_fn(
    context: SycamoreContext,
    condition: str,
    model: Optional[str] = None,
    num_elements: Optional[int] = None,
) -> Callable[[Document], bool]:
    """Semantic filter: keep documents satisfying a natural-language condition."""
    model_name = model or context.default_model

    def predicate(document: Document) -> bool:
        prompt = FILTER_DOCUMENT.render(
            condition=condition, document=_document_text(document, num_elements)
        )
        answer = context.llm.complete(prompt, model=model_name).text
        return answer.strip().lower().startswith("y")

    return predicate


def make_summarize_fn(
    context: SycamoreContext,
    output_property: str = "summary",
    model: Optional[str] = None,
    max_sentences: int = 3,
    num_elements: Optional[int] = None,
) -> Callable[[Document], Document]:
    """Per-document summarization into a property."""
    model_name = model or context.default_model

    def summarize(document: Document) -> Document:
        prompt = SUMMARIZE_DOCUMENT.render(
            document=_document_text(document, num_elements),
            max_sentences=str(max_sentences),
        )
        result = document.copy()
        result.properties[output_property] = context.llm.complete(
            prompt, model=model_name
        ).text
        return result

    return summarize


def make_classify_fn(
    context: SycamoreContext,
    categories: Sequence[str],
    output_property: str,
    model: Optional[str] = None,
    num_elements: Optional[int] = None,
) -> Callable[[Document], Document]:
    """Classify each document into one of ``categories``."""
    model_name = model or context.default_model
    category_list = ", ".join(categories)

    def classify(document: Document) -> Document:
        prompt = CLASSIFY_TEXT.render(
            categories=category_list, document=_document_text(document, num_elements)
        )
        result = document.copy()
        answer = context.llm.complete(prompt, model=model_name).text.strip()
        result.properties[output_property] = answer if answer in categories else None
        return result

    return classify


def make_extract_entities_fn(
    context: SycamoreContext,
    output_property: str = "entities",
    model: Optional[str] = None,
    num_elements: Optional[int] = None,
) -> Callable[[Document], Document]:
    """Extract (subject, predicate, object) triples into a property.

    The first step of pay-as-you-go knowledge-graph construction (§7);
    ``DocSetWriter.knowledge_graph`` asserts the extracted triples into a
    graph store with document provenance.
    """
    from ..llm.prompts import EXTRACT_ENTITIES

    model_name = model or context.default_model

    def extract(document: Document) -> Document:
        prompt = EXTRACT_ENTITIES.render(
            document=_document_text(document, num_elements)
        )
        payload = context.llm.complete_json(prompt, model=model_name)
        result = document.copy()
        triples = []
        if isinstance(payload, list):
            for item in payload:
                if (
                    isinstance(item, dict)
                    and {"subject", "predicate", "object"} <= set(item)
                ):
                    triples.append(
                        {
                            "subject": str(item["subject"]),
                            "predicate": str(item["predicate"]),
                            "object": str(item["object"]),
                        }
                    )
        result.properties[output_property] = triples
        return result

    return extract


def make_embed_fn(context: SycamoreContext) -> Callable[[Document], Document]:
    """Attach an embedding vector (as a list, for serializability)."""

    def embed(document: Document) -> Document:
        result = document.copy()
        text = result.text_representation() or result.text
        result.properties["embedding"] = [float(x) for x in context.embedder.embed(text)]
        return result

    return embed


def summarize_collection(
    context: SycamoreContext,
    documents: List[Document],
    model: Optional[str] = None,
    question: Optional[str] = None,
    per_doc_sentences: int = 1,
    max_docs: int = 50,
) -> str:
    """Collection-level synthesis used by terminal summarize and Luna.

    Packs per-document text (truncated) into one prompt, separated by
    ``---`` markers, and asks for a synthesis; an optional ``question``
    focuses it.
    """
    model_name = model or context.default_model
    parts = []
    for document in documents[:max_docs]:
        text = document.text_representation()
        parts.append(text[:1500])
    sections = {
        "documents": "\n---\n".join(parts),
        "max_sentences": str(per_doc_sentences),
    }
    if question:
        sections["question"] = question
    prompt = render_task_prompt("summarize_collection", sections)
    return context.llm.complete(prompt, model=model_name).text


def _fill_placeholders(template: str, properties: Dict[str, Any]) -> str:
    result = template
    for key, value in properties.items():
        result = result.replace("{" + key + "}", str(value))
    return result
