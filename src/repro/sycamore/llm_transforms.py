"""LLM-powered transform implementations for DocSets.

Per §5.2: "LLM-powered transforms are used to enrich Documents. The most
basic, llm_query, allows callers to specify a prompt that will be used to
process each document... The output is stored in a property of the input
document. Sycamore includes a number of more specific transforms like
extract_properties and summarize that leverage built-in prompts."

Each factory returns a per-document callable suitable for a plan ``map``
or ``filter`` node; prompt assembly, JSON parsing and retries all go
through the reliability layer, and — when the context carries a
:class:`repro.runtime.RequestScheduler` — every call is admitted through
the shared scheduler at the factory's priority class (BULK for ETL by
default; Luna's query operators pass INTERACTIVE).

The static part of each prompt (instructions, schema, condition, ...) is
identical for every document, so factories render it once through a
process-wide prefix cache and append only the document section per call;
:func:`prompt_prefix_cache_info` reports the hit/miss counters.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..docmodel.document import Document
from ..llm.prompts import (
    CLASSIFY_TEXT,
    EXTRACT_PROPERTIES,
    FILTER_DOCUMENT,
    PromptTemplate,
    SUMMARIZE_DOCUMENT,
    append_section,
    neutralize_markers,
    render_task_prompt,
)
from ..runtime import Priority
from .context import SycamoreContext


class _PromptPrefixCache:
    """Memoizes the static prefix of per-document prompts.

    Luna builds a fresh transform factory per plan node and ETL scripts
    rebuild pipelines per corpus; this cache makes the static prompt text
    a one-time cost per distinct (task, static sections) pair instead of
    a per-factory (previously per-document) one.
    """

    def __init__(self, max_entries: int = 512):
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], str] = {}
        self.hits = 0
        self.misses = 0

    def render_prefix(self, task: str, sections: Dict[str, str]) -> str:
        """The rendered prompt up to (excluding) the document section."""
        key = (task, tuple(sections.items()))
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        prefix = render_task_prompt(task, sections)
        with self._lock:
            if len(self._entries) >= self.max_entries:
                self._entries.clear()  # tiny corpus of prefixes; full reset is fine
            self._entries[key] = prefix
        return prefix

    def info(self) -> Dict[str, int]:
        """Counters: hits, misses, current size."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
            }


PROMPT_PREFIX_CACHE = _PromptPrefixCache()


def prompt_prefix_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the shared prompt-prefix cache."""
    return PROMPT_PREFIX_CACHE.info()


def _document_text(document: Document, num_elements: Optional[int]) -> str:
    # Document bodies are untrusted: a line-initial <<SECTION:...>> in
    # the text could inject its own prompt section (prompt-taint lint).
    return neutralize_markers(
        document.text_representation(max_elements=num_elements)
    )


def _template_prefix(template: PromptTemplate, **static: str) -> str:
    sections = {"instructions": template.instructions}
    sections.update(static)
    return PROMPT_PREFIX_CACHE.render_prefix(template.task, sections)


def make_extract_properties_fn(
    context: SycamoreContext,
    schema: Dict[str, str],
    model: Optional[str] = None,
    num_elements: Optional[int] = None,
    priority: "Priority | str" = Priority.BULK,
) -> Callable[[Document], Document]:
    """Per-document property extraction against a JSON schema (Fig. 3/4)."""
    schema_json = json.dumps(schema, sort_keys=True)
    model_name = model or context.default_model
    llm = context.llm_for(priority)
    prefix = _template_prefix(EXTRACT_PROPERTIES, schema=schema_json)

    def extract(document: Document) -> Document:
        prompt = append_section(
            prefix, "document", _document_text(document, num_elements)
        )
        values = llm.complete_json(prompt, model=model_name)
        result = document.copy()
        if isinstance(values, dict):
            for key in schema:
                result.properties[key] = values.get(key)
        return result

    return extract


def make_llm_query_fn(
    context: SycamoreContext,
    prompt: "PromptTemplate | str",
    output_property: str,
    model: Optional[str] = None,
    num_elements: Optional[int] = None,
    parse_json: bool = False,
    priority: "Priority | str" = Priority.BULK,
) -> Callable[[Document], Document]:
    """The generic ``llm_query`` transform.

    ``prompt`` may be a :class:`PromptTemplate` (rendered with the
    document text) or a plain instruction string. Instruction strings may
    reference document properties with ``{property_name}`` placeholders,
    matching the paper's "parameterized by the content ... and/or the
    properties of the document".
    """
    model_name = model or context.default_model
    llm = context.llm_for(priority)
    if isinstance(prompt, PromptTemplate):
        missing = [name for name in prompt.required_fields if name != "document"]
        if missing:
            raise ValueError(f"missing prompt fields: {missing}")
        static_prefix: Optional[str] = _template_prefix(prompt)
    else:
        # A plain instruction string without placeholders is static too;
        # one with placeholders must be re-filled per document.
        has_placeholders = "{" in prompt
        static_prefix = (
            None
            if has_placeholders
            else PROMPT_PREFIX_CACHE.render_prefix(
                "llm_query", {"instructions": prompt}
            )
        )

    def query(document: Document) -> Document:
        text = _document_text(document, num_elements)
        if static_prefix is not None:
            rendered = append_section(static_prefix, "document", text)
        else:
            instructions = _fill_placeholders(str(prompt), document.properties)
            rendered = render_task_prompt(
                "llm_query", {"instructions": instructions, "document": text}
            )
        result = document.copy()
        if parse_json:
            result.properties[output_property] = llm.complete_json(
                rendered, model=model_name
            )
        else:
            result.properties[output_property] = llm.complete(
                rendered, model=model_name
            ).text
        return result

    return query


def make_llm_filter_fn(
    context: SycamoreContext,
    condition: str,
    model: Optional[str] = None,
    num_elements: Optional[int] = None,
    priority: "Priority | str" = Priority.BULK,
) -> Callable[[Document], bool]:
    """Semantic filter: keep documents satisfying a natural-language condition."""
    model_name = model or context.default_model
    llm = context.llm_for(priority)
    prefix = _template_prefix(FILTER_DOCUMENT, condition=condition)

    def predicate(document: Document) -> bool:
        prompt = append_section(
            prefix, "document", _document_text(document, num_elements)
        )
        answer = llm.complete(prompt, model=model_name).text
        return answer.strip().lower().startswith("y")

    return predicate


def make_cascade_filter_fn(
    context: SycamoreContext,
    condition: str,
    verify_model: str,
    draft_model: str,
    draft_votes: int = 2,
    confidence_threshold: float = 0.75,
    num_elements: Optional[int] = None,
    priority: "Priority | str" = Priority.BULK,
) -> Callable[[Document], bool]:
    """Draft/verify semantic filter (the optimizer's predicate cascade).

    Each document is judged ``draft_votes`` times on the cheap
    ``draft_model``; the vote-agreement fraction is the confidence. Below
    ``confidence_threshold`` the document escalates to ``verify_model``
    with the *same* prompt a plain :func:`make_llm_filter_fn` would send —
    escalated rows therefore get exactly the answer the expensive filter
    would have produced. A threshold of 0 never escalates; above 1 every
    row escalates (the cascade degenerates to the plain filter plus draft
    overhead). Semantics and cost math: ``docs/OPTIMIZER.md``.
    """
    llm = context.llm_for(priority)
    prefix = _template_prefix(FILTER_DOCUMENT, condition=condition)
    votes = max(1, int(draft_votes))
    from ..observability.metrics import get_registry

    registry = get_registry()
    m_drafts = registry.counter("optimizer.cascade_drafts")
    m_escalations = registry.counter("optimizer.cascade_escalations")

    def predicate(document: Document) -> bool:
        base_prompt = append_section(
            prefix, "document", _document_text(document, num_elements)
        )
        ballots = []
        for vote in range(votes):
            prompt = base_prompt
            if vote:
                # Re-votes append an instruction section; the condition and
                # document are untouched (same ground truth), but the
                # changed prompt decorrelates per-call model noise.
                prompt = append_section(
                    prompt, "recheck", f"Independent re-check #{vote}."
                )
            answer = llm.complete(prompt, model=draft_model).text
            ballots.append(answer.strip().lower().startswith("y"))
        m_drafts.inc(votes)
        agreement = max(ballots.count(True), ballots.count(False)) / votes
        if agreement < confidence_threshold or confidence_threshold > 1.0:
            m_escalations.inc()
            answer = llm.complete(base_prompt, model=verify_model).text
            return answer.strip().lower().startswith("y")
        return ballots.count(True) > ballots.count(False) or (
            ballots.count(True) == ballots.count(False) and ballots[0]
        )

    return predicate


def make_cascade_extract_fn(
    context: SycamoreContext,
    schema: Dict[str, str],
    verify_model: str,
    draft_model: str,
    confidence_threshold: float = 0.75,
    num_elements: Optional[int] = None,
    priority: "Priority | str" = Priority.BULK,
) -> Callable[[Document], Document]:
    """Draft/verify property extraction (the optimizer's cascade).

    One draft extraction runs on ``draft_model``; its confidence is 1.0
    when every schema field came back non-null and 0.0 otherwise (a null
    is the model saying "I could not find it" — exactly the row worth the
    expensive retry). Low-confidence rows re-extract on ``verify_model``
    with the plain prompt. Threshold 0 never escalates; above 1 always.
    """
    schema_json = json.dumps(schema, sort_keys=True)
    llm = context.llm_for(priority)
    prefix = _template_prefix(EXTRACT_PROPERTIES, schema=schema_json)
    from ..observability.metrics import get_registry

    registry = get_registry()
    m_drafts = registry.counter("optimizer.cascade_drafts")
    m_escalations = registry.counter("optimizer.cascade_escalations")

    def extract(document: Document) -> Document:
        prompt = append_section(
            prefix, "document", _document_text(document, num_elements)
        )
        values = llm.complete_json(prompt, model=draft_model)
        m_drafts.inc()
        confident = isinstance(values, dict) and all(
            values.get(key) is not None for key in schema
        )
        confidence = 1.0 if confident else 0.0
        if confidence < confidence_threshold or confidence_threshold > 1.0:
            m_escalations.inc()
            values = llm.complete_json(prompt, model=verify_model)
        result = document.copy()
        if isinstance(values, dict):
            for key in schema:
                result.properties[key] = values.get(key)
        return result

    return extract


def make_summarize_fn(
    context: SycamoreContext,
    output_property: str = "summary",
    model: Optional[str] = None,
    max_sentences: int = 3,
    num_elements: Optional[int] = None,
    priority: "Priority | str" = Priority.BULK,
) -> Callable[[Document], Document]:
    """Per-document summarization into a property."""
    model_name = model or context.default_model
    llm = context.llm_for(priority)
    prefix = _template_prefix(SUMMARIZE_DOCUMENT, max_sentences=str(max_sentences))

    def summarize(document: Document) -> Document:
        prompt = append_section(
            prefix, "document", _document_text(document, num_elements)
        )
        result = document.copy()
        result.properties[output_property] = llm.complete(
            prompt, model=model_name
        ).text
        return result

    return summarize


def make_classify_fn(
    context: SycamoreContext,
    categories: Sequence[str],
    output_property: str,
    model: Optional[str] = None,
    num_elements: Optional[int] = None,
    priority: "Priority | str" = Priority.BULK,
) -> Callable[[Document], Document]:
    """Classify each document into one of ``categories``."""
    model_name = model or context.default_model
    llm = context.llm_for(priority)
    category_list = ", ".join(categories)
    prefix = _template_prefix(CLASSIFY_TEXT, categories=category_list)

    def classify(document: Document) -> Document:
        prompt = append_section(
            prefix, "document", _document_text(document, num_elements)
        )
        result = document.copy()
        answer = llm.complete(prompt, model=model_name).text.strip()
        result.properties[output_property] = answer if answer in categories else None
        return result

    return classify


def make_extract_entities_fn(
    context: SycamoreContext,
    output_property: str = "entities",
    model: Optional[str] = None,
    num_elements: Optional[int] = None,
    priority: "Priority | str" = Priority.BULK,
) -> Callable[[Document], Document]:
    """Extract (subject, predicate, object) triples into a property.

    The first step of pay-as-you-go knowledge-graph construction (§7);
    ``DocSetWriter.knowledge_graph`` asserts the extracted triples into a
    graph store with document provenance.
    """
    from ..llm.prompts import EXTRACT_ENTITIES

    model_name = model or context.default_model
    llm = context.llm_for(priority)
    prefix = _template_prefix(EXTRACT_ENTITIES)

    def extract(document: Document) -> Document:
        prompt = append_section(
            prefix, "document", _document_text(document, num_elements)
        )
        payload = llm.complete_json(prompt, model=model_name)
        result = document.copy()
        triples = []
        if isinstance(payload, list):
            for item in payload:
                if (
                    isinstance(item, dict)
                    and {"subject", "predicate", "object"} <= set(item)
                ):
                    triples.append(
                        {
                            "subject": str(item["subject"]),
                            "predicate": str(item["predicate"]),
                            "object": str(item["object"]),
                        }
                    )
        result.properties[output_property] = triples
        return result

    return extract


def make_embed_fn(context: SycamoreContext) -> Callable[[Document], Document]:
    """Attach an embedding vector (as a list, for serializability)."""

    def embed(document: Document) -> Document:
        result = document.copy()
        text = result.text_representation() or result.text
        result.properties["embedding"] = [float(x) for x in context.embedder.embed(text)]
        return result

    return embed


def summarize_collection(
    context: SycamoreContext,
    documents: List[Document],
    model: Optional[str] = None,
    question: Optional[str] = None,
    per_doc_sentences: int = 1,
    max_docs: int = 50,
    priority: "Priority | str" = Priority.BULK,
) -> str:
    """Collection-level synthesis used by terminal summarize and Luna.

    Packs per-document text (truncated) into one prompt, separated by
    ``---`` markers, and asks for a synthesis; an optional ``question``
    focuses it.
    """
    model_name = model or context.default_model
    parts = []
    for document in documents[:max_docs]:
        text = document.text_representation()
        parts.append(text[:1500])
    sections = {
        "documents": "\n---\n".join(parts),
        "max_sentences": str(per_doc_sentences),
    }
    if question:
        sections["question"] = question
    prompt = render_task_prompt("summarize_collection", sections)
    return context.llm_for(priority).complete(prompt, model=model_name).text


def _fill_placeholders(template: str, properties: Dict[str, Any]) -> str:
    result = template
    for key, value in properties.items():
        # Property values were extracted from untrusted document text by
        # an LLM — sanitize them like the text they came from.
        result = result.replace("{" + key + "}", neutralize_markers(str(value)))
    return result
