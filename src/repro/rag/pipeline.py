"""The retrieval-augmented generation baseline.

This is the architecture the paper argues *against* for analytics (§2):
chunk the corpus, embed the chunks, retrieve the top-k most similar to
the question, stuff them into a single prompt, and generate. It is
implemented faithfully — including its real constraints (top-k retrieval
bounded by the model's context window) — because benches C1/C2 measure
exactly where it breaks: answers requiring a sweep over many documents
cannot fit through a k-chunk keyhole.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional, Sequence

from ..docmodel.document import Document
from ..indexes.catalog import NamedIndex
from ..llm.client import ReliableLLM
from ..llm.errors import ContextWindowExceededError
from ..llm.prompts import ANSWER_QUESTION, neutralize_markers, split_into_chunks
from ..llm.tokens import count_tokens
from ..llm.base import get_model_spec
from ..observability.metrics import get_registry
from ..observability.tracing import Tracer
from ..runtime import Priority, RequestScheduler, ScheduledLLM

RetrievalMode = Literal["vector", "keyword", "hybrid"]


@dataclass
class RagAnswer:
    """A generated answer plus its provenance (the retrieved chunks)."""

    question: str
    answer: str
    retrieved_chunk_ids: List[str] = field(default_factory=list)
    context_tokens: int = 0
    truncated: bool = False


class RagPipeline:
    """Chunk -> embed -> retrieve -> generate.

    Parameters
    ----------
    index:
        The :class:`NamedIndex` holding the chunked corpus (see
        :meth:`ingest`).
    llm:
        Reliability-wrapped LLM for generation.
    model:
        Generation model; its context window caps how much retrieved text
        one call can see.
    top_k:
        Chunks retrieved per question.
    retrieval:
        ``vector``, ``keyword`` or ``hybrid``.
    scheduler:
        Optional shared :class:`repro.runtime.RequestScheduler`.
        Question-answering is a user-facing path, so generation calls are
        submitted at INTERACTIVE priority; without a scheduler they go
        straight to ``llm``.
    """

    def __init__(
        self,
        index: NamedIndex,
        llm: ReliableLLM,
        model: str = "sim-large",
        top_k: int = 5,
        retrieval: RetrievalMode = "vector",
        scheduler: Optional[RequestScheduler] = None,
    ):
        self.index = index
        self.llm = llm
        self.scheduler = scheduler
        if scheduler is not None and scheduler.client is None:
            scheduler.client = llm
        self._generator = (
            ScheduledLLM(scheduler, Priority.INTERACTIVE)
            if scheduler is not None
            else llm
        )
        self.model = model
        self.top_k = top_k
        self.retrieval = retrieval

    # ------------------------------------------------------------------

    @staticmethod
    def ingest(
        index: NamedIndex,
        documents: Sequence[Document],
        chunk_tokens: int = 220,
        overlap_tokens: int = 20,
    ) -> int:
        """Chunk documents into the index (the classic RAG ETL step).

        Chunking is structure-blind by design: it splits the flat text
        representation on token boundaries, exactly the behaviour whose
        limitations §2 describes for tables and long documents.
        """
        written = 0
        for document in documents:
            text = document.text_representation() or document.text
            for position, chunk in enumerate(
                split_into_chunks(text, chunk_tokens, overlap_tokens)
            ):
                chunk_doc = Document(
                    text=chunk,
                    parent_id=document.doc_id,
                    properties={
                        "chunk_index": position,
                        "source_doc_id": document.doc_id,
                    },
                )
                index.add_document(chunk_doc)
                written += 1
        index.refresh_schema()
        return written

    # ------------------------------------------------------------------

    def retrieve(self, question: str, k: Optional[int] = None) -> List[Document]:
        """Top-k chunks for a question using the configured mode."""
        k = k or self.top_k
        if self.retrieval == "vector":
            return self.index.search_vector(question, k=k)
        if self.retrieval == "keyword":
            return self.index.search_keyword(question, k=k)
        return self.index.search_hybrid(question, k=k)

    def answer(self, question: str, tracer: Optional[Tracer] = None) -> RagAnswer:
        """Retrieve context and generate a grounded answer.

        ``tracer`` (or the scheduler's tracer, when one is bound) makes
        the answer a ``query`` span tree: retrieval and generation become
        child spans, so RAG runs are comparable with Luna traces.
        """
        if tracer is None and self.scheduler is not None:
            tracer = self.scheduler.tracer
        if tracer is None:
            return self._answer(question)
        with tracer.span(
            "query:rag", kind="query", parent=None, question=question
        ):
            return self._answer(question, tracer)

    def _answer(self, question: str, tracer: Optional[Tracer] = None) -> RagAnswer:
        registry = get_registry()
        registry.counter("rag.questions").inc()
        # User questions are untrusted prompt input (prompt-taint lint).
        question = neutralize_markers(question)
        if tracer is not None:
            with tracer.span("rag:retrieve", kind="operator", top_k=self.top_k):
                chunks = self.retrieve(question)
        else:
            chunks = self.retrieve(question)
        context, used, truncated = self._pack_context(question, chunks)
        if truncated:
            registry.counter("rag.context_truncations").inc()
        prompt = ANSWER_QUESTION.render(question=question, context=context)
        if tracer is not None:
            with tracer.span("rag:generate", kind="operator"):
                response = self._generator.complete(prompt, model=self.model)
        else:
            response = self._generator.complete(prompt, model=self.model)
        registry.histogram("rag.context_tokens").observe(count_tokens(context))
        return RagAnswer(
            question=question,
            answer=response.text,
            retrieved_chunk_ids=[c.doc_id for c in used],
            context_tokens=count_tokens(context),
            truncated=truncated,
        )

    def _pack_context(
        self, question: str, chunks: List[Document]
    ) -> "tuple[str, List[Document], bool]":
        """Pack chunks into the prompt up to the model's context window.

        Leaves headroom for the question, instructions and the answer;
        drops chunks that do not fit (this is the keyhole).
        """
        window = get_model_spec(self.model).context_window
        budget = window - count_tokens(question) - 400
        parts: List[str] = []
        used: List[Document] = []
        spent = 0
        truncated = False
        for chunk in chunks:
            # Chunk bodies are document text: sanitize before packing.
            text = neutralize_markers(chunk.text or chunk.text_representation())
            cost = count_tokens(text) + 2
            if spent + cost > budget:
                truncated = True
                break
            parts.append(text)
            used.append(chunk)
            spent += cost
        return "\n---\n".join(parts), used, truncated

    # ------------------------------------------------------------------

    def provenance(self, answer: RagAnswer) -> List[str]:
        """Source document ids behind an answer's retrieved chunks."""
        sources = []
        for chunk_id in answer.retrieved_chunk_ids:
            chunk = self.index.docstore.get(chunk_id)
            if chunk is None:
                continue
            source = chunk.properties.get("source_doc_id")
            if source is not None and source not in sources:
                sources.append(source)
        return sources
