"""RAG baseline (the architecture §2 argues is insufficient for analytics)."""

from .pipeline import RagAnswer, RagPipeline, RetrievalMode

__all__ = ["RagAnswer", "RagPipeline", "RetrievalMode"]
