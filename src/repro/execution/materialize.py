"""Materialization caches for plan execution.

"To assist with debugging and avoid redundant execution, Sycamore also
supports a flexible *materialize* operation that can save the output of
intermediate transformations to memory or disk" (§5.3). A cache object is
attached to a ``materialize`` plan node; the first execution writes
through it, later executions read from it and skip the upstream pipeline
entirely.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, List, Optional

from ..docmodel.document import Document


class MemoryCache:
    """Holds materialized records in process memory."""

    def __init__(self) -> None:
        self._records: Optional[List[Any]] = None

    def is_valid(self) -> bool:
        """True when cached contents are available."""
        return self._records is not None

    def write(self, records: List[Any]) -> None:
        """Store the given records."""
        self._records = list(records)

    def read(self) -> List[Any]:
        """Return the cached records."""
        if self._records is None:
            raise RuntimeError("reading from an unfilled MemoryCache")
        return list(self._records)

    def invalidate(self) -> None:
        """Discard cached contents so the next run recomputes."""
        self._records = None


class DiskCache:
    """Persists materialized records to a JSONL file.

    ``serialize``/``deserialize`` default to the Document codec; pass
    ``json.dumps``/``json.loads``-style callables for plain records.
    """

    def __init__(
        self,
        path: Path,
        serialize: Optional[Callable[[Any], str]] = None,
        deserialize: Optional[Callable[[str], Any]] = None,
    ):
        self.path = Path(path)
        self._serialize = serialize or _default_serialize
        self._deserialize = deserialize or _default_deserialize

    def is_valid(self) -> bool:
        """True when cached contents are available."""
        return self.path.exists()

    def write(self, records: List[Any]) -> None:
        """Store the given records."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(self._serialize(record))
                handle.write("\n")
        tmp.replace(self.path)  # atomic publish: readers never see partial files

    def read(self) -> List[Any]:
        """Return the cached records."""
        if not self.path.exists():
            raise RuntimeError(f"reading from missing cache file {self.path}")
        records = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(self._deserialize(line))
        return records

    def invalidate(self) -> None:
        """Discard cached contents so the next run recomputes."""
        if self.path.exists():
            self.path.unlink()


def _default_serialize(record: Any) -> str:
    if isinstance(record, Document):
        return json.dumps({"__document__": record.to_dict()})
    return json.dumps({"__value__": record})


def _default_deserialize(line: str) -> Any:
    data = json.loads(line)
    if "__document__" in data:
        return Document.from_dict(data["__document__"])
    return data["__value__"]
