"""Materialization caches for plan execution.

"To assist with debugging and avoid redundant execution, Sycamore also
supports a flexible *materialize* operation that can save the output of
intermediate transformations to memory or disk" (§5.3). A cache object is
attached to a ``materialize`` plan node; the first execution writes
through it, later executions read from it and skip the upstream pipeline
entirely.

A disk cache outlives the process that wrote it, so "available" is not
the same as "still correct": the upstream pipeline may have changed
since the file was written. :class:`DiskCache` therefore accepts a
*fingerprint* of the producing computation — :func:`plan_fingerprint`
derives one from a dataflow plan's structure — writes it to a sidecar
file alongside the data, and treats a mismatch as a cache miss. The
serving layer's caches key on the same :func:`stable_fingerprint`
helper (see :mod:`repro.serving.cache`).
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional

from ..docmodel.document import Document

#: Auto-generated plan-node names end in a process-local counter
#: (``map_17``); strip it so structurally identical pipelines built in
#: different processes (or twice in one) fingerprint identically.
_AUTO_NAME_SUFFIX = re.compile(r"_\d+$")


def stable_fingerprint(parts: Iterable[Any]) -> str:
    """A deterministic hex digest over a sequence of JSON-able parts.

    The shared fingerprint primitive for every cache in the system:
    materialization sidecars, the serving layer's plan/result cache keys.
    Parts are serialized with sorted keys so dict ordering never leaks
    into the digest; non-JSON values fall back to ``str()``.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(json.dumps(part, sort_keys=True, default=str).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()[:16]


def stable_seed(*parts: Any) -> int:
    """A deterministic non-negative RNG seed from JSON-able parts.

    Builtin ``hash()`` on strings is salted per process
    (PYTHONHASHSEED), so seeding ``random.Random(hash(some_id))``
    yields different sequences run to run; anything that derives
    randomness from an *identifier* must go through here instead (the
    same discipline as :func:`~repro.cluster.sharding.shard_for` for
    placement).
    """
    return int(stable_fingerprint(parts), 16) & 0x7FFFFFFF


def plan_fingerprint(plan: Any) -> str:
    """Structural fingerprint of a dataflow plan's lineage chain.

    Accepts a :class:`~repro.execution.plan.Plan` or a ``PlanNode`` and
    folds each upstream node's kind, normalized name and failure policy
    into one digest. Two pipelines with the same operator chain agree;
    inserting, removing, renaming or re-policying a stage changes it.
    """
    node = getattr(plan, "node", plan)
    parts = [
        {
            "kind": n.kind,
            "name": _AUTO_NAME_SUFFIX.sub("", n.name),
            "on_error": n.on_error,
            "retries": n.retries,
        }
        for n in node.lineage_chain()
    ]
    return stable_fingerprint(parts)


class MemoryCache:
    """Holds materialized records in process memory."""

    def __init__(self) -> None:
        self._records: Optional[List[Any]] = None

    def is_valid(self) -> bool:
        """True when cached contents are available."""
        return self._records is not None

    def write(self, records: List[Any]) -> None:
        """Store the given records."""
        self._records = list(records)

    def read(self) -> List[Any]:
        """Return the cached records."""
        if self._records is None:
            raise RuntimeError("reading from an unfilled MemoryCache")
        return list(self._records)

    def invalidate(self) -> None:
        """Discard cached contents so the next run recomputes."""
        self._records = None


class DiskCache:
    """Persists materialized records to a JSONL file.

    ``serialize``/``deserialize`` default to the Document codec; pass
    ``json.dumps``/``json.loads``-style callables for plain records.

    ``fingerprint`` identifies the computation that produces the records
    (usually :func:`plan_fingerprint` of the upstream plan). When set,
    :meth:`write` records it in a ``<path>.fp`` sidecar and
    :meth:`is_valid` requires the sidecar to match — so a materialization
    written by a *different* upstream pipeline is recomputed instead of
    silently served stale.
    """

    def __init__(
        self,
        path: Path,
        serialize: Optional[Callable[[Any], str]] = None,
        deserialize: Optional[Callable[[str], Any]] = None,
        fingerprint: Optional[str] = None,
    ):
        self.path = Path(path)
        self._serialize = serialize or _default_serialize
        self._deserialize = deserialize or _default_deserialize
        self.fingerprint = fingerprint

    @property
    def fingerprint_path(self) -> Path:
        """The sidecar file recording the producing plan's fingerprint."""
        return self.path.with_suffix(self.path.suffix + ".fp")

    def is_valid(self) -> bool:
        """True when cached contents exist *and* match our fingerprint.

        Without a fingerprint this degrades to the historical existence
        check. With one, a missing or mismatched sidecar (file written by
        older code, or by a different pipeline) invalidates the cache.
        """
        if not self.path.exists():
            return False
        if self.fingerprint is None:
            return True
        try:
            return self.fingerprint_path.read_text(encoding="utf-8").strip() == (
                self.fingerprint
            )
        except OSError:
            return False

    def write(self, records: List[Any]) -> None:
        """Store the given records (and the fingerprint sidecar)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(self._serialize(record))
                handle.write("\n")
        tmp.replace(self.path)  # atomic publish: readers never see partial files
        if self.fingerprint is not None:
            fp_tmp = self.fingerprint_path.with_suffix(".fp.tmp")
            fp_tmp.write_text(self.fingerprint + "\n", encoding="utf-8")
            fp_tmp.replace(self.fingerprint_path)

    def read(self) -> List[Any]:
        """Return the cached records."""
        if not self.path.exists():
            raise RuntimeError(f"reading from missing cache file {self.path}")
        records = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(self._deserialize(line))
        return records

    def invalidate(self) -> None:
        """Discard cached contents so the next run recomputes."""
        if self.path.exists():
            self.path.unlink()
        if self.fingerprint_path.exists():
            self.fingerprint_path.unlink()


def _default_serialize(record: Any) -> str:
    if isinstance(record, Document):
        return json.dumps({"__document__": record.to_dict()})
    return json.dumps({"__value__": record})


def _default_deserialize(line: str) -> Any:
    data = json.loads(line)
    if "__document__" in data:
        return Document.from_dict(data["__document__"])
    return data["__value__"]
