"""Plan execution: pipelined, optionally parallel, with task retries.

This is the repository's Ray substitute (DESIGN.md §1): the semantics the
paper relies on — lazy pipelined execution, scale-out across workers for
per-record transforms, automatic retry of failed tasks, and execution
statistics — implemented over a thread pool. Per-record operators stream;
``aggregate`` nodes drain their input (a barrier), matching Spark/Ray
stage semantics.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from ..lifecycle.deadline import (
    WAIT_POLL_S,
    LifecycleError,
    check_scope,
    current_scope,
)
from ..observability.cost import CostAccount
from ..observability.metrics import MetricsRegistry, get_registry
from ..observability.tracing import Span, Tracer
from .lineage import Lineage
from .plan import Plan, PlanNode


class TaskError(Exception):
    """A task failed after exhausting its retries."""

    def __init__(self, node_name: str, record: Any, cause: Exception):
        super().__init__(f"task in node {node_name!r} failed: {cause}")
        self.node_name = node_name
        self.record = record
        self.cause = cause


#: Valid per-node failure-containment policies. ``fail`` aborts on the
#: first failure (no retries); ``retry`` retries then aborts (the
#: historical default); ``skip`` retries then silently drops the record;
#: ``dead_letter`` retries then captures (record, node, cause) in the
#: run's dead-letter queue and drops the record from the output.
ON_ERROR_POLICIES = ("fail", "retry", "skip", "dead_letter")

#: Sentinel emitted by a contained failure; filtered out before yield.
_DROPPED = object()


@dataclass
class DeadLetter:
    """One record that failed terminally under a ``dead_letter`` policy."""

    node_name: str
    record: Any
    cause: Exception

    def __repr__(self) -> str:  # keep stats reprs readable
        return (
            f"DeadLetter(node={self.node_name!r}, "
            f"record={self.record!r}, cause={self.cause!r})"
        )


@dataclass
class NodeStats:
    """Per-node execution counters."""

    records_in: int = 0
    records_out: int = 0
    retries: int = 0
    skipped: int = 0
    dead_lettered: int = 0
    wall_time_s: float = 0.0


@dataclass
class ExecutionStats:
    """Statistics for one plan execution, keyed by node name."""

    nodes: Dict[str, NodeStats] = field(default_factory=dict)
    #: Records dropped under a ``dead_letter`` policy, in failure order.
    dead_letters: List[DeadLetter] = field(default_factory=list)
    #: Delta of the shared request scheduler's counters over this
    #: execution (submitted, completed, dedup hits, batches, ...) when
    #: the executor runs against a :class:`repro.runtime.RequestScheduler`.
    scheduler: Optional[Dict[str, Any]] = None
    #: Cost rollup derived from this execution's trace spans, when the
    #: executor was constructed with a tracer. Same arithmetic as the
    #: JSON trace export (both come from :meth:`CostAccount.from_spans`).
    cost: Optional[CostAccount] = None

    def node(self, name: str) -> NodeStats:
        """Per-node stats record (created on first access)."""
        return self.nodes.setdefault(name, NodeStats())

    def total_records_out(self, name: str) -> int:
        """Records emitted by the named node."""
        return self.nodes.get(name, NodeStats()).records_out

    def total_dead_lettered(self) -> int:
        """Records captured in the dead-letter queue this run."""
        return len(self.dead_letters)

    def total_skipped(self) -> int:
        """Records silently dropped under a ``skip`` policy this run."""
        return sum(stats.skipped for stats in self.nodes.values())


class Executor:
    """Executes plans.

    Parameters
    ----------
    parallelism:
        Worker threads for per-record operators. 1 = fully sequential.
    max_task_retries:
        How many times a failing per-record task is retried before its
        node's ``on_error`` policy decides the record's fate.
    on_error:
        Default failure-containment policy for nodes that do not carry
        their own (see :data:`ON_ERROR_POLICIES`). ``retry`` preserves
        the historical abort-after-retries behaviour.
    lineage:
        Optional :class:`Lineage` tracker; when given, map/flat_map over
        objects with a ``doc_id`` records derivation edges.
    batch_size:
        Records pulled per scheduling round in parallel mode; bounds
        memory while keeping workers busy.
    scheduler:
        Optional :class:`repro.runtime.RequestScheduler` the plan's LLM
        call sites submit through. The executor does not dispatch through
        it directly — transforms hold their own scheduled clients — but
        snapshots its counters around each execution so
        :class:`ExecutionStats` reports the plan's share of queue
        traffic, batching and dedup savings.
    tracer:
        Optional :class:`~repro.observability.Tracer`. Each execution
        gets a ``plan`` span with one ``transform`` span per per-record
        node; task functions run *under* their node's transform span
        (attached per call; parallel submissions each carry their own
        copied :mod:`contextvars` context), so any LLM request spans
        they open become its descendants. ``ExecutionStats.cost`` is
        rolled up from the execution's spans on completion.
    registry:
        :class:`~repro.observability.MetricsRegistry` for aggregate
        record/retry counters (default: the process registry).
        :class:`ExecutionStats` remains the per-run view.
    """

    def __init__(
        self,
        parallelism: int = 1,
        max_task_retries: int = 0,
        lineage: Optional[Lineage] = None,
        batch_size: int = 32,
        on_error: str = "retry",
        scheduler: Optional[Any] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"unknown on_error policy {on_error!r}; known: {ON_ERROR_POLICIES}"
            )
        self.parallelism = parallelism
        self.max_task_retries = max_task_retries
        self.lineage = lineage
        self.batch_size = batch_size
        self.on_error = on_error
        self.scheduler = scheduler
        self.tracer = tracer
        self.registry = registry if registry is not None else get_registry()
        reg = self.registry
        self._m_executions = reg.counter("executor.executions")
        self._m_records_in = reg.counter("executor.records_in")
        self._m_records_out = reg.counter("executor.records_out")
        self._m_retries = reg.counter("executor.task_retries")
        self._m_skipped = reg.counter("executor.records_skipped")
        self._m_dead_lettered = reg.counter("executor.records_dead_lettered")
        self._m_node_wall_s = reg.histogram("executor.node_wall_s")
        self.last_stats: Optional[ExecutionStats] = None

    # ------------------------------------------------------------------

    def execute(self, plan: Plan) -> Iterator[Any]:
        """Lazily yield the plan's output records."""
        stats = ExecutionStats()
        self.last_stats = stats
        self._m_executions.inc()
        if self.tracer is not None:
            plan_span = self.tracer.start_span(
                f"execute:{plan.node.name}", kind="plan", root=plan.node.name
            )
            with self.tracer.attach(plan_span):
                iterator = self._run_node(plan.node, stats)
            iterator = self._finish_plan_span(iterator, plan_span, stats)
        else:
            iterator = self._run_node(plan.node, stats)
        if self.scheduler is None:
            return iterator
        return self._track_scheduler(iterator, stats, self.scheduler.metrics())

    def _finish_plan_span(
        self, iterator: Iterator[Any], span: Span, stats: ExecutionStats
    ) -> Iterator[Any]:
        """Close the plan span when iteration ends and roll up its cost."""
        assert self.tracer is not None
        try:
            yield from iterator
        except GeneratorExit:  # consumer stopped early: not an error
            self.tracer.finish(span)
            raise
        except BaseException as exc:
            self.tracer.finish(
                span, status="error", error=f"{type(exc).__name__}: {exc}"
            )
            raise
        else:
            self.tracer.finish(span)
        finally:
            stats.cost = CostAccount.from_spans(self._descendant_spans(span))

    def _descendant_spans(self, root: Span) -> List[Span]:
        """``root`` plus its descendants, from the tracer's span log.

        The plan span may share a trace with a surrounding query span;
        cost accounting for *this* execution only wants its subtree.
        """
        assert self.tracer is not None
        trace = self.tracer.trace_spans(root.trace_id)
        keep = {root.span_id}
        selected = [root]
        for span in trace:  # span log is in creation order: parents first
            if span.span_id in keep:
                continue
            if span.parent_id in keep:
                keep.add(span.span_id)
                selected.append(span)
        return selected

    def _track_scheduler(
        self, iterator: Iterator[Any], stats: ExecutionStats, before: Dict[str, Any]
    ) -> Iterator[Any]:
        """Attribute the scheduler-counter delta of this run to its stats."""
        try:
            yield from iterator
        finally:
            after = self.scheduler.metrics()
            stats.scheduler = {
                key: round(after[key] - before[key], 6)
                for key in before
                if isinstance(before[key], (int, float))
            }

    def take_all(self, plan: Plan) -> List[Any]:
        """Execute and collect every output record."""
        return list(self.execute(plan))

    def count(self, plan: Plan) -> int:
        """Number of matching records."""
        return sum(1 for _ in self.execute(plan))

    # ------------------------------------------------------------------

    def _run_node(self, node: PlanNode, stats: ExecutionStats) -> Iterator[Any]:
        if node.kind == "source":
            return self._run_source(node, stats)
        assert node.parent is not None, f"{node.kind} node without parent"
        upstream = self._run_node(node.parent, stats)
        if node.kind == "map":
            return self._run_per_record(node, upstream, stats, mode="map")
        if node.kind == "filter":
            return self._run_per_record(node, upstream, stats, mode="filter")
        if node.kind == "flat_map":
            return self._run_per_record(node, upstream, stats, mode="flat_map")
        if node.kind == "aggregate":
            return self._run_aggregate(node, upstream, stats)
        if node.kind == "materialize":
            return self._run_materialize(node, upstream, stats)
        raise ValueError(f"unknown plan node kind: {node.kind!r}")

    def _run_source(self, node: PlanNode, stats: ExecutionStats) -> Iterator[Any]:
        node_stats = stats.node(node.name)
        start = time.perf_counter()
        assert node.items_fn is not None
        for record in node.items_fn():
            node_stats.records_out += 1
            yield record
        node_stats.wall_time_s += time.perf_counter() - start

    def _run_aggregate(
        self, node: PlanNode, upstream: Iterator[Any], stats: ExecutionStats
    ) -> Iterator[Any]:
        node_stats = stats.node(node.name)
        records = list(upstream)
        node_stats.records_in += len(records)
        start = time.perf_counter()
        assert node.fn is not None
        for record in node.fn(records):
            node_stats.records_out += 1
            yield record
        node_stats.wall_time_s += time.perf_counter() - start

    def _run_materialize(
        self, node: PlanNode, upstream: Iterator[Any], stats: ExecutionStats
    ) -> Iterator[Any]:
        node_stats = stats.node(node.name)
        cache = node.cache
        if cache.is_valid():
            for record in cache.read():
                node_stats.records_out += 1
                yield record
            return
        collected = []
        for record in upstream:
            node_stats.records_in += 1
            collected.append(record)
        cache.write(collected)
        for record in collected:
            node_stats.records_out += 1
            yield record

    # ------------------------------------------------------------------
    # Per-record operators
    # ------------------------------------------------------------------

    def _run_per_record(
        self, node: PlanNode, upstream: Iterator[Any], stats: ExecutionStats, mode: str
    ) -> Iterator[Any]:
        span: Optional[Span] = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                f"transform:{node.name}", kind="transform", node=node.name, mode=mode
            )
        if self.parallelism == 1:
            inner = self._per_record_serial(node, upstream, stats, mode, span)
        else:
            inner = self._per_record_parallel(node, upstream, stats, mode, span)
        if span is None:
            return inner
        return self._finish_node_span(inner, span, stats.node(node.name))

    def _finish_node_span(
        self, iterator: Iterator[Any], span: Span, node_stats: NodeStats
    ) -> Iterator[Any]:
        assert self.tracer is not None
        try:
            yield from iterator
        except GeneratorExit:
            span.set_attributes(
                records_in=node_stats.records_in, records_out=node_stats.records_out
            )
            self.tracer.finish(span)
            raise
        except BaseException as exc:
            span.set_attributes(
                records_in=node_stats.records_in, records_out=node_stats.records_out
            )
            self.tracer.finish(
                span, status="error", error=f"{type(exc).__name__}: {exc}"
            )
            raise
        span.set_attributes(
            records_in=node_stats.records_in, records_out=node_stats.records_out
        )
        self.tracer.finish(span)
        self._m_node_wall_s.observe(node_stats.wall_time_s)

    def _per_record_serial(
        self,
        node: PlanNode,
        upstream: Iterator[Any],
        stats: ExecutionStats,
        mode: str,
        span: Optional[Span] = None,
    ) -> Iterator[Any]:
        node_stats = stats.node(node.name)
        for record in upstream:
            node_stats.records_in += 1
            self._m_records_in.inc()
            start = time.perf_counter()
            if span is not None and self.tracer is not None:
                with self.tracer.attach(span):
                    result = self._apply_with_retry(node, record, node_stats, stats)
            else:
                result = self._apply_with_retry(node, record, node_stats, stats)
            node_stats.wall_time_s += time.perf_counter() - start
            yield from self._emit(node, record, result, mode, node_stats)

    def _per_record_parallel(
        self,
        node: PlanNode,
        upstream: Iterator[Any],
        stats: ExecutionStats,
        mode: str,
        span: Optional[Span] = None,
    ) -> Iterator[Any]:
        node_stats = stats.node(node.name)
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
            pending: "List[Future]" = []
            results: Dict[int, Any] = {}
            inputs: Dict[int, Any] = {}
            next_to_yield = 0
            submitted = 0
            upstream_iter = iter(upstream)
            exhausted = False
            while not exhausted or next_to_yield < submitted:
                # Keep a bounded window of in-flight tasks.
                while not exhausted and len(pending) < self.parallelism * 2:
                    try:
                        record = next(upstream_iter)
                    except StopIteration:
                        exhausted = True
                        break
                    node_stats.records_in += 1
                    self._m_records_in.inc()
                    index = submitted
                    submitted += 1
                    inputs[index] = record
                    # One copied Context per task (a Context cannot be
                    # entered concurrently); the copy carries the
                    # transform span — and the query's CancelScope — as
                    # the worker's ambient state.
                    if span is not None and self.tracer is not None:
                        with self.tracer.attach(span):
                            task_ctx = contextvars.copy_context()
                    else:
                        task_ctx = contextvars.copy_context()
                    future = pool.submit(
                        task_ctx.run,
                        self._apply_with_retry,
                        node,
                        record,
                        node_stats,
                        stats,
                    )
                    future.index = index  # type: ignore[attr-defined]
                    pending.append(future)
                if pending:
                    # Under a scope, wait in slices so cancellation and
                    # deadline expiry interrupt the gather promptly even
                    # when no task finishes.
                    slice_s = None if current_scope() is None else WAIT_POLL_S
                    done, still_pending = wait(
                        pending, timeout=slice_s, return_when=FIRST_COMPLETED
                    )
                    pending = list(still_pending)
                    if not done:
                        try:
                            check_scope()
                        except BaseException:
                            for other in pending:
                                other.cancel()
                            raise
                    for future in done:
                        try:
                            # Already resolved (came out of wait()'s done set).
                            results[future.index] = future.result()  # type: ignore[attr-defined]  # repro: lint-ignore[timeout-not-propagated]
                        except BaseException:
                            # Abort: don't leave queued work running after
                            # the node is already dead.
                            for other in pending:
                                other.cancel()
                            raise
                # Yield in input order to keep execution deterministic.
                while next_to_yield in results:
                    record = inputs.pop(next_to_yield)
                    result = results.pop(next_to_yield)
                    next_to_yield += 1
                    yield from self._emit(node, record, result, mode, node_stats)
        node_stats.wall_time_s += time.perf_counter() - start

    def _apply_with_retry(
        self, node: PlanNode, record: Any, node_stats: NodeStats, stats: ExecutionStats
    ) -> Any:
        assert node.fn is not None
        policy = node.on_error or self.on_error
        if policy not in ON_ERROR_POLICIES:
            raise ValueError(
                f"unknown on_error policy {policy!r} on node {node.name!r}"
            )
        retries = node.retries if node.retries is not None else self.max_task_retries
        if policy == "fail":
            retries = 0
        attempts = retries + 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            # Record boundaries are cooperative checkpoints, and an
            # expired/cancelled query must not burn retries.
            check_scope()
            try:
                return node.fn(record)
            except LifecycleError:
                # Deadline expiry and cancellation are query-level
                # verdicts, not task failures: never retried, skipped,
                # or dead-lettered.
                raise
            except Exception as exc:  # noqa: BLE001 - contain any task failure
                last_error = exc
                # Only an attempt that will actually be re-tried counts as
                # a retry; the terminal failure is not one.
                if attempt + 1 < attempts:
                    with _stats_lock:
                        node_stats.retries += 1
                    self._m_retries.inc()
        assert last_error is not None
        if policy in ("fail", "retry"):
            raise TaskError(node.name, record, last_error)
        if policy == "skip":
            with _stats_lock:
                node_stats.skipped += 1
            self._m_skipped.inc()
            return _DROPPED
        with _stats_lock:  # dead_letter
            node_stats.dead_lettered += 1
            stats.dead_letters.append(DeadLetter(node.name, record, last_error))
        self._m_dead_lettered.inc()
        return _DROPPED

    def _emit(
        self, node: PlanNode, record: Any, result: Any, mode: str, node_stats: NodeStats
    ) -> Iterator[Any]:
        if result is _DROPPED:
            return
        if mode == "map":
            node_stats.records_out += 1
            self._m_records_out.inc()
            self._record_lineage(node, record, [result])
            yield result
        elif mode == "filter":
            if result:
                node_stats.records_out += 1
                self._m_records_out.inc()
                yield record
        else:  # flat_map
            outputs = list(result)
            node_stats.records_out += len(outputs)
            self._m_records_out.inc(len(outputs))
            self._record_lineage(node, record, outputs)
            yield from outputs

    def _record_lineage(self, node: PlanNode, record: Any, outputs: List[Any]) -> None:
        if self.lineage is None:
            return
        source_id = getattr(record, "doc_id", None)
        if source_id is None:
            return
        for output in outputs:
            target_id = getattr(output, "doc_id", None)
            if target_id is not None and target_id != source_id:
                self.lineage.record(node.name, source_id, target_id)


_stats_lock = threading.Lock()
