"""Lineage tracking across transforms.

The paper's explainability tenet: "Aryn should provide a detailed trace
of how the answer was computed, including the provenance of intermediate
results." Sycamore transforms record derivation edges here — which
document produced which — and queries can walk the chain back to original
sources.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Set


@dataclass(frozen=True)
class LineageEdge:
    """One derivation: ``source_id`` --(transform)--> ``target_id``."""

    transform: str
    source_id: str
    target_id: str


class Lineage:
    """Thread-safe store of derivation edges with ancestry queries."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: List[LineageEdge] = []
        self._parents: Dict[str, List[LineageEdge]] = {}
        self._children: Dict[str, List[LineageEdge]] = {}

    def record(self, transform: str, source_id: str, target_id: str) -> LineageEdge:
        """Append one entry."""
        edge = LineageEdge(transform=transform, source_id=source_id, target_id=target_id)
        with self._lock:
            self._edges.append(edge)
            self._parents.setdefault(target_id, []).append(edge)
            self._children.setdefault(source_id, []).append(edge)
        return edge

    def edges(self) -> List[LineageEdge]:
        """A snapshot list of all recorded edges."""
        with self._lock:
            return list(self._edges)

    def parents_of(self, doc_id: str) -> List[str]:
        """Immediate predecessors of a document."""
        with self._lock:
            return [e.source_id for e in self._parents.get(doc_id, [])]

    def children_of(self, doc_id: str) -> List[str]:
        """Immediate derived documents of a document."""
        with self._lock:
            return [e.target_id for e in self._children.get(doc_id, [])]

    def ancestors_of(self, doc_id: str) -> List[str]:
        """All transitive sources of a document (provenance closure)."""
        seen: Set[str] = set()
        frontier = [doc_id]
        while frontier:
            current = frontier.pop()
            for parent in self.parents_of(current):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return sorted(seen)

    def root_sources_of(self, doc_id: str) -> List[str]:
        """Ancestors with no recorded parents — the original documents."""
        roots = [a for a in self.ancestors_of(doc_id) if not self.parents_of(a)]
        if not roots and not self.parents_of(doc_id):
            return [doc_id]
        return roots

    def trace(self, doc_id: str) -> List[LineageEdge]:
        """All edges on paths leading into ``doc_id``, oldest first."""
        relevant = set(self.ancestors_of(doc_id)) | {doc_id}
        return [e for e in self.edges() if e.target_id in relevant]

    def clear(self) -> None:
        """Remove all entries."""
        with self._lock:
            self._edges.clear()
            self._parents.clear()
            self._children.clear()
