"""Execution substrate: lazy plans, pipelined/parallel executor, caches,
lineage. The repository's Ray stand-in (see DESIGN.md §1).
"""

from .executor import (
    DeadLetter,
    ExecutionStats,
    Executor,
    NodeStats,
    ON_ERROR_POLICIES,
    TaskError,
)
from .lineage import Lineage, LineageEdge
from .materialize import DiskCache, MemoryCache, plan_fingerprint, stable_fingerprint
from .plan import Plan, PlanNode

__all__ = [
    "DeadLetter",
    "DiskCache",
    "ExecutionStats",
    "Executor",
    "Lineage",
    "LineageEdge",
    "MemoryCache",
    "NodeStats",
    "ON_ERROR_POLICIES",
    "Plan",
    "PlanNode",
    "TaskError",
    "plan_fingerprint",
    "stable_fingerprint",
]
