"""Execution substrate: lazy plans, pipelined/parallel executor, caches,
lineage. The repository's Ray stand-in (see DESIGN.md §1).
"""

from .executor import ExecutionStats, Executor, NodeStats, TaskError
from .lineage import Lineage, LineageEdge
from .materialize import DiskCache, MemoryCache
from .plan import Plan, PlanNode

__all__ = [
    "DiskCache",
    "ExecutionStats",
    "Executor",
    "Lineage",
    "LineageEdge",
    "MemoryCache",
    "NodeStats",
    "Plan",
    "PlanNode",
    "TaskError",
]
