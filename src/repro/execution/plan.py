"""Logical dataflow plans.

Sycamore "adopts a Spark-like execution model where operations are
pipelined and executed lazily when materialization is required" (§5.3).
A :class:`Plan` is an immutable DAG of operator nodes over a stream of
records; nothing runs until an :class:`~repro.execution.executor.Executor`
pulls from it. Per-record operators (map/filter/flat_map) pipeline and
parallelize; blocking operators (aggregate) drain their input first.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence

_counter = itertools.count()


def _auto_name(kind: str) -> str:
    return f"{kind}_{next(_counter)}"


@dataclass(frozen=True)
class PlanNode:
    """One operator in the logical DAG.

    ``kind`` is one of: ``source`` (items_fn yields records), ``map``,
    ``filter``, ``flat_map`` (fn applies per record), ``aggregate``
    (fn maps the full record list to a new record list — a pipeline
    barrier), and ``materialize`` (cache boundary; ``cache`` is a
    MemoryCache/DiskCache from :mod:`repro.execution.materialize`).
    """

    kind: str
    name: str
    fn: Optional[Callable[..., Any]] = None
    items_fn: Optional[Callable[[], Iterable[Any]]] = None
    parent: Optional["PlanNode"] = None
    cache: Any = None
    #: Failure-containment policy for per-record failures: ``fail`` |
    #: ``retry`` | ``skip`` | ``dead_letter``. ``None`` defers to the
    #: executor's default (see Executor.on_error).
    on_error: Optional[str] = None
    #: Per-node retry override; ``None`` defers to the executor's
    #: ``max_task_retries``.
    retries: Optional[int] = None

    def lineage_chain(self) -> List["PlanNode"]:
        """Nodes from source to this node, in execution order."""
        chain: List[PlanNode] = []
        node: Optional[PlanNode] = self
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        return chain


class Plan:
    """Builder handle over a :class:`PlanNode` DAG. Immutable and shareable:
    every transformation returns a new Plan, so a base plan can fan out to
    several downstream plans (as Luna's percentage queries do).
    """

    def __init__(self, node: PlanNode):
        self.node = node

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------

    @classmethod
    def source(cls, items_fn: Callable[[], Iterable[Any]], name: Optional[str] = None) -> "Plan":
        """Lazy source: ``items_fn`` is called once per execution."""
        return cls(PlanNode(kind="source", name=name or _auto_name("source"), items_fn=items_fn))

    @classmethod
    def from_items(cls, items: Sequence[Any], name: Optional[str] = None) -> "Plan":
        """Source over an already-realized sequence (copied defensively)."""
        snapshot = list(items)
        return cls.source(lambda: iter(snapshot), name=name or _auto_name("items"))

    # ------------------------------------------------------------------
    # Per-record operators (pipelined, parallelizable)
    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        name: Optional[str] = None,
        on_error: Optional[str] = None,
        retries: Optional[int] = None,
    ) -> "Plan":
        """Per-record transform node (pipelined, parallelizable)."""
        return Plan(
            PlanNode(
                kind="map",
                name=name or _auto_name("map"),
                fn=fn,
                parent=self.node,
                on_error=on_error,
                retries=retries,
            )
        )

    def filter(
        self,
        fn: Callable[[Any], bool],
        name: Optional[str] = None,
        on_error: Optional[str] = None,
        retries: Optional[int] = None,
    ) -> "Plan":
        """Per-record predicate node; keeps matching records."""
        return Plan(
            PlanNode(
                kind="filter",
                name=name or _auto_name("filter"),
                fn=fn,
                parent=self.node,
                on_error=on_error,
                retries=retries,
            )
        )

    def flat_map(
        self,
        fn: Callable[[Any], Iterable[Any]],
        name: Optional[str] = None,
        on_error: Optional[str] = None,
        retries: Optional[int] = None,
    ) -> "Plan":
        """Per-record expansion node (zero or more outputs each)."""
        return Plan(
            PlanNode(
                kind="flat_map",
                name=name or _auto_name("flat_map"),
                fn=fn,
                parent=self.node,
                on_error=on_error,
                retries=retries,
            )
        )

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------

    def aggregate(
        self, fn: Callable[[List[Any]], Iterable[Any]], name: Optional[str] = None
    ) -> "Plan":
        """Blocking operator: ``fn`` sees the complete input list."""
        return Plan(
            PlanNode(
                kind="aggregate", name=name or _auto_name("aggregate"), fn=fn, parent=self.node
            )
        )

    def materialize(self, cache: Any, name: Optional[str] = None) -> "Plan":
        """Cache boundary: first execution fills ``cache``, later ones read it."""
        return Plan(
            PlanNode(
                kind="materialize",
                name=name or _auto_name("materialize"),
                cache=cache,
                parent=self.node,
            )
        )

    # ------------------------------------------------------------------

    def explain(self) -> str:
        """Human-readable plan rendering (the debugging view Luna exposes)."""
        lines = []
        for depth, node in enumerate(self.node.lineage_chain()):
            indent = "  " * depth
            lines.append(f"{indent}{node.kind}[{node.name}]")
        return "\n".join(lines)

    def nodes(self) -> List[PlanNode]:
        """All plan nodes from source to sink."""
        return self.node.lineage_chain()
