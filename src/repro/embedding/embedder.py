"""Deterministic feature-hashing text embedder.

Design: each token (and each token bigram, to capture a little word
order) is hashed into a fixed-dimension vector with a signed hash — the
classic "hashing trick". Token weights are sublinear TF with an IDF-like
damping of very common words. A light *semantic smoothing* step adds a
fraction of each domain concept's centroid when concept keywords are
present, so "gust" and "crosswind" land near each other the way learned
embeddings put synonyms near each other.

The embedder is stateless and seeded: the same text always produces the
same vector, so tests, indexes and benchmarks are reproducible.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, Iterable, List, Optional, Protocol

import numpy as np

from ..llm import knowledge

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Words too common to carry signal; damped rather than dropped so that
#: texts made only of stopwords still embed to something.
_COMMON = frozenset(
    """the a an and or of to in on for with was were is are that this it as
    at by from be been has have had not no""".split()
)


def tokenize(text: str) -> List[str]:
    """Lowercase word tokens of ``text``."""
    return _TOKEN_RE.findall(text.lower())


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity; zero vectors have similarity 0 to everything."""
    norm = float(np.linalg.norm(a) * np.linalg.norm(b))
    if norm == 0.0:
        return 0.0
    return float(np.dot(a, b) / norm)


class Embedder(Protocol):
    """Anything that maps text to a fixed-dimension vector."""

    dimensions: int

    def embed(self, text: str) -> np.ndarray:
        """Embedding vector for the text."""
        ...

    def embed_many(self, texts: Iterable[str]) -> List[np.ndarray]:
        """Embedding vectors for several texts."""
        ...


class HashingEmbedder:
    """Feature-hashing embedder with optional concept smoothing.

    Parameters
    ----------
    dimensions:
        Embedding width. 256 is plenty for the corpus sizes benches use.
    seed:
        Hash salt; different seeds produce incompatible spaces.
    concept_weight:
        Strength of semantic smoothing toward domain-concept centroids
        (0 disables it; 1.0 balances synonym clustering against lexical
        signal).
    """

    def __init__(self, dimensions: int = 256, seed: int = 0, concept_weight: float = 1.0):
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        self.dimensions = dimensions
        self.seed = seed
        self.concept_weight = concept_weight
        self._cache: Dict[str, np.ndarray] = {}
        self._concept_vectors: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------

    def embed(self, text: str) -> np.ndarray:
        """L2-normalized embedding of ``text`` (zero vector for empty text)."""
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        vector = self._embed_lexical(text)
        lexical_norm = float(np.linalg.norm(vector))
        if lexical_norm > 0.0:
            vector = vector / lexical_norm
        if self.concept_weight > 0.0:
            vector = vector + self.concept_weight * self._concept_component(text)
        norm = float(np.linalg.norm(vector))
        if norm > 0.0:
            vector = vector / norm
        vector.setflags(write=False)
        if len(self._cache) < 100_000:
            self._cache[text] = vector
        return vector

    def embed_many(self, texts: Iterable[str]) -> List[np.ndarray]:
        """Embedding vectors for several texts."""
        return [self.embed(t) for t in texts]

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two texts' embeddings."""
        return cosine_similarity(self.embed(a), self.embed(b))

    # ------------------------------------------------------------------

    def _embed_lexical(self, text: str) -> np.ndarray:
        tokens = tokenize(text)
        vector = np.zeros(self.dimensions, dtype=np.float64)
        if not tokens:
            return vector
        counts: Dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        for token, count in counts.items():
            weight = np.log1p(count)
            if token in _COMMON:
                weight *= 0.1
            index, sign = self._slot(token)
            vector[index] += sign * weight
        for first, second in zip(tokens, tokens[1:]):
            index, sign = self._slot(f"{first}__{second}")
            vector[index] += sign * 0.5
        return vector

    def _concept_component(self, text: str) -> np.ndarray:
        component = np.zeros(self.dimensions, dtype=np.float64)
        for concept, centroid in self._concepts().items():
            if knowledge.text_matches_concept(text, concept):
                component += centroid
        norm = float(np.linalg.norm(component))
        if norm > 0.0:
            component = component / norm
        return component

    def _concepts(self) -> Dict[str, np.ndarray]:
        if self._concept_vectors is None:
            vectors = {}
            for concept in knowledge.CONCEPT_KEYWORDS:
                index, sign = self._slot(f"concept::{concept}")
                centroid = np.zeros(self.dimensions, dtype=np.float64)
                centroid[index] = sign
                # Spread onto a couple more slots so concepts are not
                # mutually orthogonal one-hot spikes.
                for salt in ("b", "c"):
                    index2, sign2 = self._slot(f"concept::{concept}::{salt}")
                    centroid[index2] = sign2 * 0.5
                vectors[concept] = centroid / np.linalg.norm(centroid)
            self._concept_vectors = vectors
        return self._concept_vectors

    def _slot(self, token: str) -> tuple:
        digest = hashlib.blake2b(
            f"{self.seed}:{token}".encode("utf-8"), digest_size=8
        ).digest()
        value = int.from_bytes(digest, "big")
        index = value % self.dimensions
        sign = 1.0 if (value >> 62) & 1 else -1.0
        return index, sign
