"""Embedding substrate: deterministic text embeddings for vector search.

Substitutes for hosted embedding models (see DESIGN.md §1). The
:class:`HashingEmbedder` reproduces the qualitative property the paper's
§2 argument rests on: embeddings separate topically-distinct texts well
on small corpora, but discriminability erodes as corpora grow and near-
duplicate documents crowd the space (bench C3).
"""

from .embedder import Embedder, HashingEmbedder, cosine_similarity, tokenize

__all__ = ["Embedder", "HashingEmbedder", "cosine_similarity", "tokenize"]
