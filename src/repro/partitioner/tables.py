"""Table structure recovery and cross-page table repair.

Reproduces the partitioner's table pipeline (§4): "when the model
identifies and labels a component as table, we use the Table Transformer
model to identify the bounding box of each cell in the table, and then
intersect those bounding boxes with the text extracted from the PDF".

The cell-structure *model* is simulated (it reads the underlying grid
geometry with a configurable miss rate), but the text/cell intersection
is real geometry over positioned runs, and the cross-page merge logic is
a genuine structural repair of split tables — the failure case the paper
uses to motivate structure-aware partitioning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..docmodel.bbox import BoundingBox
from ..docmodel.raw import RawBox, RawPage, RawTextRun
from ..docmodel.table import Table, TableCell, merge_tables


@dataclass(frozen=True)
class TableModelConfig:
    """Noise parameters of the simulated Table Transformer.

    ``cell_miss_prob``: chance a cell's bounding box is not recovered
    (its text is then lost from the structured view).
    ``row_merge_prob``: chance two adjacent body rows are merged into one
    (their texts concatenate), a common real-world failure.
    """

    name: str = "table-transformer"
    cell_miss_prob: float = 0.01
    row_merge_prob: float = 0.01


HIGH_FIDELITY_TABLE_MODEL = TableModelConfig(
    name="table-transformer", cell_miss_prob=0.01, row_merge_prob=0.01
)
LOW_FIDELITY_TABLE_MODEL = TableModelConfig(
    name="naive-grid-heuristic", cell_miss_prob=0.15, row_merge_prob=0.12
)


class TableStructureModel:
    """Recovers a :class:`Table` from a detected table region."""

    def __init__(self, config: TableModelConfig = HIGH_FIDELITY_TABLE_MODEL, seed: int = 0):
        self.config = config
        self.seed = seed

    def recover(
        self,
        region: RawBox,
        page: RawPage,
        region_key: str = "",
    ) -> Optional[Table]:
        """Recover cell structure for a table region.

        The simulated model reads the region's latent cell grid (standing
        in for visual cell detection), drops/merges cells per its noise
        config, then fills each surviving cell's text by intersecting its
        bounding box with the page's text runs — the real PDFMiner-style
        step.
        """
        if region.table is None:
            return None
        rng = random.Random(f"{self.seed}:{self.config.name}:{region_key}")
        source = region.table
        cells: List[TableCell] = []
        merged_rows = self._rows_to_merge(source, rng)
        runs = [run for run in page.text_runs()]
        for cell in source.cells:
            if cell.bbox is None:
                continue
            if rng.random() < self.config.cell_miss_prob:
                continue
            row = cell.row
            # Row merge: rows collapse onto their predecessor.
            offset = sum(1 for m in merged_rows if m <= row)
            cell_bbox = cell.bbox
            text = extract_cell_text(cell_bbox, runs)
            cells.append(
                TableCell(
                    row=row - offset,
                    col=cell.col,
                    text=text,
                    rowspan=cell.rowspan,
                    colspan=cell.colspan,
                    is_header=cell.is_header,
                    bbox=cell_bbox,
                )
            )
        cells = _resolve_collisions(cells)
        if not cells:
            return None
        table = Table(cells=cells, caption=source.caption)
        table.validate()
        return table

    def _rows_to_merge(self, source: Table, rng: random.Random) -> List[int]:
        merged = []
        for row in range(1, source.num_rows):
            if rng.random() < self.config.row_merge_prob:
                merged.append(row)
        return merged


def extract_cell_text(cell_bbox: BoundingBox, runs: List[RawTextRun]) -> str:
    """Text of all runs whose area lies mostly within the cell box."""
    parts = []
    for run in runs:
        if run.bbox.overlap_fraction(cell_bbox) >= 0.5:
            parts.append(run.text)
    return " ".join(parts)


def _resolve_collisions(cells: List[TableCell]) -> List[TableCell]:
    """Merge cells that row-merging mapped onto the same grid slot."""
    by_slot = {}
    order = []
    for cell in cells:
        slot = (cell.row, cell.col)
        if slot in by_slot:
            existing = by_slot[slot]
            combined = " ".join(t for t in (existing.text, cell.text) if t)
            by_slot[slot] = TableCell(
                row=existing.row,
                col=existing.col,
                text=combined,
                rowspan=existing.rowspan,
                colspan=existing.colspan,
                is_header=existing.is_header,
                bbox=existing.bbox,
            )
        else:
            by_slot[slot] = cell
            order.append(slot)
    return [by_slot[slot] for slot in order]


def merge_continuation_tables(tables: List[Table], continuation_flags: List[bool]) -> List[Table]:
    """Merge table fragments marked as continuations into their parents.

    ``tables[i]`` with ``continuation_flags[i]`` True is appended to the
    previous surviving table when the column counts are compatible;
    otherwise it is kept as its own table (a conservative repair —
    merging incompatible fragments would corrupt data).
    """
    if len(tables) != len(continuation_flags):
        raise ValueError("tables and continuation_flags must align")
    merged: List[Table] = []
    for table, continues in zip(tables, continuation_flags):
        if (
            continues
            and merged
            and merged[-1].num_cols == table.num_cols
            and table.num_cols > 0
        ):
            merged[-1] = merge_tables(merged[-1], table)
        else:
            merged.append(table)
    return merged
