"""The Aryn Partitioner: raw documents -> semantic document trees.

Pipeline per §4: a vision segmentation model proposes labelled regions;
text is attached to regions by geometric intersection with the page's
extracted runs; table regions go through cell-structure recovery and
cross-page merging; scanned regions go through OCR; picture regions get
image metadata and a textual summary hook. The result is the
tree-structured :class:`~repro.docmodel.document.Document` Sycamore
operates on, with sections grouped under their headers.

A :class:`NaiveTextPartitioner` is included as the text-extraction
baseline the paper argues against (§2): a flat stream of text chunks
with no structure, no table semantics, and no OCR.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..docmodel.bbox import BoundingBox, reading_order
from ..observability.metrics import get_registry
from ..docmodel.document import Document, Node
from ..docmodel.elements import Element, ImageElement, TableElement, make_element
from ..docmodel.raw import RawBox, RawDocument, RawPage
from ..docmodel.table import Table
from .ocr import ACCURATE_OCR, OcrConfig, SimulatedOCR
from .segmentation import ARYN_DETECTOR, Detection, DetectorConfig, SegmentationModel
from .tables import (
    HIGH_FIDELITY_TABLE_MODEL,
    TableModelConfig,
    TableStructureModel,
    merge_continuation_tables,
)

#: Region labels excluded from a document's main text representation.
FURNITURE_LABELS = frozenset({"Page-header", "Page-footer"})


class ArynPartitioner:
    """Vision-based structure-aware partitioner.

    Parameters select the component models; defaults are the calibrated
    high-fidelity configuration. ``merge_tables`` toggles cross-page table
    repair (ablated in bench C6).
    """

    def __init__(
        self,
        detector: DetectorConfig = ARYN_DETECTOR,
        table_model: TableModelConfig = HIGH_FIDELITY_TABLE_MODEL,
        ocr: OcrConfig = ACCURATE_OCR,
        seed: int = 0,
        merge_tables: bool = True,
        summarize_images: bool = True,
    ):
        self._segmentation = SegmentationModel(config=detector, seed=seed)
        self._tables = TableStructureModel(config=table_model, seed=seed)
        self._ocr = SimulatedOCR(config=ocr, seed=seed)
        self.merge_tables = merge_tables
        self.summarize_images = summarize_images

    # ------------------------------------------------------------------

    def partition(self, source: "RawDocument | Document") -> Document:
        """Partition a raw document (or a Document holding raw binary)."""
        start = time.perf_counter()
        raw, base = self._coerce(source)
        elements: List[Element] = []
        for page_number, page in enumerate(raw.pages):
            page_key = f"{raw.doc_id}:{page_number}"
            detections = self._segmentation.detect(page, page_key=page_key)
            page_elements = self._detections_to_elements(
                detections, page, page_number, page_key
            )
            elements.extend(page_elements)
        if self.merge_tables:
            elements = self._merge_cross_page_tables(elements)
        root = build_section_tree(elements)
        registry = get_registry()
        registry.counter("partitioner.documents").inc()
        registry.counter("partitioner.pages").inc(raw.num_pages())
        registry.counter("partitioner.elements").inc(len(elements))
        registry.histogram("partitioner.partition_s").observe(
            time.perf_counter() - start
        )
        document = base if base is not None else Document()
        document.doc_id = raw.doc_id
        document.binary = None
        document.root = root
        document.properties.setdefault("path", raw.source_path)
        document.properties["num_pages"] = raw.num_pages()
        return document

    # ------------------------------------------------------------------

    def _coerce(self, source: "RawDocument | Document") -> Tuple[RawDocument, Optional[Document]]:
        if isinstance(source, RawDocument):
            return source, None
        if isinstance(source, Document):
            if source.binary is None:
                raise ValueError(
                    "partition() on a Document requires raw binary content"
                )
            return RawDocument.from_bytes(source.binary), source
        raise TypeError(f"cannot partition {type(source).__name__}")

    def _detections_to_elements(
        self,
        detections: List[Detection],
        page: RawPage,
        page_number: int,
        page_key: str,
    ) -> List[Element]:
        elements: List[Element] = []
        boxes: List[BoundingBox] = []
        for det_index, detection in enumerate(detections):
            region = _best_region(detection.bbox, page)
            element = self._build_element(
                detection, region, page, page_number, f"{page_key}:{det_index}"
            )
            if element is None:
                continue
            element.properties["confidence"] = round(detection.confidence, 3)
            elements.append(element)
            boxes.append(element.bbox)
        order = reading_order(boxes, row_tolerance=6.0)
        return [elements[i] for i in order]

    def _build_element(
        self,
        detection: Detection,
        region: Optional[RawBox],
        page: RawPage,
        page_number: int,
        key: str,
    ) -> Optional[Element]:
        label = detection.label
        if label == "Table":
            table = None
            continues = False
            if region is not None and region.table is not None:
                table = self._tables.recover(region, page, region_key=key)
                continues = region.continues_previous
            if table is None:
                # Detected a table where cell structure could not be
                # recovered: degrade to a text element over the region.
                label = "Text"
            else:
                element = make_element(
                    "Table",
                    text=table.to_text(),
                    bbox=detection.bbox,
                    page=page_number,
                    table=table,
                )
                element.properties["continues_previous"] = continues
                return element
        if label == "Picture":
            if region is not None and region.image_format is not None:
                summary = region.image_description if self.summarize_images else None
                element = make_element(
                    "Picture",
                    bbox=detection.bbox,
                    page=page_number,
                    format=region.image_format,
                    width_px=region.image_width_px,
                    height_px=region.image_height_px,
                    summary=summary,
                )
                if region.scanned and region.runs:
                    # Image containing printed text: OCR it into the text slot.
                    element.text = self._ocr.read_region(region, region_key=key)
                return element
            label = "Text"  # picture false positive over a text area
        # Text-like labels: attach the runs geometrically inside the box.
        if region is not None and region.scanned:
            text = self._ocr.read_region(region, region_key=key)
        else:
            text = _text_in_box(detection.bbox, page)
        if not text.strip():
            return None
        return make_element(label, text=text, bbox=detection.bbox, page=page_number)

    def _merge_cross_page_tables(self, elements: List[Element]) -> List[Element]:
        table_elements = [e for e in elements if isinstance(e, TableElement)]
        if not table_elements:
            return elements
        tables = [e.table for e in table_elements]
        flags = [bool(e.properties.get("continues_previous")) for e in table_elements]
        merged = merge_continuation_tables(tables, flags)
        if len(merged) == len(tables):
            for element, table in zip(table_elements, merged):
                element.table = table
            return elements
        # Some fragments were absorbed: rebuild the element list, keeping
        # the first fragment of each merged table and dropping the rest.
        result: List[Element] = []
        merged_iter = iter(merged)
        current: Optional[TableElement] = None
        for element in elements:
            if not isinstance(element, TableElement):
                result.append(element)
                continue
            if bool(element.properties.get("continues_previous")) and current is not None:
                continue  # absorbed into the previous fragment
            current = element
            current.table = next(merged_iter)
            current.text = current.table.to_text()
            result.append(current)
        return result


def _best_region(bbox: BoundingBox, page: RawPage) -> Optional[RawBox]:
    """The ground region best overlapping a detection, if any."""
    best: Optional[RawBox] = None
    best_iou = 0.0
    for region in page.boxes:
        iou = bbox.iou(region.bbox)
        if iou > best_iou:
            best_iou = iou
            best = region
    if best_iou < 0.2:
        return None
    return best


def _text_in_box(bbox: BoundingBox, page: RawPage, margin: float = 4.0) -> str:
    """All machine-readable text geometrically inside a detection box.

    The box is padded by a small margin first: detector jitter routinely
    clips the first/last line of a region, and production partitioners
    pad for exactly this reason.
    """
    padded = bbox.expand(margin)
    parts = []
    for run in page.text_runs():
        if run.bbox.overlap_fraction(padded) >= 0.5:
            parts.append(run.text)
    return "\n".join(parts)


def build_section_tree(elements: List[Element]) -> Node:
    """Group a flat element stream into sections under their headers.

    Title and page furniture stay at the root; each Section-header opens
    a new section node that collects subsequent elements until the next
    header.
    """
    root = Node(label="document")
    current: Optional[Node] = None
    for element in elements:
        if element.type in FURNITURE_LABELS or element.type == "Title":
            root.children.append(element)
            continue
        if element.type == "Section-header":
            current = Node(label="section", title=element.text)
            current.children.append(element)
            root.children.append(current)
            continue
        if current is not None:
            current.children.append(element)
        else:
            root.children.append(element)
    return root


@dataclass
class NaiveTextPartitioner:
    """Structure-blind text extraction baseline.

    Emits fixed-size text chunks in raw run order; tables lose their grid
    (cells interleave as bare strings), scanned text is lost entirely, and
    cross-page table headers are not repaired. Used by bench C6 to show
    why structure-aware partitioning matters.
    """

    chunk_chars: int = 1200

    def partition(self, source: "RawDocument | Document") -> Document:
        """Parse a raw document into a semantic Document tree."""
        if isinstance(source, Document):
            if source.binary is None:
                raise ValueError("partition() on a Document requires raw binary")
            raw = RawDocument.from_bytes(source.binary)
            base: Optional[Document] = source
        else:
            raw, base = source, None
        text = raw.all_text()
        elements = []
        for page_number, start in enumerate(range(0, max(len(text), 1), self.chunk_chars)):
            chunk = text[start : start + self.chunk_chars]
            if chunk.strip():
                elements.append(make_element("Text", text=chunk, page=None))
        document = base if base is not None else Document()
        document.doc_id = raw.doc_id
        document.binary = None
        document.root = Node(label="document", children=list(elements))
        document.properties["num_pages"] = raw.num_pages()
        return document
