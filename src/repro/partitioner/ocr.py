"""Simulated OCR for scanned regions.

"Many enterprise documents contain images of printed or handwritten
text, requiring an OCR step" (§4). Scanned regions in the raw format
carry rasterised text that plain extraction cannot reach; this module is
the EasyOCR stand-in that recovers it with a configurable character
error rate, so downstream accuracy benches can show the cost of scanned
inputs.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

from ..docmodel.raw import RawBox

_NEARBY_CHARS = {
    "o": "0", "0": "o", "l": "1", "1": "l", "i": "1", "s": "5", "5": "s",
    "e": "c", "c": "e", "a": "o", "n": "m", "m": "n", "b": "h", "h": "b",
    "g": "q", "t": "f", "f": "t", "r": "n", "u": "v", "v": "u",
}


@dataclass(frozen=True)
class OcrConfig:
    """``char_error_rate`` is the per-character corruption probability;
    ``drop_rate`` the per-character deletion probability."""

    name: str = "easyocr-sim"
    char_error_rate: float = 0.02
    drop_rate: float = 0.005


ACCURATE_OCR = OcrConfig(name="easyocr-sim", char_error_rate=0.02, drop_rate=0.005)
POOR_OCR = OcrConfig(name="legacy-ocr", char_error_rate=0.12, drop_rate=0.03)


class SimulatedOCR:
    """Recovers text from scanned regions with realistic recognition noise."""

    def __init__(self, config: OcrConfig = ACCURATE_OCR, seed: int = 0):
        self.config = config
        self.seed = seed

    def read_region(self, region: RawBox, region_key: str = "") -> str:
        """OCR a scanned region; non-scanned regions read back verbatim."""
        text = region.text()
        if not region.scanned:
            return text
        rng = random.Random(f"{self.seed}:{self.config.name}:{region_key}")
        return self.corrupt(text, rng)

    def corrupt(self, text: str, rng: random.Random) -> str:
        """Apply the configured character noise to ``text``."""
        output = []
        for ch in text:
            if ch.isalnum() and rng.random() < self.config.drop_rate:
                continue
            if ch.isalnum() and rng.random() < self.config.char_error_rate:
                substitute = _NEARBY_CHARS.get(ch.lower())
                if substitute is None:
                    substitute = rng.choice(string.ascii_lowercase)
                output.append(substitute.upper() if ch.isupper() else substitute)
            else:
                output.append(ch)
        return "".join(output)
