"""The Aryn Partitioner (paper §4): vision-based document segmentation,
table structure recovery, OCR, and the naive-extraction baseline.
"""

from .ocr import ACCURATE_OCR, POOR_OCR, OcrConfig, SimulatedOCR
from .partitioner import ArynPartitioner, NaiveTextPartitioner, build_section_tree
from .segmentation import (
    ARYN_DETECTOR,
    CLOUD_BASELINE_DETECTOR,
    Detection,
    DetectorConfig,
    SegmentationModel,
)
from .tables import (
    HIGH_FIDELITY_TABLE_MODEL,
    LOW_FIDELITY_TABLE_MODEL,
    TableModelConfig,
    TableStructureModel,
    extract_cell_text,
    merge_continuation_tables,
)

__all__ = [
    "ACCURATE_OCR",
    "ARYN_DETECTOR",
    "ArynPartitioner",
    "CLOUD_BASELINE_DETECTOR",
    "Detection",
    "DetectorConfig",
    "HIGH_FIDELITY_TABLE_MODEL",
    "LOW_FIDELITY_TABLE_MODEL",
    "NaiveTextPartitioner",
    "OcrConfig",
    "POOR_OCR",
    "SegmentationModel",
    "SimulatedOCR",
    "TableModelConfig",
    "TableStructureModel",
    "build_section_tree",
    "extract_cell_text",
    "merge_continuation_tables",
]
