"""Simulated document-layout detector.

The real Aryn Partitioner runs a Deformable-DETR model trained on
DocLayNet (§4). Offline we substitute a *calibrated error model*: the
detector observes each page's true layout regions (what a vision model
"sees") and produces noisy detections — missed regions, bounding-box
jitter, label confusion, confidence scores, and spurious false positives.
The noise parameters define an operating point on the mAP/mAR curve; two
presets are calibrated so the detection benchmark (E1) lands near the
paper's numbers: Aryn mAP 0.602 / mAR 0.743 versus a cloud-vendor
baseline at mAP 0.344 / mAR 0.466. The *evaluation* (COCO-style mAP) is
implemented for real in :mod:`repro.evaluation.detection`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..docmodel.bbox import BoundingBox
from ..docmodel.elements import ELEMENT_TYPES
from ..docmodel.raw import RawPage


@dataclass(frozen=True)
class Detection:
    """One predicted layout region."""

    label: str
    bbox: BoundingBox
    confidence: float


@dataclass(frozen=True)
class DetectorConfig:
    """Noise parameters defining a detector operating point.

    ``detect_prob``: chance a true region is detected at all (drives recall).
    ``jitter_frac``: bbox edge jitter as a fraction of the box extent
    (drives localization quality, i.e. AP at high IoU thresholds).
    ``label_confusion``: chance a detected region gets a wrong label.
    ``false_positives_per_page``: expected spurious detections per page
    (drives precision).
    ``confidence_correct`` / ``confidence_noise``: mean confidence for good
    detections and its spread.
    """

    name: str
    detect_prob: float = 0.95
    jitter_frac: float = 0.02
    label_confusion: float = 0.03
    false_positives_per_page: float = 0.3
    confidence_correct: float = 0.9
    confidence_noise: float = 0.08
    #: Confidence range for false positives. When the high end overlaps
    #: the correct-detection confidence, spurious boxes pollute the top
    #: of the ranking and depress AP without touching recall.
    fp_confidence_low: float = 0.3
    fp_confidence_high: float = 0.6
    #: Reference height (points) for size-aware misses: a region this tall
    #: (or shorter) carries the full miss probability; taller regions are
    #: proportionally harder to miss outright, matching how real detectors
    #: rarely drop a page-dominating table while still missing small
    #: captions and footnotes. 0 disables the scaling.
    miss_size_ref: float = 40.0
    #: Per-label detection-probability overrides (tables and pictures are
    #: harder than body text for weak models).
    hard_labels: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in (
            "detect_prob",
            "label_confusion",
            "confidence_correct",
            "fp_confidence_low",
            "fp_confidence_high",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.jitter_frac < 0 or self.false_positives_per_page < 0:
            raise ValueError("jitter_frac and false_positives_per_page must be >= 0")

    def detect_probability(self, label: str) -> float:
        """Detection probability for a label (with overrides)."""
        return self.hard_labels.get(label, self.detect_prob)


#: Operating point calibrated to the paper's Aryn Partitioner numbers
#: (target mAP 0.602 / mAR 0.743; this preset measures 0.596 / 0.743 on
#: the 40-document layout benchmark with seed 1).
ARYN_DETECTOR = DetectorConfig(
    name="aryn-deformable-detr",
    detect_prob=0.92,
    jitter_frac=0.033,
    label_confusion=0.05,
    false_positives_per_page=2.5,
    confidence_correct=0.85,
    confidence_noise=0.25,
    fp_confidence_low=0.6,
    fp_confidence_high=0.99,
    hard_labels={"Formula": 0.80, "Footnote": 0.85},
)

#: Operating point calibrated to the paper's "document API from a large
#: cloud vendor" comparison (target mAP 0.344 / mAR 0.466; this preset
#: measures 0.354 / 0.466 on the same benchmark).
CLOUD_BASELINE_DETECTOR = DetectorConfig(
    name="cloud-vendor-api",
    detect_prob=0.74,
    jitter_frac=0.052,
    label_confusion=0.12,
    false_positives_per_page=2.2,
    confidence_correct=0.70,
    confidence_noise=0.25,
    fp_confidence_low=0.4,
    fp_confidence_high=0.85,
    hard_labels={
        "Table": 0.60,
        "Picture": 0.60,
        "Formula": 0.50,
        "Footnote": 0.55,
        "Caption": 0.60,
    },
)

#: Labels a confused detector is likely to emit instead of the truth.
_CONFUSION_TARGETS: Dict[str, Tuple[str, ...]] = {
    "Text": ("List-item", "Caption", "Footnote"),
    "Title": ("Section-header", "Text"),
    "Section-header": ("Title", "Text"),
    "Table": ("Text", "Picture"),
    "Picture": ("Table", "Text"),
    "Caption": ("Text", "Footnote"),
    "List-item": ("Text",),
    "Page-header": ("Text", "Title"),
    "Page-footer": ("Text", "Footnote"),
    "Footnote": ("Text", "Caption"),
    "Formula": ("Text", "Picture"),
}


class SegmentationModel:
    """Produces noisy layout detections for raw pages.

    Deterministic given (config, seed, page content), so partitioning the
    same corpus twice yields identical DocSets.
    """

    def __init__(self, config: DetectorConfig = ARYN_DETECTOR, seed: int = 0):
        self.config = config
        self.seed = seed

    def detect(self, page: RawPage, page_key: str = "") -> List[Detection]:
        """Detections for one page, sorted by descending confidence."""
        rng = random.Random(f"{self.seed}:{self.config.name}:{page_key}")
        detections: List[Detection] = []
        for box in page.boxes:
            miss = 1.0 - self.config.detect_probability(box.label)
            if self.config.miss_size_ref > 0:
                miss *= min(1.0, self.config.miss_size_ref / max(box.bbox.height, 1.0))
            if rng.random() < miss:
                continue
            bbox = self._jitter(box.bbox, rng)
            label = box.label
            if rng.random() < self.config.label_confusion:
                label = rng.choice(_CONFUSION_TARGETS.get(label, ELEMENT_TYPES))
            confidence = _clamp(
                rng.gauss(self.config.confidence_correct, self.config.confidence_noise)
            )
            detections.append(Detection(label=label, bbox=bbox, confidence=confidence))
        detections.extend(self._false_positives(page, rng))
        detections.sort(key=lambda d: (-d.confidence, d.bbox.y1, d.bbox.x1))
        return detections

    def _jitter(self, bbox: BoundingBox, rng: random.Random) -> BoundingBox:
        fx = self.config.jitter_frac * max(bbox.width, 8.0)
        fy = self.config.jitter_frac * max(bbox.height, 8.0)
        x1 = bbox.x1 + rng.gauss(0.0, fx)
        y1 = bbox.y1 + rng.gauss(0.0, fy)
        x2 = bbox.x2 + rng.gauss(0.0, fx)
        y2 = bbox.y2 + rng.gauss(0.0, fy)
        if x2 <= x1:
            x1, x2 = bbox.x1, bbox.x2
        if y2 <= y1:
            y1, y2 = bbox.y1, bbox.y2
        return BoundingBox(x1, y1, x2, y2)

    def _false_positives(self, page: RawPage, rng: random.Random) -> List[Detection]:
        count = _poisson(self.config.false_positives_per_page, rng)
        detections = []
        for _ in range(count):
            width = rng.uniform(40.0, 200.0)
            height = rng.uniform(10.0, 60.0)
            x1 = rng.uniform(0.0, max(page.width - width, 1.0))
            y1 = rng.uniform(0.0, max(page.height - height, 1.0))
            detections.append(
                Detection(
                    label=rng.choice(ELEMENT_TYPES),
                    bbox=BoundingBox(x1, y1, x1 + width, y1 + height),
                    confidence=_clamp(
                        rng.uniform(
                            self.config.fp_confidence_low,
                            self.config.fp_confidence_high,
                        )
                    ),
                )
            )
        return detections


def _clamp(value: float, low: float = 0.05, high: float = 0.999) -> float:
    return max(low, min(high, value))


def _poisson(lam: float, rng: random.Random) -> int:
    """Small-lambda Poisson sample via inversion."""
    if lam <= 0.0:
        return 0
    import math

    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
