"""The process-wide metrics registry: counters, gauges, histograms.

Before this module existed, telemetry was fragmented: ``ReliableLLM``
kept ad-hoc integer counters, the scheduler kept a ``SchedulerStats``
dataclass, the executor kept ``NodeStats`` — three shapes, three
snapshot methods, and no way to answer "what did this process do?" in
one call. The registry is the single surface those components now also
publish into (their legacy ``metrics()``/``stats()`` methods remain as
compatibility shims over per-instance state).

Design rules
------------
* **Get-or-create**: ``registry.counter("llm.cache_hits")`` returns the
  same instrument every time; re-registering a name as a different kind
  raises. Instrument names are dotted (``subsystem.metric``), so the
  snapshot groups naturally by prefix.
* **Aggregate semantics**: instruments are shared across instances (two
  ``ReliableLLM`` clients both increment ``llm.cache_hits``), exactly
  like a Prometheus counter. Per-instance numbers stay available on the
  instances themselves.
* **Exact counts, sampled distributions**: counters and gauges are
  exact under concurrency; histograms keep exact count/sum/min/max and
  compute percentiles from a bounded reservoir of recent observations.
* **Consistent snapshots**: :meth:`MetricsRegistry.snapshot` holds the
  registration lock while reading, so a snapshot never sees a
  half-registered instrument and every read of a single instrument is
  atomic.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional


class Counter:
    """A monotonically increasing value (float increments allowed)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: "int | float" = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    def value(self) -> float:
        """Current cumulative value."""
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up and down (queue depth, pool size)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: "int | float") -> None:
        """Set the gauge to an absolute value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: "int | float" = 1) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """A distribution: exact count/sum/min/max, sampled percentiles.

    The percentile estimate comes from a bounded reservoir of the most
    recent ``max_samples`` observations (deterministic — no random
    sampling — so tests can assert on it).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", max_samples: int = 1024):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: Deque[float] = deque(maxlen=max_samples)

    def observe(self, value: "int | float") -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._samples.append(value)

    def value(self) -> Dict[str, float]:
        """Snapshot: count, sum, min, max, mean, p50/p90/p99."""
        with self._lock:
            count = self._count
            total = self._sum
            lo = self._min
            hi = self._max
            samples = sorted(self._samples)
        result: Dict[str, float] = {
            "count": count,
            "sum": round(total, 6),
            "min": round(lo, 6) if lo is not None else 0.0,
            "max": round(hi, 6) if hi is not None else 0.0,
            "mean": round(total / count, 6) if count else 0.0,
        }
        for percentile in (50, 90, 99):
            result[f"p{percentile}"] = round(_nearest_rank(samples, percentile), 6)
        return result

    def _reset(self) -> None:
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None
            self._samples.clear()


def _nearest_rank(sorted_samples: List[float], percentile: int) -> float:
    """Nearest-rank percentile over an already-sorted sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(1, -(-len(sorted_samples) * percentile // 100))  # ceil
    return sorted_samples[rank - 1]


class MetricsRegistry:
    """Named instruments, get-or-create, one consistent snapshot.

    Components accept a ``registry`` parameter defaulting to the
    process-global registry (:func:`get_registry`), so a test that wants
    isolation constructs its own and passes it down.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "Dict[str, Counter | Gauge | Histogram]" = {}

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the named counter."""
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the named gauge."""
        return self._get_or_create(name, Gauge, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        """Get or create the named histogram."""
        return self._get_or_create(name, Histogram, help)

    def _get_or_create(self, name: str, cls: type, help: str) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help=help)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} is already registered as "
                    f"{instrument.kind}, not {cls.kind}"
                )
            return instrument

    def names(self) -> List[str]:
        """Sorted names of all registered instruments."""
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """A consistent point-in-time read of every instrument.

        Counters and gauges map to their value; histograms map to their
        summary dict. ``prefix`` filters by name prefix.
        """
        with self._lock:
            instruments = [
                instrument
                for name, instrument in sorted(self._instruments.items())
                if name.startswith(prefix)
            ]
            return {
                instrument.name: instrument.value() for instrument in instruments
            }

    def reset(self) -> None:
        """Zero every instrument (keeps registrations)."""
        with self._lock:
            for instrument in self._instruments.values():
                instrument._reset()


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry components publish into by default."""
    return _GLOBAL_REGISTRY
