"""Hierarchical query tracing with cross-thread span propagation.

A :class:`Tracer` produces :class:`Span`\\ s with stable, sequential ids
(``s000001``) grouped into traces (``t0001``). The hierarchy for a Luna
query is::

    query                         (root — one per query)
    ├── plan                      (LLM planning)
    ├── optimize / codegen
    └── op[i]:<Operation>         (one per plan node)
        └── transform:<node>      (one per record, executor task)
            └── llm:<model>       (one per LLM request)

Span-propagation rules (the invariants instrumented code relies on):

* The *current* span lives in a :mod:`contextvars` ``ContextVar`` shared
  by every tracer in the process; ``start_span`` parents new spans to it
  unless an explicit parent is given.
* Crossing a thread pool requires carrying the submitter's context:
  the execution engine and ``ReliableLLM.complete_many`` submit tasks
  via ``contextvars.copy_context().run`` so a worker thread sees the
  submitting thread's current span (one Context copy per task — a
  single Context object cannot be entered concurrently).
* The scheduler's dispatch thread has no caller context by design: a
  batch serves requests from *many* queries. Request spans are created
  at submit time (under the submitter's context) and *linked* to the
  batch span via the ``batch_span`` attribute instead of being
  reparented; the batch span lives in its own trace.
* Spans are recorded at start (open spans are visible in snapshots) and
  immutable-by-convention after :meth:`Tracer.finish`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: The ambient span, shared process-wide so parent discovery works across
#: component boundaries regardless of which Tracer instance records.
_CURRENT_SPAN: "ContextVar[Optional[Span]]" = ContextVar(
    "repro_current_span", default=None
)

#: Sentinel meaning "parent from the ambient context var".
_AMBIENT = object()


@dataclass
class Span:
    """One timed operation in a trace."""

    span_id: str
    trace_id: str
    parent_id: Optional[str]
    name: str
    kind: str
    start_s: float
    end_s: Optional[float] = None
    status: str = "ok"
    error: Optional[str] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """Whether :meth:`Tracer.finish` has been called on this span."""
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set_attributes(self, **attributes: Any) -> None:
        """Merge attributes into the span."""
        self.attributes.update(attributes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-exportable view of the span."""
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_s": round(self.start_s, 6),
            "end_s": round(self.end_s, 6) if self.end_s is not None else None,
            "duration_s": round(self.duration_s, 6),
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """Creates, records and snapshots spans.

    Thread-safe. Ids are sequential under a lock, so a single-threaded
    run is fully deterministic and a concurrent run is stable enough to
    diff. ``max_spans`` bounds memory: past it, new spans are still
    created and returned (instrumented code never branches) but are not
    retained; ``dropped_spans`` counts them.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        max_spans: int = 200_000,
    ):
        self._clock = clock
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: Dict[str, Span] = {}
        self._traces: Dict[str, List[str]] = {}
        self._span_counter = 0
        self._trace_counter = 0
        self.dropped_spans = 0

    # ------------------------------------------------------------------
    # Creation / completion
    # ------------------------------------------------------------------

    @staticmethod
    def current() -> Optional[Span]:
        """The ambient span of the calling context (or None)."""
        return _CURRENT_SPAN.get()

    def start_span(
        self,
        name: str,
        kind: str = "internal",
        parent: "Span | None | object" = _AMBIENT,
        **attributes: Any,
    ) -> Span:
        """Create (and record) a new span.

        ``parent`` defaults to the ambient span; pass ``None`` to force a
        new root (which starts a new trace).
        """
        if parent is _AMBIENT:
            parent = _CURRENT_SPAN.get()
        now = self._clock()
        with self._lock:
            self._span_counter += 1
            span_id = f"s{self._span_counter:06d}"
            if parent is not None:
                trace_id = parent.trace_id
                parent_id = parent.span_id
            else:
                self._trace_counter += 1
                trace_id = f"t{self._trace_counter:04d}"
                parent_id = None
            span = Span(
                span_id=span_id,
                trace_id=trace_id,
                parent_id=parent_id,
                name=name,
                kind=kind,
                start_s=now,
                attributes=dict(attributes),
            )
            if len(self._spans) >= self.max_spans:
                self.dropped_spans += 1
            else:
                self._spans[span_id] = span
                self._traces.setdefault(trace_id, []).append(span_id)
        return span

    def finish(
        self, span: Span, status: str = "ok", error: Optional[str] = None
    ) -> Span:
        """Close the span (idempotent — the first finish wins)."""
        if span.end_s is None:
            span.end_s = self._clock()
            span.status = status
            span.error = error
        return span

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = "internal",
        parent: "Span | None | object" = _AMBIENT,
        **attributes: Any,
    ) -> Iterator[Span]:
        """Context manager: start a span, make it ambient, finish on exit.

        An escaping exception marks the span ``error`` and re-raises.
        """
        span = self.start_span(name, kind=kind, parent=parent, **attributes)
        token = _CURRENT_SPAN.set(span)
        try:
            yield span
        except BaseException as exc:
            self.finish(span, status="error", error=f"{type(exc).__name__}: {exc}")
            raise
        else:
            self.finish(span)
        finally:
            _CURRENT_SPAN.reset(token)

    @contextmanager
    def attach(self, span: Optional[Span]) -> Iterator[Optional[Span]]:
        """Make an existing span ambient without owning its lifetime.

        Used to re-establish a parent inside a worker thread or to nest
        work under the scheduler's batch span.
        """
        token = _CURRENT_SPAN.set(span)
        try:
            yield span
        finally:
            _CURRENT_SPAN.reset(token)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def get(self, span_id: str) -> Optional[Span]:
        """The retained span with this id, if any."""
        with self._lock:
            return self._spans.get(span_id)

    def spans(self) -> List[Span]:
        """Every retained span, in creation order."""
        with self._lock:
            return [self._spans[sid] for sid in sorted(self._spans)]

    def trace_ids(self) -> List[str]:
        """All trace ids, in creation order."""
        with self._lock:
            return sorted(self._traces)

    def trace_spans(self, trace_id: str) -> List[Span]:
        """The spans of one trace, in creation order."""
        with self._lock:
            return [self._spans[sid] for sid in self._traces.get(trace_id, [])]

    def last_trace(self, kind: Optional[str] = None) -> Optional[str]:
        """The most recent trace id (optionally: whose root has ``kind``)."""
        with self._lock:
            for trace_id in sorted(self._traces, reverse=True):
                if kind is None:
                    return trace_id
                root_id = self._traces[trace_id][0]
                if self._spans[root_id].kind == kind:
                    return trace_id
        return None

    def reset(self) -> None:
        """Drop every retained span and trace (counters keep advancing,
        so ids stay unique across the tracer's lifetime)."""
        with self._lock:
            self._spans.clear()
            self._traces.clear()
            self.dropped_spans = 0
