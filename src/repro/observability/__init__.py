"""repro.observability — unified tracing, metrics and cost accounting.

The paper's explainability tenet ("users must be able to inspect what
the system did and what it cost") and the ROADMAP's production north
star both demand one telemetry surface. This package provides it:

* :class:`Tracer` / :class:`Span` — hierarchical query traces
  (query → plan → operator → transform → llm_request) with stable ids,
  propagated across thread pools via :mod:`contextvars` and *linked*
  (not reparented) across the request scheduler's batches.
* :class:`MetricsRegistry` — process-wide counters, gauges and
  histograms (with percentile snapshots) that the LLM reliability
  layer, the request scheduler, the execution engine, the partitioner
  and the fault injector all publish into. Their legacy ``metrics()``
  methods remain as per-instance compatibility shims.
* :class:`CostAccount` — a per-query rollup of simulated tokens,
  dollars, retries and cache/dedup savings per operator, attached to
  ``LunaResult.trace`` and derived entirely from spans.
* Exporters — JSON trace documents and the ``python -m repro trace``
  tree renderer.

Invariants
----------
* **Span propagation**: the current span is carried in a shared
  ``ContextVar``; thread pools must submit tasks through
  ``contextvars.copy_context().run`` (one copy per task). The scheduler
  links member request spans to their batch span by attribute, never by
  parentage, because one batch serves many queries.
* **Conservative cost accounting**: cache hits and dedup-shared
  requests count their tokens at zero simulated dollars, so token
  totals never understate work and ``saved_usd`` is reportable.
* **Aggregate metrics**: registry instruments are shared across
  component instances (Prometheus semantics); per-instance numbers stay
  on the instances.
"""

from .cost import CostAccount, OperatorCost
from .export import (
    TRACE_EXPORT_VERSION,
    render_trace_tree,
    trace_to_dict,
    write_trace_json,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .tracing import Span, Tracer

__all__ = [
    "CostAccount",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OperatorCost",
    "Span",
    "TRACE_EXPORT_VERSION",
    "Tracer",
    "get_registry",
    "render_trace_tree",
    "trace_to_dict",
    "write_trace_json",
]
