"""Trace exporters: JSON files and the human-readable span tree.

Two consumers, two formats. Machines get a stable JSON document
(``trace_to_dict`` / ``write_trace_json``) with every span plus the
query's :class:`~repro.observability.cost.CostAccount`; humans get an
indented tree (``render_trace_tree``) where each LLM request line shows
its tokens, dollars, cache/dedup provenance and scheduler-batch link —
the "show what each operator did and what it cost" view the paper's
explainability tenet asks for.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .cost import CostAccount
from .tracing import Span

#: Schema version stamped into every JSON export.
TRACE_EXPORT_VERSION = 1


def trace_to_dict(
    spans: List[Span], cost: Optional[CostAccount] = None
) -> Dict[str, Any]:
    """A JSON-serializable document for one trace."""
    if cost is None:
        cost = CostAccount.from_spans(spans)
    return {
        "version": TRACE_EXPORT_VERSION,
        "trace_id": cost.trace_id or (spans[0].trace_id if spans else ""),
        "spans": [span.to_dict() for span in spans],
        "cost": cost.as_dict(),
    }


def write_trace_json(
    path: "str | Path", spans: List[Span], cost: Optional[CostAccount] = None
) -> Path:
    """Write the trace document to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(trace_to_dict(spans, cost), indent=2, default=str),
        encoding="utf-8",
    )
    return path


# ----------------------------------------------------------------------
# Human-readable tree
# ----------------------------------------------------------------------


def render_trace_tree(spans: List[Span], max_spans: int = 400) -> str:
    """Render one trace's spans as an indented tree.

    Children are ordered by span id (creation order). Past ``max_spans``
    lines the tree is truncated with a summary line, so a 10k-record ETL
    trace cannot flood a terminal.
    """
    if not spans:
        return "(empty trace)"
    by_id = {span.span_id: span for span in spans}
    children: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: s.span_id)

    lines: List[str] = []

    def walk(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        if len(lines) >= max_spans:
            return
        if is_root:
            lines.append(_describe(span))
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + _describe(span))
            child_prefix = prefix + ("   " if is_last else "│  ")
        kids = children.get(span.span_id, [])
        for position, child in enumerate(kids):
            walk(child, child_prefix, position == len(kids) - 1, False)

    roots = children.get(None, [])
    for position, root in enumerate(roots):
        walk(root, "", position == len(roots) - 1, True)
    total = len(spans)
    if len(lines) >= max_spans and total > max_spans:
        lines.append(f"... ({total - max_spans} more spans truncated)")
    return "\n".join(lines)


def _describe(span: Span) -> str:
    """One line for one span, formatted by kind."""
    attrs = span.attributes
    timing = f"{span.duration_s:.3f}s" if span.finished else "open"
    if span.kind == "llm_request":
        tokens = (
            f"{attrs.get('input_tokens', 0)}→{attrs.get('output_tokens', 0)} tok"
        )
        cost = f"${float(attrs.get('cost_usd', 0.0) or 0.0):.4f}"
        parts = [f"{span.name} [{span.span_id}]", tokens, cost]
        if attrs.get("cached"):
            parts.append("cached")
        if attrs.get("dedup"):
            parts.append(f"dedup:{attrs['dedup']}")
        if attrs.get("batch_span"):
            parts.append(f"batch={attrs['batch_span']}")
        if attrs.get("retries"):
            parts.append(f"retries={attrs['retries']}")
        line = " ".join(parts)
    elif span.kind == "batch":
        line = (
            f"{span.name} [{span.span_id}] size={attrs.get('size', '?')} "
            f"({timing})"
        )
    elif span.kind in ("operator", "transform"):
        extra = ""
        if "records_in" in attrs or "records_out" in attrs:
            extra = f" in={attrs.get('records_in', 0)} out={attrs.get('records_out', 0)}"
        line = f"{span.name} ({timing}){extra}"
    elif span.kind == "query":
        question = attrs.get("question")
        suffix = f" {question!r}" if question else ""
        line = f"{span.name}{suffix} ({timing})"
    else:
        line = f"{span.name} ({timing})"
    if span.status == "error":
        line += f" [ERROR: {span.error}]"
    return line
