"""Per-query cost accounting rolled up from trace spans.

ZenDB and ScaleDoc both report per-operator cost/accuracy accounting as
the basis for optimization decisions; Luna's optimizer needs the same
ledger. A :class:`CostAccount` is computed from one query's span tree:
every ``llm_request`` span is attributed to its nearest ``operator`` (or
``plan``) ancestor, and its token/dollar attributes are accumulated.

Accounting is **conservative**: cache hits and dedup-shared requests
count their tokens (the prompt was still constructed and the answer
still consumed) at **zero simulated dollars** — so cache/dedup savings
are directly reportable as ``saved_usd``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .tracing import Span


@dataclass
class OperatorCost:
    """Cost rollup for one plan operator (or pseudo-operator)."""

    operator: str
    llm_calls: int = 0
    cached_calls: int = 0
    dedup_hits: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    cost_usd: float = 0.0
    #: Dollars *not* spent because the response came from the cache or a
    #: dedup-shared in-flight call.
    saved_usd: float = 0.0
    retries: int = 0
    wall_s: float = 0.0

    @property
    def total_tokens(self) -> int:
        """Input plus output tokens."""
        return self.input_tokens + self.output_tokens

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict view (stable keys)."""
        return {
            "operator": self.operator,
            "llm_calls": self.llm_calls,
            "cached_calls": self.cached_calls,
            "dedup_hits": self.dedup_hits,
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
            "cost_usd": round(self.cost_usd, 6),
            "saved_usd": round(self.saved_usd, 6),
            "retries": self.retries,
            "wall_s": round(self.wall_s, 6),
        }


@dataclass
class CostAccount:
    """One query's complete cost ledger, keyed by operator."""

    trace_id: str = ""
    operators: Dict[str, OperatorCost] = field(default_factory=dict)
    wall_clock_s: float = 0.0

    # ------------------------------------------------------------------

    @property
    def llm_calls(self) -> int:
        """LLM requests issued by the query (incl. cached/deduped)."""
        return sum(op.llm_calls for op in self.operators.values())

    @property
    def cached_calls(self) -> int:
        """Requests served from the response cache."""
        return sum(op.cached_calls for op in self.operators.values())

    @property
    def dedup_hits(self) -> int:
        """Requests that shared another request's in-flight upstream call."""
        return sum(op.dedup_hits for op in self.operators.values())

    @property
    def input_tokens(self) -> int:
        """Prompt tokens across all requests."""
        return sum(op.input_tokens for op in self.operators.values())

    @property
    def output_tokens(self) -> int:
        """Completion tokens across all requests."""
        return sum(op.output_tokens for op in self.operators.values())

    @property
    def total_tokens(self) -> int:
        """Input plus output tokens."""
        return self.input_tokens + self.output_tokens

    @property
    def cost_usd(self) -> float:
        """Simulated dollars actually spent."""
        return sum(op.cost_usd for op in self.operators.values())

    @property
    def saved_usd(self) -> float:
        """Simulated dollars avoided via cache hits and dedup."""
        return sum(op.saved_usd for op in self.operators.values())

    @property
    def retries(self) -> int:
        """Transient-failure retries burned by the query's requests."""
        return sum(op.retries for op in self.operators.values())

    def operator(self, name: str) -> OperatorCost:
        """Rollup record for one operator (created on first access)."""
        record = self.operators.get(name)
        if record is None:
            record = OperatorCost(operator=name)
            self.operators[name] = record
        return record

    def merge(self, other: "CostAccount") -> "CostAccount":
        """Accumulate another account's rollups into this one.

        The serving layer keeps one long-lived account per tenant and
        merges every served query's account into it, so operator names
        aggregate across queries (all ``op[0]:Count`` spend lands in one
        row). Returns self for chaining.
        """
        for name, op in other.operators.items():
            record = self.operator(name)
            record.llm_calls += op.llm_calls
            record.cached_calls += op.cached_calls
            record.dedup_hits += op.dedup_hits
            record.input_tokens += op.input_tokens
            record.output_tokens += op.output_tokens
            record.cost_usd += op.cost_usd
            record.saved_usd += op.saved_usd
            record.retries += op.retries
            record.wall_s += op.wall_s
        self.wall_clock_s += other.wall_clock_s
        return self

    def record_saving(self, operator: str, saved_usd: float) -> None:
        """Book dollars *not* spent (a serving-cache hit) to an operator."""
        self.operator(operator).saved_usd += saved_usd

    def as_dict(self) -> Dict[str, Any]:
        """JSON-exportable view (totals plus per-operator table)."""
        return {
            "trace_id": self.trace_id,
            "totals": {
                "llm_calls": self.llm_calls,
                "cached_calls": self.cached_calls,
                "dedup_hits": self.dedup_hits,
                "input_tokens": self.input_tokens,
                "output_tokens": self.output_tokens,
                "cost_usd": round(self.cost_usd, 6),
                "saved_usd": round(self.saved_usd, 6),
                "retries": self.retries,
                "wall_clock_s": round(self.wall_clock_s, 6),
            },
            "operators": [
                self.operators[name].as_dict() for name in sorted(self.operators)
            ],
        }

    def render(self) -> str:
        """Human-readable per-operator cost table."""
        header = (
            f"{'operator':<28} {'calls':>5} {'cached':>6} {'dedup':>5} "
            f"{'tokens':>8} {'cost':>9} {'saved':>9}"
        )
        lines = [header, "-" * len(header)]
        for name in sorted(self.operators):
            op = self.operators[name]
            lines.append(
                f"{name:<28} {op.llm_calls:>5} {op.cached_calls:>6} "
                f"{op.dedup_hits:>5} {op.total_tokens:>8} "
                f"${op.cost_usd:>8.4f} ${op.saved_usd:>8.4f}"
            )
        lines.append(
            f"{'TOTAL':<28} {self.llm_calls:>5} {self.cached_calls:>6} "
            f"{self.dedup_hits:>5} {self.total_tokens:>8} "
            f"${self.cost_usd:>8.4f} ${self.saved_usd:>8.4f}"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------

    @classmethod
    def from_spans(cls, spans: List[Span]) -> "CostAccount":
        """Roll one trace's spans up into an account.

        Each ``llm_request`` span is attributed to its nearest ancestor
        of kind ``operator`` (falling back to ``plan``, then to the
        pseudo-operator ``(query)``).
        """
        account = cls()
        by_id: Dict[str, Span] = {span.span_id: span for span in spans}
        for span in spans:
            if span.parent_id is None and not account.trace_id:
                account.trace_id = span.trace_id
                account.wall_clock_s = span.duration_s
            if span.kind in ("operator", "transform"):
                owner = _owning_operator(span, by_id)
                # A transform nested under a Luna operator is already
                # covered by the operator's wall time; only self-owned
                # spans contribute theirs.
                if owner == _operator_name(span):
                    account.operator(owner).wall_s += span.duration_s
            if span.kind != "llm_request":
                continue
            owner = _owning_operator(span, by_id)
            record = account.operator(owner)
            attrs = span.attributes
            record.llm_calls += 1
            record.input_tokens += int(attrs.get("input_tokens", 0) or 0)
            record.output_tokens += int(attrs.get("output_tokens", 0) or 0)
            record.cost_usd += float(attrs.get("cost_usd", 0.0) or 0.0)
            record.saved_usd += float(attrs.get("saved_usd", 0.0) or 0.0)
            record.retries += int(attrs.get("retries", 0) or 0)
            if attrs.get("cached"):
                record.cached_calls += 1
            if attrs.get("dedup"):
                record.dedup_hits += 1
        return account


def _operator_name(span: Span) -> str:
    # The span name (e.g. ``op[2]:LlmFilter``) is unique per plan node,
    # so two filters in one plan roll up separately.
    return span.name


def _owning_operator(span: Span, by_id: Dict[str, Span]) -> str:
    """Walk ancestors to the nearest owning span's name.

    Preference order: nearest ``operator`` (Luna plan node), else nearest
    ``transform`` (DocSet dataflow node), else the enclosing ``plan``,
    else the pseudo-operator ``(query)``.
    """
    transform: Optional[str] = None
    plan: Optional[str] = None
    seen = set()
    current: Optional[Span] = span
    while current is not None and current.span_id not in seen:
        seen.add(current.span_id)
        if current.kind == "operator":
            return _operator_name(current)
        if current.kind == "transform" and transform is None:
            transform = current.name
        if current.kind == "plan" and plan is None:
            plan = current.name
        parent_id = current.parent_id
        current = by_id.get(parent_id) if parent_id else None
    return transform or plan or "(query)"
