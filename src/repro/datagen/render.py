"""Page layout engine for synthetic raw documents.

Turns logical content blocks (titles, paragraphs, label lines, tables,
images) into positioned :class:`~repro.docmodel.raw.RawBox` regions on
US-Letter pages, flowing across page breaks. Tables that do not fit are
split across pages with the header only on the first fragment — the
paper's motivating hard case for naive text extraction (§2).

The geometry is simple but honest: every text line becomes a positioned
run, every table cell gets its own bounding box, and page headers/footers
are stamped on every page, so the partitioner's detector and the
table-cell/text intersection code operate on realistic inputs.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..docmodel.bbox import BoundingBox
from ..docmodel.raw import PAGE_HEIGHT, PAGE_WIDTH, RawBox, RawDocument, RawPage, RawTextRun
from ..docmodel.table import Table, TableCell

#: Typography constants (points).
MARGIN = 54.0
LINE_HEIGHT = 14.0
CHAR_WIDTH = 5.4
TITLE_LINE_HEIGHT = 22.0
HEADER_ZONE = 36.0
FOOTER_ZONE = 36.0
BLOCK_GAP = 12.0
CELL_PAD = 3.0
ROW_HEIGHT = 18.0

_BODY_WIDTH = PAGE_WIDTH - 2 * MARGIN
_CHARS_PER_LINE = int(_BODY_WIDTH / CHAR_WIDTH)


def wrap_text(text: str, width_chars: int = _CHARS_PER_LINE) -> List[str]:
    """Wrap prose into display lines, preserving explicit newlines."""
    lines: List[str] = []
    for paragraph in text.split("\n"):
        if not paragraph.strip():
            continue
        lines.extend(textwrap.wrap(paragraph, width=width_chars) or [""])
    return lines


class PageLayouter:
    """Flows content blocks down the page, breaking to new pages as needed."""

    def __init__(self, header_text: str = "", footer_prefix: str = "Page"):
        self.header_text = header_text
        self.footer_prefix = footer_prefix
        self.pages: List[RawPage] = []
        self._y = 0.0
        self._new_page()

    # ------------------------------------------------------------------
    # Page management
    # ------------------------------------------------------------------

    def _new_page(self) -> None:
        page = RawPage()
        self.pages.append(page)
        number = len(self.pages)
        if self.header_text:
            page.boxes.append(
                _text_box(
                    "Page-header",
                    [self.header_text],
                    x=MARGIN,
                    y=HEADER_ZONE - LINE_HEIGHT,
                    line_height=LINE_HEIGHT,
                )
            )
        page.boxes.append(
            _text_box(
                "Page-footer",
                [f"{self.footer_prefix} {number}"],
                x=PAGE_WIDTH - MARGIN - 60.0,
                y=PAGE_HEIGHT - FOOTER_ZONE + LINE_HEIGHT,
                line_height=LINE_HEIGHT,
            )
        )
        self._y = HEADER_ZONE + BLOCK_GAP

    @property
    def _page(self) -> RawPage:
        return self.pages[-1]

    def _remaining(self) -> float:
        return PAGE_HEIGHT - FOOTER_ZONE - self._y

    def _ensure_space(self, needed: float) -> None:
        if self._remaining() < needed:
            self._new_page()

    def _advance(self, height: float) -> None:
        self._y += height + BLOCK_GAP

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------

    def add_text_block(self, label: str, text: str, scanned: bool = False) -> None:
        """A flowed text region; long blocks continue on following pages."""
        lines = wrap_text(text)
        line_height = TITLE_LINE_HEIGHT if label == "Title" else LINE_HEIGHT
        while lines:
            self._ensure_space(line_height)
            fit = max(1, int(self._remaining() // line_height))
            chunk, lines = lines[:fit], lines[fit:]
            box = _text_box(label, chunk, x=MARGIN, y=self._y, line_height=line_height,
                            scanned=scanned)
            self._page.boxes.append(box)
            self._advance(box.bbox.height)

    def add_title(self, text: str) -> None:
        """A title block."""
        self.add_text_block("Title", text)

    def add_section_header(self, text: str) -> None:
        """A section-header block."""
        self.add_text_block("Section-header", text)

    def add_paragraphs(self, paragraphs: Sequence[str], scanned: bool = False) -> None:
        """One text block per paragraph."""
        for paragraph in paragraphs:
            self.add_text_block("Text", paragraph, scanned=scanned)

    def add_list(self, items: Sequence[str]) -> None:
        """One list-item block per item."""
        for item in items:
            self.add_text_block("List-item", f"- {item}")

    def add_label_lines(self, pairs: Sequence[Tuple[str, str]]) -> None:
        """A metadata block of 'Label: value' lines."""
        text = "\n".join(f"{label}: {value}" for label, value in pairs)
        self.add_text_block("Text", text)

    def add_image(
        self,
        description: str,
        width_px: int = 640,
        height_px: int = 480,
        caption: Optional[str] = None,
        contains_text: Optional[str] = None,
    ) -> None:
        """A picture region (with optional caption and rasterised text)."""
        display_height = 140.0
        self._ensure_space(display_height + (LINE_HEIGHT if caption else 0.0))
        bbox = BoundingBox(MARGIN, self._y, MARGIN + 260.0, self._y + display_height)
        runs = []
        if contains_text:
            # Rasterised text inside the image: reachable only via OCR.
            runs = [
                RawTextRun(text=line, bbox=bbox)
                for line in wrap_text(contains_text, width_chars=40)
            ]
        self._page.boxes.append(
            RawBox(
                label="Picture",
                bbox=bbox,
                runs=runs,
                scanned=bool(contains_text),
                image_format="png",
                image_width_px=width_px,
                image_height_px=height_px,
                image_description=description,
            )
        )
        self._advance(display_height)
        if caption:
            self.add_text_block("Caption", caption)

    def add_table(self, rows: Sequence[Sequence[str]], caption: Optional[str] = None,
                  header: bool = True) -> None:
        """A table region; splits across pages when it does not fit.

        Each fragment is its own Table ground truth; the continuation
        fragment has ``continues_previous=True`` and no header row — the
        cross-page case the partitioner must repair.
        """
        if caption:
            self.add_text_block("Caption", caption)
        remaining_rows = [list(map(str, row)) for row in rows]
        first_fragment = True
        while remaining_rows:
            self._ensure_space(ROW_HEIGHT * 2)
            fit = max(1, int(self._remaining() // ROW_HEIGHT))
            # Orphan control, as real typesetting does: never leave a
            # stub of fewer than 4 rows at the bottom of a page when the
            # table could start cleanly on the next one.
            if (
                first_fragment
                and fit < min(4, len(remaining_rows))
            ):
                self._new_page()
                fit = max(1, int(self._remaining() // ROW_HEIGHT))
            chunk, remaining_rows = remaining_rows[:fit], remaining_rows[fit:]
            self._emit_table_fragment(
                chunk,
                header=header and first_fragment,
                continues=not first_fragment,
            )
            first_fragment = False

    def _emit_table_fragment(
        self, rows: List[List[str]], header: bool, continues: bool
    ) -> None:
        n_cols = max(len(row) for row in rows)
        col_width = _BODY_WIDTH / n_cols
        cells: List[TableCell] = []
        runs: List[RawTextRun] = []
        top = self._y
        for r, row in enumerate(rows):
            for c in range(n_cols):
                text = row[c] if c < len(row) else ""
                cell_bbox = BoundingBox(
                    MARGIN + c * col_width,
                    top + r * ROW_HEIGHT,
                    MARGIN + (c + 1) * col_width,
                    top + (r + 1) * ROW_HEIGHT,
                )
                cells.append(
                    TableCell(
                        row=r,
                        col=c,
                        text=text,
                        is_header=header and r == 0,
                        bbox=cell_bbox,
                    )
                )
                if text:
                    run_bbox = BoundingBox(
                        cell_bbox.x1 + CELL_PAD,
                        cell_bbox.y1 + CELL_PAD,
                        min(cell_bbox.x2 - CELL_PAD, cell_bbox.x1 + CELL_PAD + len(text) * CHAR_WIDTH),
                        cell_bbox.y2 - CELL_PAD,
                    )
                    runs.append(RawTextRun(text=text, bbox=run_bbox))
        table = Table(cells=cells)
        table.validate()
        height = len(rows) * ROW_HEIGHT
        bbox = BoundingBox(MARGIN, top, MARGIN + _BODY_WIDTH, top + height)
        self._page.boxes.append(
            RawBox(
                label="Table",
                bbox=bbox,
                runs=runs,
                table=table,
                continues_previous=continues,
            )
        )
        self._advance(height)

    def add_footnote(self, text: str) -> None:
        """A footnote block."""
        self.add_text_block("Footnote", text)

    def add_formula(self, text: str) -> None:
        """A formula block."""
        self.add_text_block("Formula", text)

    # ------------------------------------------------------------------

    def build(self, doc_id: str, ground_truth: Optional[dict] = None) -> RawDocument:
        """Finalise and return the assembled raw document."""
        return RawDocument(
            doc_id=doc_id,
            pages=self.pages,
            ground_truth=dict(ground_truth or {}),
        )


def _text_box(
    label: str,
    lines: List[str],
    x: float,
    y: float,
    line_height: float,
    scanned: bool = False,
) -> RawBox:
    runs = []
    max_width = 1.0
    for i, line in enumerate(lines):
        width = max(len(line) * CHAR_WIDTH, 1.0)
        max_width = max(max_width, width)
        runs.append(
            RawTextRun(
                text=line,
                bbox=BoundingBox(x, y + i * line_height, x + width, y + (i + 1) * line_height),
            )
        )
    bbox = BoundingBox(x, y, x + max_width, y + max(len(lines), 1) * line_height)
    return RawBox(label=label, bbox=bbox, runs=runs, scanned=scanned)
