"""The Luna micro-benchmark question suite (paper §6, experiment E2).

"To evaluate Luna, we created a micro-benchmark using questions from
financial customers on an earnings report dataset, and building our own
questions for the NTSB reports. The questions require multiple semantic
filters and aggregations to answer correctly."

This module builds the 18-question suite — 10 NTSB + 8 earnings — with
ground-truth answers computed directly from the generator records (never
from rendered text). A couple of questions are deliberately ambiguous,
mirroring the paper's observation that "the intention of certain
ambiguous questions was misinterpreted by the query planner".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from .earnings import CompanyReport
from .ntsb import IncidentRecord


@dataclass
class BenchmarkQuestion:
    """One suite entry: the question, where it runs, and how to grade it."""

    qid: str
    question: str
    index: str
    kind: str  # count | percentage | numeric | categorical | list | summary
    expected: Any
    grade_kwargs: Dict[str, Any] = field(default_factory=dict)
    ambiguous: bool = False


def _most_common(counter: Counter) -> List[str]:
    """All values tied for the maximum count (any is acceptable)."""
    if not counter:
        return []
    top = max(counter.values())
    return [value for value, count in counter.items() if count == top]


def build_ntsb_questions(records: Sequence[IncidentRecord]) -> List[BenchmarkQuestion]:
    """The 10 NTSB questions with ground truth from the records."""
    env = [r for r in records if r.cause_category == "environmental"]
    wind = [r for r in records if r.cause_detail == "wind"]
    icing = [r for r in records if r.cause_detail == "icing"]
    mech = [r for r in records if r.cause_category == "mechanical"]
    birds = [r for r in records if r.cause_detail == "bird_strike"]
    questions = [
        BenchmarkQuestion(
            qid="ntsb-01",
            question="How many incidents were caused by icing?",
            index="ntsb",
            kind="count",
            expected=len(icing),
        ),
        BenchmarkQuestion(
            qid="ntsb-02",
            question="What percent of environmentally caused incidents were due to wind?",
            index="ntsb",
            kind="percentage",
            expected=100.0 * len(wind) / max(len(env), 1),
            grade_kwargs={"correct_rel_tol": 0.05, "plausible_rel_tol": 0.25,
                          "correct_abs_tol": 2.0},
        ),
        BenchmarkQuestion(
            qid="ntsb-03",
            question="Which state had the most incidents caused by wind?",
            index="ntsb",
            kind="categorical",
            expected=_most_common(Counter(r.state for r in wind)),
        ),
        BenchmarkQuestion(
            qid="ntsb-04",
            question="How many incidents in 2022 were weather related?",
            index="ntsb",
            kind="count",
            expected=sum(1 for r in records if r.year == 2022 and r.weather_related),
        ),
        BenchmarkQuestion(
            qid="ntsb-05",
            question="What percent of incidents were caused by mechanical failure?",
            index="ntsb",
            kind="percentage",
            expected=100.0 * len(mech) / max(len(records), 1),
            grade_kwargs={"correct_rel_tol": 0.05, "plausible_rel_tol": 0.25,
                          "correct_abs_tol": 2.0},
        ),
        BenchmarkQuestion(
            qid="ntsb-06",
            question="Summarize the incidents involving bird strikes.",
            index="ntsb",
            kind="summary",
            expected=[r.state for r in birds][:5] + ["bird"],
            grade_kwargs={"correct_coverage": 0.5, "plausible_coverage": 0.2},
        ),
        BenchmarkQuestion(
            qid="ntsb-07",
            question="Which state had the most incidents in 2023?",
            index="ntsb",
            kind="categorical",
            expected=_most_common(Counter(r.state for r in records if r.year == 2023)),
        ),
        BenchmarkQuestion(
            qid="ntsb-08",
            question="How many incidents in Texas were caused by engine failure?",
            index="ntsb",
            kind="count",
            expected=sum(
                1
                for r in records
                if r.state == "TX" and r.cause_detail == "engine_failure"
            ),
        ),
        BenchmarkQuestion(
            qid="ntsb-09",
            # Deliberately ambiguous: "serious incidents" could mean
            # serious injuries (intended) or substantial damage.
            question="How many serious incidents happened in Alaska?",
            index="ntsb",
            kind="count",
            expected=sum(
                1 for r in records if r.state == "AK" and r.injuries_serious > 0
            ),
            ambiguous=True,
        ),
        BenchmarkQuestion(
            qid="ntsb-10",
            question="What was the total fatal injuries across incidents in 2023?",
            index="ntsb",
            kind="numeric",
            expected=float(sum(r.injuries_fatal for r in records if r.year == 2023)),
            grade_kwargs={"correct_abs_tol": 0.5, "plausible_rel_tol": 0.3},
        ),
    ]
    return questions


def build_earnings_questions(records: Sequence[CompanyReport]) -> List[BenchmarkQuestion]:
    """The 8 earnings questions with ground truth from the records."""
    ai = [r for r in records if r.sector == "AI"]
    ceo = [r for r in records if r.ceo_changed]
    questions = [
        BenchmarkQuestion(
            qid="earn-01",
            question="How many companies raised guidance?",
            index="earnings",
            kind="count",
            expected=sum(1 for r in records if r.guidance == "raised"),
        ),
        BenchmarkQuestion(
            qid="earn-02",
            question="What percent of companies in the AI sector had positive sentiment?",
            index="earnings",
            kind="percentage",
            expected=100.0
            * sum(1 for r in ai if r.sentiment == "positive")
            / max(len(ai), 1),
            grade_kwargs={"correct_rel_tol": 0.05, "plausible_rel_tol": 0.25,
                          "correct_abs_tol": 2.0},
        ),
        BenchmarkQuestion(
            qid="earn-03",
            question="What was the average revenue growth of companies whose CEO recently changed?",
            index="earnings",
            kind="numeric",
            expected=(
                sum(r.revenue_growth_pct for r in ceo) / len(ceo) if ceo else 0.0
            ),
            grade_kwargs={"correct_rel_tol": 0.05, "plausible_rel_tol": 0.3,
                          "correct_abs_tol": 1.0},
        ),
        BenchmarkQuestion(
            qid="earn-04",
            question="How many companies in the Cloud sector lowered guidance?",
            index="earnings",
            kind="count",
            expected=sum(
                1 for r in records if r.sector == "Cloud" and r.guidance == "lowered"
            ),
        ),
        BenchmarkQuestion(
            qid="earn-05",
            question="What was the total revenue of companies in the Healthcare sector?",
            index="earnings",
            kind="numeric",
            expected=float(
                sum(r.revenue_musd for r in records if r.sector == "Healthcare")
            ),
            grade_kwargs={"correct_rel_tol": 0.03, "plausible_rel_tol": 0.25},
        ),
        BenchmarkQuestion(
            qid="earn-06",
            question="Which sector had the most companies with negative sentiment?",
            index="earnings",
            kind="categorical",
            expected=_most_common(
                Counter(r.sector for r in records if r.sentiment == "negative")
            ),
        ),
        BenchmarkQuestion(
            qid="earn-07",
            question="List the companies whose CEO recently changed.",
            index="earnings",
            kind="list",
            expected=[r.company for r in ceo],
            grade_kwargs={"correct_jaccard": 0.75, "plausible_jaccard": 0.35},
        ),
        BenchmarkQuestion(
            qid="earn-08",
            # The paper's own example of an under-specified ask: "fastest
            # growing" without a metric or cutoff.
            question="List the fastest growing companies in the BNPL market.",
            index="earnings",
            kind="list",
            expected=[
                r.company
                for r in sorted(
                    (x for x in records if x.sector == "BNPL"),
                    key=lambda x: -x.revenue_growth_pct,
                )[:5]
            ],
            grade_kwargs={"correct_jaccard": 0.6, "plausible_jaccard": 0.15},
            ambiguous=True,
        ),
    ]
    return questions


def build_full_suite(
    ntsb_records: Sequence[IncidentRecord],
    earnings_records: Sequence[CompanyReport],
) -> List[BenchmarkQuestion]:
    """The full 18-question micro-benchmark (10 NTSB + 8 earnings)."""
    suite = build_ntsb_questions(ntsb_records) + build_earnings_questions(
        earnings_records
    )
    assert len(suite) == 18, f"suite must have 18 questions, got {len(suite)}"
    return suite
