"""Synthetic product service-manual corpus.

The paper's manufacturing use case (§2b): "building Q&A systems over
product and service manuals involving text, images, and tables for
thousands of parts and products". Each :class:`ProductManual` carries
full ground truth — a parts list, torque specifications, maintenance
intervals — rendered into a manual with specification tables (long
enough to split across pages), an exploded-view figure, troubleshooting
list items, and an optionally *scanned* legacy appendix that only OCR
can read. Table-lookup QA over these manuals is the workload where
structure-aware partitioning earns its keep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..docmodel.raw import RawDocument
from ..execution.materialize import stable_seed
from .render import PageLayouter

_PRODUCT_FAMILIES = [
    ("HX", "Compressor"), ("RT", "Rotary Pump"), ("GL", "Gearbox"),
    ("PV", "Pressure Valve"), ("TB", "Turbine Blower"), ("CM", "Conveyor Motor"),
]
_PART_NAMES = [
    "drive shaft", "impeller", "seal kit", "bearing housing", "coupling flange",
    "inlet manifold", "oil filter", "gasket set", "rotor assembly", "stator ring",
    "pressure sensor", "relief spring", "drain plug", "fan hub", "mounting bracket",
    "thrust washer", "retainer clip", "wear plate", "shim pack", "terminal block",
]
_TROUBLE_SYMPTOMS = [
    ("excessive vibration", "check the drive shaft alignment and bearing wear"),
    ("oil leakage at the base", "replace the gasket set and torque the drain plug"),
    ("reduced output pressure", "inspect the impeller for erosion and clean the inlet manifold"),
    ("overheating during operation", "verify the oil level and replace the oil filter"),
    ("abnormal noise at startup", "check the coupling flange bolts and the fan hub"),
]


@dataclass
class ManualPart:
    """One row of a manual's parts and specifications tables."""

    part_number: str
    name: str
    quantity: int
    torque_nm: float
    service_interval_hours: int

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "part_number": self.part_number,
            "name": self.name,
            "quantity": self.quantity,
            "torque_nm": self.torque_nm,
            "service_interval_hours": self.service_interval_hours,
        }


@dataclass
class ProductManual:
    """Ground truth for one synthetic service manual."""

    manual_id: str
    product: str
    model_number: str
    year: int
    parts: List[ManualPart] = field(default_factory=list)
    has_scanned_appendix: bool = False
    appendix_note: str = ""

    def part_by_name(self, name: str) -> Optional[ManualPart]:
        """The part with the given name, if present."""
        for part in self.parts:
            if part.name == name:
                return part
        return None

    def to_dict(self) -> dict:
        """The record as a plain dictionary (the document ground truth)."""
        return {
            "manual_id": self.manual_id,
            "product": self.product,
            "model_number": self.model_number,
            "year": self.year,
            "parts": [p.to_dict() for p in self.parts],
            "has_scanned_appendix": self.has_scanned_appendix,
        }


def generate_manual(rng: random.Random, index: int) -> ProductManual:
    """Generate one ground-truth manual record."""
    prefix, family = rng.choice(_PRODUCT_FAMILIES)
    model_number = f"{prefix}-{rng.randint(100, 999)}"
    n_parts = rng.randint(8, 16)
    names = rng.sample(_PART_NAMES, k=n_parts)
    parts = [
        ManualPart(
            part_number=f"{prefix}{rng.randint(10000, 99999)}",
            name=name,
            quantity=rng.randint(1, 8),
            torque_nm=round(rng.uniform(5.0, 220.0), 1),
            service_interval_hours=rng.choice([250, 500, 1000, 2000, 5000]),
        )
        for name in names
    ]
    has_appendix = rng.random() < 0.4
    return ProductManual(
        manual_id=f"MAN-{model_number}-{index:04d}",
        product=f"{model_number} {family}",
        model_number=model_number,
        year=rng.choice([2019, 2020, 2021, 2022, 2023]),
        parts=parts,
        has_scanned_appendix=has_appendix,
        appendix_note=(
            f"Legacy field note: early {model_number} units shipped with a "
            f"reinforced {rng.choice(names)} and require re-torquing after "
            f"the first 50 hours."
            if has_appendix
            else ""
        ),
    )


def render_manual(manual: ProductManual, rng: Optional[random.Random] = None) -> RawDocument:
    """Render a manual record into a multi-page raw document."""
    rng = rng or random.Random(stable_seed(manual.manual_id))
    layout = PageLayouter(header_text=f"{manual.product} — Service Manual")
    layout.add_title(f"{manual.product} Service Manual")
    layout.add_label_lines(
        [
            ("Manual ID", manual.manual_id),
            ("Product", manual.product),
            ("Model Number", manual.model_number),
            ("Revision Year", str(manual.year)),
        ]
    )
    layout.add_section_header("Safety Precautions")
    layout.add_paragraphs(
        [
            "Disconnect the unit from its power source before performing any "
            "maintenance. Wear eye protection when working near pressurized "
            "lines. Never exceed the torque values listed in the "
            "specifications table."
        ]
    )
    layout.add_section_header("Exploded View")
    layout.add_image(
        description=f"Exploded view diagram of the {manual.product}",
        caption=f"Figure 1. {manual.product} assembly overview.",
    )
    layout.add_section_header("Parts List")
    parts_rows = [["Part Number", "Name", "Qty"]] + [
        [p.part_number, p.name, str(p.quantity)] for p in manual.parts
    ]
    layout.add_table(parts_rows, caption="Table 1. Replacement parts.")
    layout.add_section_header("Torque Specifications")
    torque_rows = [["Name", "Torque (Nm)", "Service Interval (h)"]] + [
        [p.name, f"{p.torque_nm:.1f}", str(p.service_interval_hours)]
        for p in manual.parts
    ]
    layout.add_table(torque_rows, caption="Table 2. Fastener torque values.")
    layout.add_section_header("Troubleshooting")
    symptoms = rng.sample(_TROUBLE_SYMPTOMS, k=3)
    layout.add_list([f"{symptom}: {remedy}" for symptom, remedy in symptoms])
    if manual.has_scanned_appendix:
        layout.add_section_header("Appendix: Legacy Field Notes")
        layout.add_image(
            description="Scanned page of typewritten field notes",
            contains_text=manual.appendix_note,
        )
    layout.add_footnote(
        "This manual is a synthetic reproduction artifact, not a real product document."
    )
    return layout.build(doc_id=manual.manual_id, ground_truth=manual.to_dict())


def generate_corpus(
    n_docs: int, seed: int = 0
) -> Tuple[List[ProductManual], List[RawDocument]]:
    """Seeded corpus of manuals and their rendered documents."""
    rng = random.Random(seed)
    manuals = [generate_manual(rng, index=i) for i in range(n_docs)]
    documents = [
        render_manual(m, rng=random.Random(seed * 1_000_003 + i))
        for i, m in enumerate(manuals)
    ]
    return manuals, documents
