"""Synthetic financial earnings-report corpus.

Covers the paper's financial-analyst use case (§2d and the Luna
micro-benchmark, which used "questions from financial customers on an
earnings report dataset"). Each :class:`CompanyReport` carries full
ground truth — sector, revenue, growth, guidance direction, CEO change —
rendered into a report with an MD&A narrative, a quarterly results table
and an outlook section whose vocabulary is consistent with the simulated
LLM's world knowledge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..docmodel.raw import RawDocument
from ..execution.materialize import stable_seed
from .render import PageLayouter

SECTORS = ["AI", "BNPL", "Cloud", "Healthcare", "Retail", "Energy"]

_NAME_PARTS_A = [
    "Acme", "Borealis", "Cobalt", "Dynamo", "Everest", "Fathom", "Granite",
    "Helios", "Ironwood", "Juniper", "Krypton", "Lumen", "Meridian", "Nimbus",
    "Orchid", "Pinnacle", "Quasar", "Redwood", "Summit", "Tundra", "Umbra",
    "Vertex", "Willow", "Xenon", "Yonder", "Zephyr",
]
_NAME_PARTS_B = {
    "AI": ["Intelligence", "Analytics", "Robotics", "Systems"],
    "BNPL": ["Payments", "Credit", "Financial", "Pay"],
    "Cloud": ["Cloud", "Compute", "Infrastructure", "Networks"],
    "Healthcare": ["Health", "Therapeutics", "Medical", "Biosciences"],
    "Retail": ["Retail", "Commerce", "Brands", "Stores"],
    "Energy": ["Energy", "Power", "Solar", "Resources"],
}

_CEO_FIRST = ["Avery", "Blake", "Casey", "Dana", "Ellis", "Frankie", "Gray",
              "Harper", "Indra", "Jordan", "Kai", "Logan", "Morgan", "Noel"]
_CEO_LAST = ["Adler", "Bennett", "Castillo", "Dawson", "Egan", "Fischer",
             "Grant", "Hayes", "Iverson", "Jensen", "Kwan", "Lindqvist",
             "Moreau", "Novak"]


@dataclass
class CompanyReport:
    """Ground truth for one synthetic earnings report."""

    report_id: str
    company: str
    ticker: str
    sector: str
    fiscal_year: int
    quarter: str
    revenue_musd: float
    revenue_growth_pct: float
    eps_usd: float
    guidance: str  # raised | lowered | maintained
    ceo_changed: bool
    ceo_name: str
    sentiment: str  # positive | negative | neutral
    narrative: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """The record as a plain dictionary (the document ground truth)."""
        return {
            "report_id": self.report_id,
            "company": self.company,
            "ticker": self.ticker,
            "sector": self.sector,
            "fiscal_year": self.fiscal_year,
            "quarter": self.quarter,
            "revenue_musd": self.revenue_musd,
            "revenue_growth_pct": self.revenue_growth_pct,
            "eps_usd": self.eps_usd,
            "guidance": self.guidance,
            "ceo_changed": self.ceo_changed,
            "ceo_name": self.ceo_name,
            "sentiment": self.sentiment,
        }


def generate_company(rng: random.Random, index: int, year: int = 2024) -> CompanyReport:
    """Generate one ground-truth company report record."""
    sector = rng.choice(SECTORS)
    name = f"{rng.choice(_NAME_PARTS_A)} {rng.choice(_NAME_PARTS_B[sector])} Inc."
    ticker = "".join(word[0] for word in name.split()[:3]).upper() + str(index % 10)
    growth = round(rng.uniform(-25.0, 55.0), 1)
    revenue = round(rng.uniform(80.0, 4000.0), 1)
    eps = round(rng.uniform(-1.5, 6.0), 2)
    guidance = rng.choices(
        ["raised", "lowered", "maintained"], weights=[0.35, 0.25, 0.40]
    )[0]
    ceo_changed = rng.random() < 0.3
    ceo_name = f"{rng.choice(_CEO_FIRST)} {rng.choice(_CEO_LAST)}"
    # Sentiment follows the guidance direction: that is also what the
    # rendered narrative expresses, so an LLM reading the text and an
    # analyst reading the ground truth agree on what "positive" means.
    sentiment = {"raised": "positive", "lowered": "negative", "maintained": "neutral"}[
        guidance
    ]
    quarter = rng.choice(["Q1", "Q2", "Q3", "Q4"])

    growth_phrase = (
        f"revenue grew {growth:.1f}% year over year"
        if growth >= 0
        else f"revenue declined {abs(growth):.1f}% year over year"
    )
    guidance_phrase = {
        "raised": "Management raised guidance for the full fiscal year, citing "
                  "strong demand and continued margin expansion.",
        "lowered": "Management lowered guidance for the full fiscal year, citing "
                   "weak demand and margin compression; restructuring charges and a "
                   "headcount reduction were announced.",
        "maintained": "Management maintained its prior guidance for the full "
                      "fiscal year.",
    }[guidance]
    ceo_phrase = (
        f"The board announced a CEO transition: {ceo_name} was appointed as chief "
        f"executive officer during the quarter and succeeds the prior CEO."
        if ceo_changed
        else f"Chief executive officer {ceo_name} reiterated the company's "
             f"long-term strategy."
    )
    narrative = [
        (
            f"{name} ({ticker}), a company in the {sector} sector, reported "
            f"{quarter} {year} results. Total {growth_phrase}, reaching "
            f"${revenue:.1f} million for the quarter, with diluted earnings per "
            f"share of ${eps:.2f}."
        ),
        guidance_phrase,
        ceo_phrase,
    ]
    return CompanyReport(
        report_id=f"ER-{year}-{index:05d}",
        company=name,
        ticker=ticker,
        sector=sector,
        fiscal_year=year,
        quarter=quarter,
        revenue_musd=revenue,
        revenue_growth_pct=growth,
        eps_usd=eps,
        guidance=guidance,
        ceo_changed=ceo_changed,
        ceo_name=ceo_name,
        sentiment=sentiment,
        narrative=narrative,
    )


def render_report(record: CompanyReport, rng: Optional[random.Random] = None) -> RawDocument:
    """Render a company report into a raw document."""
    rng = rng or random.Random(stable_seed(record.report_id))
    layout = PageLayouter(header_text=f"{record.company} — Investor Relations")
    layout.add_title(f"{record.company} {record.quarter} {record.fiscal_year} Earnings Report")
    layout.add_label_lines(
        [
            ("Report ID", record.report_id),
            ("Company", record.company),
            ("Ticker", record.ticker),
            ("Sector", record.sector),
            ("Fiscal Year", str(record.fiscal_year)),
            ("Quarter", record.quarter),
            ("Chief Executive Officer", record.ceo_name),
        ]
    )
    layout.add_section_header("Financial Highlights")
    prior_revenue = record.revenue_musd / (1.0 + record.revenue_growth_pct / 100.0)
    layout.add_table(
        [
            ["Metric", f"{record.quarter} {record.fiscal_year}", f"{record.quarter} {record.fiscal_year - 1}"],
            ["Revenue ($M)", f"{record.revenue_musd:.1f}", f"{prior_revenue:.1f}"],
            ["Revenue growth (%)", f"{record.revenue_growth_pct:.1f}", "-"],
            ["Diluted EPS ($)", f"{record.eps_usd:.2f}", "-"],
        ],
        caption="Table 1. Selected financial results.",
    )
    layout.add_section_header("Management Discussion and Analysis")
    layout.add_paragraphs(record.narrative)
    layout.add_section_header("Outlook")
    outlook = {
        "positive": "The company enters the next quarter optimistic, with record "
                    "revenue in several segments and robust growth in its order book.",
        "negative": "The company issued a cautious outlook for the next quarter, "
                    "noting that results missed expectations.",
        "neutral": "The company expects results in line with the prior quarter.",
    }[record.sentiment]
    layout.add_paragraphs([outlook])
    layout.add_footnote(
        "This report is a synthetic reproduction artifact, not an actual SEC filing."
    )
    return layout.build(doc_id=record.report_id, ground_truth=record.to_dict())


def build_market_database(
    records: List[CompanyReport], seed: int = 0, max_competitors: int = 3
) -> List[dict]:
    """The structured "database" of the paper's data-integration pattern.

    The intro motivates queries like "list the fastest growing companies
    in the BNPL market and their competitors, where the competitive
    information may involve a lookup in a database". This builds that
    database: one structured record per company with its competitors
    (sector peers) and a market-share figure. Returned as plain dicts so
    callers can wrap them as Documents or rows as they see fit.
    """
    rng = random.Random(seed)
    by_sector: Dict[str, List[CompanyReport]] = {}
    for record in records:
        by_sector.setdefault(record.sector, []).append(record)
    rows = []
    for record in records:
        peers = [r.company for r in by_sector[record.sector] if r.company != record.company]
        rng.shuffle(peers)
        rows.append(
            {
                "company": record.company,
                "ticker": record.ticker,
                "sector": record.sector,
                "competitors": sorted(peers[:max_competitors]),
                "market_share_pct": round(rng.uniform(1.0, 30.0), 1),
            }
        )
    return rows


def generate_corpus(
    n_docs: int, seed: int = 0, year: int = 2024
) -> Tuple[List[CompanyReport], List[RawDocument]]:
    """Seeded corpus of company reports and their rendered documents."""
    rng = random.Random(seed)
    records = [generate_company(rng, index=i, year=year) for i in range(n_docs)]
    documents = [
        render_report(r, rng=random.Random(seed * 1_000_003 + i))
        for i, r in enumerate(records)
    ]
    return records, documents
