"""Synthetic corpora with exact ground truth (see DESIGN.md §1).

* :mod:`repro.datagen.ntsb` — aviation accident reports.
* :mod:`repro.datagen.earnings` — financial earnings reports.
* :mod:`repro.datagen.layout` — DocLayNet-like layout benchmark.
* :mod:`repro.datagen.questions` — the 18-question Luna micro-benchmark.
"""

from .earnings import CompanyReport, SECTORS, generate_company, render_report
from .earnings import generate_corpus as generate_earnings_corpus
from .layout import generate_layout_benchmark
from .manuals import ManualPart, ProductManual, generate_manual, render_manual
from .manuals import generate_corpus as generate_manuals_corpus
from .ntsb import (
    CATEGORY_WEIGHTS,
    CAUSE_TAXONOMY,
    IncidentRecord,
    generate_incident,
    render_incident,
)
from .ntsb import generate_corpus as generate_ntsb_corpus
from .questions import (
    BenchmarkQuestion,
    build_earnings_questions,
    build_full_suite,
    build_ntsb_questions,
)
from .render import PageLayouter, wrap_text

__all__ = [
    "BenchmarkQuestion",
    "CATEGORY_WEIGHTS",
    "CAUSE_TAXONOMY",
    "CompanyReport",
    "IncidentRecord",
    "ManualPart",
    "ProductManual",
    "PageLayouter",
    "SECTORS",
    "build_earnings_questions",
    "build_full_suite",
    "build_ntsb_questions",
    "generate_company",
    "generate_earnings_corpus",
    "generate_incident",
    "generate_layout_benchmark",
    "generate_manual",
    "generate_manuals_corpus",
    "generate_ntsb_corpus",
    "render_incident",
    "render_manual",
    "render_report",
    "wrap_text",
]
