"""DocLayNet-like layout benchmark generator (experiment E1).

DocLayNet is a human-annotated page-layout dataset with 11 category
types; the paper evaluates its Deformable-DETR model on the DocLayNet
competition benchmark. This module generates an annotated synthetic
equivalent: a diverse set of pages — report pages, financial pages, and
deliberately messy "misc" pages exercising every category (lists,
formulas, footnotes, captions, multiple pictures) — whose ground-truth
boxes feed the real mAP/mAR evaluation in
:mod:`repro.evaluation.detection`.
"""

from __future__ import annotations

import random
from typing import List

from ..docmodel.raw import RawDocument
from .earnings import generate_company, render_report
from .ntsb import generate_incident, render_incident
from .render import PageLayouter

_LOREM_SENTENCES = [
    "The committee reviewed the proposal during its quarterly session.",
    "Results indicate a consistent trend across the sampled population.",
    "Further analysis is required before a final determination is made.",
    "The methodology follows established practice in the field.",
    "Participants were selected according to the published criteria.",
    "Appendix materials provide the complete data tables.",
    "The findings were consistent with prior published studies.",
    "Limitations of the approach are discussed in the final section.",
]

_FORMULAS = [
    "E = m c^2",
    "f(x) = a x^2 + b x + c",
    "P(A|B) = P(B|A) P(A) / P(B)",
    "sum_{i=1}^{n} x_i / n",
    "sigma^2 = E[(X - mu)^2]",
]


def _misc_page_document(rng: random.Random, doc_id: str) -> RawDocument:
    """A dense page exercising list items, formulas, footnotes, pictures."""
    layout = PageLayouter(header_text="Technical Report Series")
    layout.add_title(f"Technical Memorandum {rng.randint(100, 999)}")
    layout.add_section_header("Overview")
    layout.add_paragraphs([" ".join(rng.sample(_LOREM_SENTENCES, k=3))])
    layout.add_list([rng.choice(_LOREM_SENTENCES) for _ in range(rng.randint(2, 5))])
    if rng.random() < 0.8:
        layout.add_formula(rng.choice(_FORMULAS))
    layout.add_section_header("Data")
    n_rows = rng.randint(3, 7)
    rows = [["Sample", "Value", "Unit"]] + [
        [f"S-{i}", f"{rng.uniform(0, 100):.2f}", rng.choice(["kg", "m", "s"])]
        for i in range(n_rows)
    ]
    layout.add_table(rows, caption="Table A. Measured samples.")
    layout.add_image(
        description="Diagram of the experimental apparatus",
        caption="Figure A. Apparatus schematic.",
    )
    if rng.random() < 0.5:
        layout.add_image(
            description="Scanned page of handwritten laboratory notes",
            contains_text="Observed anomaly at station four during the second trial run.",
        )
    layout.add_paragraphs([" ".join(rng.sample(_LOREM_SENTENCES, k=2))])
    layout.add_footnote("1. Measurement uncertainty is one standard deviation.")
    return layout.build(doc_id=doc_id)


def generate_layout_benchmark(
    n_documents: int = 60, seed: int = 0
) -> List[RawDocument]:
    """A mixed-source annotated benchmark of ``n_documents`` documents.

    Mix: 40% accident reports, 30% earnings reports, 30% misc technical
    pages — diverse enough that every one of the 11 layout categories
    appears with meaningful support.
    """
    rng = random.Random(seed)
    documents: List[RawDocument] = []
    for index in range(n_documents):
        draw = rng.random()
        if draw < 0.4:
            record = generate_incident(rng, index=index)
            documents.append(
                render_incident(record, rng=random.Random(seed * 7919 + index))
            )
        elif draw < 0.7:
            company = generate_company(rng, index=index)
            documents.append(
                render_report(company, rng=random.Random(seed * 7919 + index))
            )
        else:
            documents.append(
                _misc_page_document(
                    random.Random(seed * 7919 + index), doc_id=f"MISC-{index:05d}"
                )
            )
    return documents
