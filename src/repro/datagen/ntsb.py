"""Synthetic NTSB aviation accident report corpus.

Substitutes for the real NTSB PDFs the paper demonstrates on (DESIGN.md
§1). Each :class:`IncidentRecord` is a fully-known ground-truth record;
:func:`render_incident` turns it into a multi-page raw document with the
structure of a real report: page headers, a title, a metadata block, an
injuries table, an analysis narrative, an optional accident photo, a
wreckage-details table (sometimes split across pages), and a probable-
cause section. Question ground truth is computed from the records, never
from the rendered text, so end-to-end accuracy is measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..docmodel.raw import RawDocument
from ..execution.materialize import stable_seed
from .render import PageLayouter

#: cause_category -> (cause_detail, relative weight)
CAUSE_TAXONOMY: Dict[str, List[Tuple[str, float]]] = {
    "environmental": [
        ("wind", 0.45),
        ("icing", 0.20),
        ("turbulence", 0.10),
        ("low_visibility", 0.15),
        ("thunderstorm", 0.10),
    ],
    "mechanical": [
        ("engine_failure", 0.45),
        ("fuel_contamination", 0.25),
        ("landing_gear", 0.20),
        ("electrical", 0.10),
    ],
    "pilot_error": [
        ("loss_of_control", 0.40),
        ("misjudged_approach", 0.30),
        ("fuel_exhaustion", 0.20),
        ("spatial_disorientation", 0.10),
    ],
    "other": [
        ("bird_strike", 0.70),
        ("runway_incursion", 0.30),
    ],
}

#: Default mix of top-level cause categories.
CATEGORY_WEIGHTS: List[Tuple[str, float]] = [
    ("environmental", 0.40),
    ("mechanical", 0.28),
    ("pilot_error", 0.26),
    ("other", 0.06),
]

AIRCRAFT_MODELS = [
    "Cessna 172", "Cessna 182", "Piper PA-28", "Beechcraft Bonanza",
    "Cirrus SR22", "Mooney M20", "Piper PA-18", "Bell 206", "Robinson R44",
    "Diamond DA40",
]

PHASES = ["takeoff", "initial climb", "cruise", "approach", "landing", "taxi"]

CITIES: Dict[str, List[str]] = {
    "AK": ["Anchorage", "Fairbanks", "Juneau"],
    "TX": ["Houston", "Dallas", "Austin"],
    "CA": ["Sacramento", "Fresno", "San Diego"],
    "FL": ["Orlando", "Tampa", "Miami"],
    "CO": ["Denver", "Boulder", "Pueblo"],
    "WA": ["Seattle", "Spokane", "Tacoma"],
    "AZ": ["Phoenix", "Tucson", "Flagstaff"],
    "NY": ["Albany", "Buffalo", "Syracuse"],
    "MT": ["Billings", "Missoula", "Helena"],
    "KS": ["Wichita", "Topeka", "Salina"],
}

_DAMAGE_LEVELS = [("substantial", 0.6), ("minor", 0.25), ("destroyed", 0.15)]


@dataclass
class IncidentRecord:
    """Ground truth for one synthetic accident report."""

    report_id: str
    date: str  # ISO YYYY-MM-DD
    year: int
    city: str
    state: str
    aircraft: str
    phase: str
    cause_category: str
    cause_detail: str
    weather_related: bool
    injuries_fatal: int
    injuries_serious: int
    injuries_minor: int
    damage: str
    probable_cause: str
    narrative: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """The record as a plain dictionary (the document ground truth)."""
        return {
            "report_id": self.report_id,
            "date": self.date,
            "year": self.year,
            "city": self.city,
            "state": self.state,
            "aircraft": self.aircraft,
            "phase": self.phase,
            "cause_category": self.cause_category,
            "cause_detail": self.cause_detail,
            "weather_related": self.weather_related,
            "injuries_fatal": self.injuries_fatal,
            "injuries_serious": self.injuries_serious,
            "injuries_minor": self.injuries_minor,
            "damage": self.damage,
            "probable_cause": self.probable_cause,
        }


# ----------------------------------------------------------------------
# Narrative generation
# ----------------------------------------------------------------------

_MONTH_NAMES = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)

_CAUSE_SENTENCES: Dict[str, List[str]] = {
    "wind": [
        "the airplane encountered a strong gusty crosswind during the {phase}",
        "a sudden wind gust pushed the airplane off the runway centerline",
        "windshear was reported by the pilot shortly before the accident",
    ],
    "icing": [
        "ice accumulation on the wings degraded lift during the {phase}",
        "the airplane encountered freezing rain and rapid icing conditions",
    ],
    "turbulence": [
        "severe turbulence was encountered during the {phase}",
        "the airplane entered an area of strong turbulent air",
    ],
    "low_visibility": [
        "dense fog reduced visibility below approach minimums",
        "the pilot continued flight into an area of low visibility and haze",
    ],
    "thunderstorm": [
        "a fast-moving thunderstorm with lightning crossed the flight path",
        "convective activity near the airport produced heavy rain and lightning",
    ],
    "engine_failure": [
        "the engine experienced a total loss of engine power during the {phase}",
        "a fatigue crack in a connecting rod led to engine failure",
    ],
    "fuel_contamination": [
        "water in the fuel caused fuel contamination and a partial loss of engine power",
        "the fuel sample drained after the accident showed fuel contamination",
    ],
    "landing_gear": [
        "the landing gear collapsed on touchdown",
        "a landing gear malfunction prevented the gear from extending",
    ],
    "electrical": [
        "an in-flight electrical failure disabled the avionics",
        "smoke from an electrical failure filled the cockpit",
    ],
    "loss_of_control": [
        "the pilot failed to maintain directional control during the {phase}",
        "the airplane exceeded the critical angle of attack and entered a loss of control",
    ],
    "misjudged_approach": [
        "the pilot misjudged the approach path and touched down short of the runway",
        "an improper landing flare resulted in a hard landing",
    ],
    "fuel_exhaustion": [
        "the flight continued past the planned fuel stop, resulting in fuel exhaustion",
        "inadequate preflight planning led to fuel exhaustion",
    ],
    "spatial_disorientation": [
        "the pilot experienced spatial disorientation in night instrument conditions",
    ],
    "bird_strike": [
        "the airplane struck a bird shortly after rotation",
        "a flock of birds crossed the departure path and the airplane struck a bird",
    ],
    "runway_incursion": [
        "a vehicle entered the runway, forcing an abrupt rejected landing",
    ],
}

_PROBABLE_CAUSE: Dict[str, str] = {
    "wind": "The airplane's encounter with a gusty crosswind during the {phase}, "
            "which resulted in a loss of directional control.",
    "icing": "An encounter with icing conditions that degraded the airplane's "
             "aerodynamic performance.",
    "turbulence": "An encounter with severe turbulence that exceeded the "
                  "airplane's structural capability.",
    "low_visibility": "The pilot's continued flight into low visibility "
                      "conditions, which resulted in controlled flight into terrain.",
    "thunderstorm": "An encounter with a thunderstorm and associated convective "
                    "activity during the {phase}.",
    "engine_failure": "A total loss of engine power due to a mechanical "
                      "malfunction within the engine.",
    "fuel_contamination": "The pilot's failure to remove all water from the fuel "
                          "tank, which resulted in fuel contamination and a "
                          "subsequent partial loss of engine power.",
    "landing_gear": "A landing gear malfunction that resulted in the landing "
                    "gear collapsing during the {phase}.",
    "electrical": "An in-flight electrical failure that resulted in a loss of "
                  "critical avionics.",
    "loss_of_control": "The pilot's failure to maintain directional control "
                       "during the {phase}.",
    "misjudged_approach": "The pilot's improper landing flare and misjudged "
                          "approach, which resulted in a hard landing.",
    "fuel_exhaustion": "Inadequate preflight fuel planning by the pilot, which "
                       "resulted in fuel exhaustion.",
    "spatial_disorientation": "The pilot's spatial disorientation during night "
                              "conditions, which resulted in a loss of control.",
    "bird_strike": "An in-flight collision with a bird during the {phase}.",
    "runway_incursion": "A runway incursion by a ground vehicle during the {phase}.",
}

_FILLER_SENTENCES = [
    "The pilot held a private pilot certificate with a rating for single-engine land airplanes.",
    "A post-accident examination of the airframe revealed no additional anomalies.",
    "The airplane was registered to a private owner and operated under 14 CFR Part 91.",
    "Recorded data from the onboard GPS unit was consistent with the pilot's statement.",
    "The closest official observation station reported conditions consistent with the pilot's account.",
    "First responders arrived at the accident site within fifteen minutes.",
    "The flight departed approximately one hour before the accident.",
    "Maintenance records indicated the most recent annual inspection was completed two months earlier.",
]


def _weighted_choice(rng: random.Random, items: List[Tuple[str, float]]) -> str:
    total = sum(weight for _, weight in items)
    draw = rng.random() * total
    cumulative = 0.0
    for value, weight in items:
        cumulative += weight
        if draw <= cumulative:
            return value
    return items[-1][0]


def _format_date(year: int, month: int, day: int) -> Tuple[str, str]:
    iso = f"{year:04d}-{month:02d}-{day:02d}"
    pretty = f"{_MONTH_NAMES[month - 1]} {day}, {year}"
    return iso, pretty


def generate_incident(rng: random.Random, index: int, years: Tuple[int, ...] = (2021, 2022, 2023)) -> IncidentRecord:
    """Generate one ground-truth incident record."""
    year = rng.choice(years)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    iso_date, _ = _format_date(year, month, day)
    state = rng.choice(sorted(CITIES))
    city = rng.choice(CITIES[state])
    category = _weighted_choice(rng, CATEGORY_WEIGHTS)
    detail = _weighted_choice(rng, CAUSE_TAXONOMY[category])
    phase = rng.choice(PHASES)
    fatal = rng.choice([0, 0, 0, 0, 1, 2]) if category != "other" else 0
    serious = rng.choice([0, 0, 1, 1, 2])
    minor = rng.choice([0, 1, 2, 3])
    damage = _weighted_choice(rng, _DAMAGE_LEVELS)
    cause_sentence = rng.choice(_CAUSE_SENTENCES[detail]).format(phase=phase)
    probable = _PROBABLE_CAUSE[detail].format(phase=phase)
    aircraft = rng.choice(AIRCRAFT_MODELS)

    narrative = [
        (
            f"On {_MONTH_NAMES[month - 1]} {day}, {year}, a {aircraft} "
            f"was involved in an accident near {city}, {state}. "
            f"The pilot reported that during the {phase}, {cause_sentence}. "
            f"The airplane subsequently impacted terrain and sustained {damage} damage."
        ),
        " ".join(rng.sample(_FILLER_SENTENCES, k=3)),
    ]
    record = IncidentRecord(
        report_id=f"NTSB-{year}-{index:05d}",
        date=iso_date,
        year=year,
        city=city,
        state=state,
        aircraft=aircraft,
        phase=phase,
        cause_category=category,
        cause_detail=detail,
        weather_related=category == "environmental",
        injuries_fatal=fatal,
        injuries_serious=serious,
        injuries_minor=minor,
        damage=damage,
        probable_cause=probable,
        narrative=narrative,
    )
    return record


def render_incident(
    record: IncidentRecord,
    rng: Optional[random.Random] = None,
    include_image: bool = True,
    wreckage_rows: Optional[int] = None,
) -> RawDocument:
    """Render a record into a multi-page raw report document."""
    rng = rng or random.Random(stable_seed(record.report_id))
    layout = PageLayouter(header_text="National Transportation Safety Board")
    layout.add_title("Aviation Accident Final Report")
    _, pretty_date = _format_date(record.year, int(record.date[5:7]), int(record.date[8:10]))
    layout.add_label_lines(
        [
            ("Report ID", record.report_id),
            ("Location", f"{record.city}, {record.state}"),
            ("Date", pretty_date),
            ("Aircraft", record.aircraft),
            ("Phase of Flight", record.phase),
            ("Aircraft Damage", record.damage),
        ]
    )
    layout.add_section_header("Injuries")
    layout.add_table(
        [
            ["Injury Level", "Count"],
            ["Fatal", str(record.injuries_fatal)],
            ["Serious", str(record.injuries_serious)],
            ["Minor", str(record.injuries_minor)],
        ],
        caption="Table 1. Injuries to persons.",
    )
    layout.add_section_header("Analysis")
    layout.add_paragraphs(record.narrative)
    if include_image:
        layout.add_image(
            description=f"Photograph of the {record.aircraft} at the accident site",
            caption=f"Figure 1. Accident site near {record.city}, {record.state}.",
        )
    rows = wreckage_rows if wreckage_rows is not None else rng.randint(4, 18)
    wreckage = [["Component", "Condition", "Position"]]
    components = [
        "Left wing", "Right wing", "Fuselage", "Empennage", "Propeller",
        "Engine", "Landing gear", "Left aileron", "Right aileron", "Rudder",
        "Elevator", "Flaps", "Cowling", "Windshield", "Left fuel tank",
        "Right fuel tank", "Instrument panel", "Seats",
    ]
    conditions = ["intact", "buckled", "separated", "crushed", "bent"]
    for i in range(rows):
        wreckage.append(
            [
                components[i % len(components)],
                rng.choice(conditions),
                f"{rng.randint(1, 90)} ft from main wreckage",
            ]
        )
    layout.add_section_header("Wreckage and Impact Information")
    layout.add_table(wreckage, caption="Table 2. Wreckage distribution.")
    layout.add_section_header("Probable Cause and Findings")
    layout.add_paragraphs([f"Probable Cause: {record.probable_cause}"])
    layout.add_footnote(
        "This report is a synthetic reproduction artifact and not an official NTSB product."
    )
    return layout.build(doc_id=record.report_id, ground_truth=record.to_dict())


def generate_corpus(
    n_docs: int,
    seed: int = 0,
    years: Tuple[int, ...] = (2021, 2022, 2023),
) -> Tuple[List[IncidentRecord], List[RawDocument]]:
    """Generate a seeded corpus of incident records and their documents."""
    rng = random.Random(seed)
    records = [generate_incident(rng, index=i, years=years) for i in range(n_docs)]
    documents = [render_incident(r, rng=random.Random(seed * 1_000_003 + i)) for i, r in enumerate(records)]
    return records, documents
