"""The write-ahead query journal: checkpointed crash recovery.

The paper leans on Ray's lineage-based task recovery for long queries;
this repository's substitute is a durable **per-node completion log**. As
the Luna executor finishes each plan node, the node's output is encoded
and appended to the query's journal file with an ``fsync`` — write-ahead
discipline: a node is only *checkpointed* once its record is durable, so
a process that dies mid-query can be anywhere between two checkpoints
and the journal is still a consistent prefix of the execution.

Recovery (:meth:`repro.luna.luna.Luna.resume`) rebuilds the context from
the same deterministic inputs, loads the journal, verifies the stored
plan fingerprint (the :func:`~repro.execution.materialize.stable_fingerprint`
discipline shared with DiskCache ``.fp`` sidecars), replays completed
nodes from their stored outputs, and re-executes only the nodes past the
last durable checkpoint.

Journal format (JSON lines, one record per line):

* ``{"type": "begin", "query_id", "question", "index", "plan_json",
  "fingerprint", "error_policy"}`` — written before the first node runs.
* ``{"type": "node", "index", "operation", "value"}`` — one per completed
  plan node, in execution order. ``value`` is the node's output under the
  codec below.
* ``{"type": "commit", "answer"}`` — the query finished; the stored
  answer lets tooling audit resumed-vs-uninterrupted byte equality.
* ``{"type": "shard", "shard", "fingerprint", "documents", "positions"}``
  — one per completed cluster shard (scatter/gather segments checkpoint
  at shard granularity, so a resumed query re-runs only lost shards).
  The fingerprint binds the record to one (sub-plan, partition) pair;
  records from a different plan or corpus are ignored on resume.

Value codec: documents round-trip through the Document dict codec (the
same one DiskCache uses), tuples are tagged (JSON has no tuple), lists
and dicts recurse, scalars pass through.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..docmodel.document import Document
from ..execution.materialize import stable_fingerprint
from ..observability.metrics import MetricsRegistry, get_registry


class JournalError(RuntimeError):
    """The journal is missing, corrupt, or inconsistent with the plan."""


def plan_json_fingerprint(plan_json: str) -> str:
    """Fingerprint of a serialized logical plan.

    Folded through :func:`stable_fingerprint` (parsed first, so JSON
    whitespace never changes the digest) — the same primitive that stamps
    materialization sidecars and serving-cache keys.
    """
    return stable_fingerprint([json.loads(plan_json)])


def encode_value(value: Any) -> Any:
    """Encode one node output into JSON-able form (see module codec)."""
    if isinstance(value, Document):
        return {"__document__": value.to_dict()}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {"__dict__": {str(k): encode_value(v) for k, v in value.items()}}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if "__document__" in value:
            return Document.from_dict(value["__document__"])
        if "__tuple__" in value:
            return tuple(decode_value(v) for v in value["__tuple__"])
        if "__dict__" in value:
            return {k: decode_value(v) for k, v in value["__dict__"].items()}
        return value
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


@dataclass
class JournalState:
    """Everything recoverable about one journaled query."""

    query_id: str
    question: str = ""
    index: str = ""
    plan_json: str = ""
    fingerprint: str = ""
    error_policy: str = ""
    #: Node index -> decoded output, for every durably checkpointed node.
    completed: Dict[int, Any] = field(default_factory=dict)
    #: Operation name per checkpointed node (for counters/reports).
    operations: Dict[int, str] = field(default_factory=dict)
    committed: bool = False
    answer: Any = None
    #: Shard id -> {"fingerprint", "documents", "positions"} for every
    #: durably checkpointed cluster shard (see ClusterCoordinator).
    shards: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    @property
    def last_checkpoint(self) -> int:
        """Highest checkpointed node index (-1 when none)."""
        return max(self.completed, default=-1)


class QueryJournal:
    """Durable per-query write-ahead log under one directory.

    One ``<query_id>.journal.jsonl`` file per query. Appends are
    flushed and fsynced before returning, so :meth:`node_complete`
    returning means the checkpoint survives ``os._exit`` (the chaos
    kill mode relies on exactly this).
    """

    def __init__(
        self, root: "Path | str", registry: Optional[MetricsRegistry] = None
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.registry = registry if registry is not None else get_registry()
        self._m_records = self.registry.counter("lifecycle.journal_records")
        self._m_begins = self.registry.counter("lifecycle.journal_begins")
        self._m_commits = self.registry.counter("lifecycle.journal_commits")
        self._m_shards = self.registry.counter("lifecycle.journal_shards")
        self._lock = threading.Lock()

    def path(self, query_id: str) -> Path:
        """The journal file for one query."""
        if not query_id or "/" in query_id or query_id.startswith("."):
            raise ValueError(f"invalid query_id {query_id!r}")
        return self.root / f"{query_id}.journal.jsonl"

    def query_ids(self) -> List[str]:
        """Every query with a journal file, sorted."""
        return sorted(
            p.name[: -len(".journal.jsonl")]
            for p in self.root.glob("*.journal.jsonl")
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def begin(
        self,
        query_id: str,
        *,
        question: str,
        index: str,
        plan_json: str,
        error_policy: str = "",
    ) -> str:
        """Open the query's log with its identity record; returns the
        plan fingerprint recorded for resume validation. A pre-existing
        journal for the same query id is truncated (fresh attempt)."""
        fingerprint = plan_json_fingerprint(plan_json)
        record = {
            "type": "begin",
            "query_id": query_id,
            "question": question,
            "index": index,
            "plan_json": plan_json,
            "fingerprint": fingerprint,
            "error_policy": error_policy,
        }
        self._append(query_id, record, truncate=True)
        self._m_begins.inc()
        return fingerprint

    def node_complete(
        self, query_id: str, index: int, operation: str, value: Any
    ) -> None:
        """Durably checkpoint one node's output (write-ahead: the call
        returns only after the record is fsynced)."""
        self._append(
            query_id,
            {
                "type": "node",
                "index": index,
                "operation": operation,
                "value": encode_value(value),
            },
        )

    def shard_complete(
        self,
        query_id: str,
        shard_id: int,
        *,
        fingerprint: str,
        documents: List[Document],
        positions: List[int],
    ) -> None:
        """Durably checkpoint one cluster shard's output.

        Same write-ahead contract as :meth:`node_complete`; the
        fingerprint covers the shard sub-plan *and* the partition map,
        so resume never replays a shard of a different plan or corpus.
        """
        self._append(
            query_id,
            {
                "type": "shard",
                "shard": int(shard_id),
                "fingerprint": fingerprint,
                "documents": [encode_value(d) for d in documents],
                "positions": [int(p) for p in positions],
            },
        )
        self._m_shards.inc()

    def commit(self, query_id: str, answer: Any) -> None:
        """Record that the query finished, with its final answer."""
        self._append(
            query_id, {"type": "commit", "answer": encode_value(answer)}
        )
        self._m_commits.inc()

    def _append(
        self, query_id: str, record: Dict[str, Any], truncate: bool = False
    ) -> None:
        line = json.dumps(record, sort_keys=True)
        path = self.path(query_id)
        with self._lock:
            with open(path, "w" if truncate else "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        self._m_records.inc()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def load(self, query_id: str) -> JournalState:
        """Parse one query's journal into a :class:`JournalState`.

        A truncated trailing line (the process died mid-append) is
        discarded: write-ahead means the record it half-wrote was never
        considered durable.
        """
        path = self.path(query_id)
        if not path.exists():
            raise JournalError(f"no journal for query {query_id!r} in {self.root}")
        state = JournalState(query_id=query_id)
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail write: everything before it stands
                kind = record.get("type")
                if kind == "begin":
                    state.question = record.get("question", "")
                    state.index = record.get("index", "")
                    state.plan_json = record.get("plan_json", "")
                    state.fingerprint = record.get("fingerprint", "")
                    state.error_policy = record.get("error_policy", "")
                elif kind == "node":
                    node_index = int(record["index"])
                    state.completed[node_index] = decode_value(record["value"])
                    state.operations[node_index] = record.get("operation", "")
                elif kind == "commit":
                    state.committed = True
                    state.answer = decode_value(record.get("answer"))
                elif kind == "shard":
                    state.shards[int(record["shard"])] = {
                        "fingerprint": record.get("fingerprint", ""),
                        "documents": [
                            decode_value(d) for d in record.get("documents", [])
                        ],
                        "positions": [int(p) for p in record.get("positions", [])],
                    }
        if not state.plan_json and not state.shards:
            # Shard-only journals (a coordinator checkpointing a bare
            # segment) have no begin record and are still loadable.
            raise JournalError(
                f"journal for query {query_id!r} has no begin record"
            )
        return state
