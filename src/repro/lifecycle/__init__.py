"""Query lifecycle: end-to-end deadlines, cooperative cancellation, and
checkpointed crash recovery.

``deadline`` must be imported before ``journal``: the execution package
imports lifecycle primitives, and keeping ``deadline`` stdlib-only (with
``journal`` importing execution by full submodule path) breaks the cycle.
"""

from .deadline import (
    WAIT_POLL_S,
    CancelScope,
    Deadline,
    DeadlineExceeded,
    LifecycleError,
    QueryCancelled,
    attach_scope,
    check_scope,
    current_scope,
    effective_timeout,
    remaining_budget,
    wait_future,
)
from .journal import (
    JournalError,
    JournalState,
    QueryJournal,
    decode_value,
    encode_value,
    plan_json_fingerprint,
)

__all__ = [
    "WAIT_POLL_S",
    "CancelScope",
    "Deadline",
    "DeadlineExceeded",
    "LifecycleError",
    "QueryCancelled",
    "attach_scope",
    "check_scope",
    "current_scope",
    "effective_timeout",
    "remaining_budget",
    "wait_future",
    "JournalError",
    "JournalState",
    "QueryJournal",
    "decode_value",
    "encode_value",
    "plan_json_fingerprint",
]
