"""End-to-end deadlines and cooperative cancellation.

A served query is admitted with a wall-clock *budget*; everything it does
afterwards — queue waits, micro-batch windows, retry backoff, LLM calls —
must fit inside that budget. The primitives here make that a single
discipline instead of N ad-hoc timeouts:

* :class:`Deadline` — an absolute expiry on the monotonic clock. Every
  blocking point asks it for :meth:`Deadline.remaining` and waits for *at
  most* that long; nobody stores a relative timeout that silently
  compounds across layers (the bug fixed in ``ReliableLLM``: per-attempt
  timeouts multiplied by retries).
* :class:`CancelScope` — a cancellation token optionally carrying a
  deadline. ``cancel()`` is cooperative: in-flight work observes it at
  the next checkpoint (:meth:`CancelScope.check`), raising a typed
  :class:`QueryCancelled`. Deadline expiry raises a typed
  :class:`DeadlineExceeded` from the same checkpoint.
* A :mod:`contextvars` carrier — :func:`attach_scope` installs the scope
  for the current logical thread of control, and the deep layers
  (executor record loops, the LLM reliability layer, future waits)
  consult :func:`current_scope` without any parameter plumbing. The
  execution engine already copies contexts into its worker pools, so the
  scope rides along into parallel per-record tasks for free.

The scope is advisory, never preemptive: a checkpoint that is never
reached cannot interrupt anything. The system therefore places
checkpoints at every queue pop, batch formation, retry sleep, record
boundary and future wait — the places where a long query actually spends
its time.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional


class LifecycleError(RuntimeError):
    """Base class for query-lifecycle failures."""


class DeadlineExceeded(LifecycleError):
    """The query's end-to-end budget ran out.

    Carries machine-readable context: the configured budget, how far past
    it the query was when the expiry was observed, and a ``retry_after_s``
    hint (how long a caller should wait before retrying — the serving
    layer fills it from queue depth and recent latency).
    """

    def __init__(
        self,
        message: str,
        budget_s: float = 0.0,
        elapsed_s: float = 0.0,
        retry_after_s: float = 0.0,
    ):
        super().__init__(message)
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s
        self.retry_after_s = retry_after_s


class QueryCancelled(LifecycleError):
    """The query was cancelled by its submitter (or a service teardown)."""

    def __init__(self, message: str, query_id: str = "", reason: str = ""):
        super().__init__(message)
        self.query_id = query_id
        self.reason = reason


class Deadline:
    """An absolute expiry on an injectable monotonic clock.

    Created once at admission; every layer below derives its timeout from
    :meth:`remaining` so waits never outlive the end-to-end budget.
    """

    def __init__(
        self, budget_s: float, clock: Callable[[], float] = time.monotonic
    ):
        if budget_s <= 0:
            raise ValueError("budget_s must be > 0")
        self.budget_s = budget_s
        self._clock = clock
        self.started_at = clock()

    @classmethod
    def after(
        cls, budget_s: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``budget_s`` seconds from now."""
        return cls(budget_s, clock=clock)

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return self._clock() - self.started_at

    def remaining(self) -> float:
        """Budget left, floored at zero."""
        return max(0.0, self.budget_s - self.elapsed())

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self.elapsed() >= self.budget_s

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` when the budget has run out."""
        elapsed = self.elapsed()
        if elapsed >= self.budget_s:
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:.3f}s exceeded "
                f"({elapsed:.3f}s elapsed)",
                budget_s=self.budget_s,
                elapsed_s=elapsed,
            )

    def __repr__(self) -> str:
        return f"Deadline(budget_s={self.budget_s}, remaining={self.remaining():.3f})"


class CancelScope:
    """A cooperative cancellation token, optionally deadline-bounded.

    One scope travels with one query. :meth:`check` is the universal
    checkpoint: it raises :class:`QueryCancelled` after :meth:`cancel`,
    or :class:`DeadlineExceeded` once the attached deadline expires.
    Thread-safe: any thread may cancel; any thread may check.
    """

    def __init__(self, deadline: Optional[Deadline] = None, query_id: str = ""):
        self.deadline = deadline
        self.query_id = query_id
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason = ""

    def cancel(self, reason: str = "") -> bool:
        """Request cancellation; returns True the first time."""
        with self._lock:
            if self._cancelled:
                return False
            self._cancelled = True
            self._reason = reason
            return True

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        with self._lock:
            return self._cancelled

    @property
    def cancel_reason(self) -> str:
        """The reason recorded by the first :meth:`cancel` call."""
        with self._lock:
            return self._reason

    def check(self) -> None:
        """The cooperative checkpoint: raise the scope's typed failure."""
        with self._lock:
            if self._cancelled:
                raise QueryCancelled(
                    f"query {self.query_id or '<anonymous>'} cancelled"
                    + (f": {self._reason}" if self._reason else ""),
                    query_id=self.query_id,
                    reason=self._reason,
                )
        if self.deadline is not None:
            self.deadline.check()

    def remaining(self) -> Optional[float]:
        """Budget left (None when no deadline is attached)."""
        if self.deadline is None:
            return None
        return self.deadline.remaining()

    def timeout(self, default: Optional[float] = None) -> Optional[float]:
        """The timeout a blocking call under this scope should use: the
        smaller of ``default`` and the remaining budget."""
        remaining = self.remaining()
        if remaining is None:
            return default
        if default is None:
            return remaining
        return min(default, remaining)


#: The ambient scope for the current logical thread of control. Worker
#: pools that carry contextvars (the executor's per-record tasks, the
#: LLM batch pool) propagate it automatically.
_SCOPE: "contextvars.ContextVar[Optional[CancelScope]]" = contextvars.ContextVar(
    "repro_cancel_scope", default=None
)


def current_scope() -> Optional[CancelScope]:
    """The ambient :class:`CancelScope`, or None outside any query."""
    return _SCOPE.get()


@contextmanager
def attach_scope(scope: Optional[CancelScope]) -> Iterator[Optional[CancelScope]]:
    """Install ``scope`` as the ambient scope for the ``with`` body."""
    token = _SCOPE.set(scope)
    try:
        yield scope
    finally:
        _SCOPE.reset(token)


def check_scope() -> None:
    """Checkpoint against the ambient scope (no-op outside any query)."""
    scope = _SCOPE.get()
    if scope is not None:
        scope.check()


def remaining_budget() -> Optional[float]:
    """Remaining end-to-end budget of the ambient scope (None: unbounded)."""
    scope = _SCOPE.get()
    if scope is None:
        return None
    return scope.remaining()


def effective_timeout(default: Optional[float] = None) -> Optional[float]:
    """The timeout a blocking call should use right now: the caller's
    ``default`` capped by the ambient scope's remaining budget."""
    scope = _SCOPE.get()
    if scope is None:
        return default
    return scope.timeout(default)


#: Granularity of cooperative future waits: how often a blocked caller
#: re-checks its own scope while waiting on shared work.
WAIT_POLL_S = 0.05


def wait_future(
    future: "Future[Any]",
    timeout: Optional[float] = None,
    poll_s: float = WAIT_POLL_S,
) -> Any:
    """Scope-aware ``future.result()``.

    Waits in short slices, re-checking the ambient scope between slices —
    so a caller blocked on *shared* work (a deduped scheduler future, a
    single-flight leader) observes its *own* cancellation or deadline
    instead of riding the shared call to completion. ``timeout`` bounds
    the total wait (on top of the scope's own deadline); when it elapses
    first, :class:`concurrent.futures.TimeoutError` is raised, matching
    ``Future.result``.
    """
    scope = _SCOPE.get()
    deadline_at = None if timeout is None else time.monotonic() + timeout
    while True:
        if scope is not None:
            scope.check()
        slice_s = poll_s
        if scope is not None:
            remaining = scope.remaining()
            if remaining is not None:
                slice_s = min(slice_s, max(remaining, 0.001))
        if deadline_at is not None:
            until_timeout = deadline_at - time.monotonic()
            if until_timeout <= 0:
                raise FutureTimeoutError()
            slice_s = min(slice_s, until_timeout)
        try:
            return future.result(timeout=slice_s)
        except FutureTimeoutError:
            continue
