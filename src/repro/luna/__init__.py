"""Luna: LLM-powered unstructured analytics (paper §6).

Typical use::

    from repro.luna import Luna

    luna = Luna(context, policy="balanced")
    result = luna.query(
        "What percent of environmentally caused incidents were due to wind?",
        index="ntsb",
    )
    print(result.answer)
    print(result.explain())
"""

from .codegen import generate_code
from .diff import diff_plans
from .history import HistoryEntry, QueryHistory
from .executor import (
    ExecutionTrace,
    LUNA_ERROR_POLICIES,
    LunaExecutor,
    PlanExecutionError,
    TraceEntry,
)
from .luna import Luna, LunaResult, LunaSession
from .mathops import MathEvaluationError, evaluate, referenced_nodes
from .operators import (
    LogicalPlan,
    OPERATOR_SPECS,
    PlanNode,
    PlanValidationError,
)
from .optimizer import (
    BALANCED_POLICY,
    COST_POLICY,
    LunaOptimizer,
    OptimizerPolicy,
    POLICIES,
    QUALITY_POLICY,
)
from .planner import LunaPlanner, OPERATOR_DOCS

__all__ = [
    "BALANCED_POLICY",
    "COST_POLICY",
    "ExecutionTrace",
    "LUNA_ERROR_POLICIES",
    "LogicalPlan",
    "Luna",
    "LunaExecutor",
    "LunaOptimizer",
    "LunaPlanner",
    "LunaResult",
    "HistoryEntry",
    "LunaSession",
    "QueryHistory",
    "MathEvaluationError",
    "OPERATOR_DOCS",
    "OPERATOR_SPECS",
    "OptimizerPolicy",
    "POLICIES",
    "PlanExecutionError",
    "PlanNode",
    "PlanValidationError",
    "QUALITY_POLICY",
    "TraceEntry",
    "diff_plans",
    "evaluate",
    "generate_code",
    "referenced_nodes",
]
