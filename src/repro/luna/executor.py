"""Luna plan execution with per-operator tracing.

"Query plans are translated into Sycamore code in Python. Execution on
large datasets benefits from distributed processing" (§6.1). Here each
operator is interpreted over document lists, with per-record LLM
operators dispatched through the Sycamore execution engine so they
parallelize and retry exactly like hand-written DocSet pipelines.

Every node's execution is traced — operation, inputs, record counts,
duration, and LLM spend — giving the "detailed trace of how the answer
was computed" the paper's explainability tenet requires.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..docmodel.document import Document
from ..execution.plan import Plan
from ..lifecycle.deadline import DeadlineExceeded, QueryCancelled, check_scope
from ..observability.cost import CostAccount
from ..runtime import Priority
from ..sycamore import aggregates
from ..sycamore.context import SycamoreContext
from ..sycamore.llm_transforms import (
    make_cascade_extract_fn,
    make_cascade_filter_fn,
    make_extract_properties_fn,
    make_llm_filter_fn,
    summarize_collection,
)
from . import mathops
from .operators import LogicalPlan, PlanNode, PlanValidationError


class PlanExecutionError(RuntimeError):
    """A plan node failed at execution time."""


@dataclass
class TraceEntry:
    """Execution record for one plan node."""

    index: int
    operation: str
    description: str
    records_in: int
    records_out: int
    duration_s: float
    llm_cost_usd: float
    llm_calls: int
    result_preview: str
    #: Ids of the documents this node emitted (capped) — the provenance
    #: trail from an answer back to its sources.
    document_ids: List[str] = field(default_factory=list)
    #: Records dropped to the dead-letter queue / silently skipped while
    #: running this node's DocSet plan (non-fatal error policies).
    dead_lettered: int = 0
    skipped: int = 0
    #: Set when the whole operator failed and was degraded instead of
    #: aborting the query (non-fatal error policies).
    error: Optional[str] = None
    #: True when this node's output came from a durable journal checkpoint
    #: instead of being re-executed (crash recovery).
    replayed: bool = False

    def render(self) -> str:
        """Render a human-readable text view."""
        line = (
            f"[{self.index}] {self.operation}: {self.description} | "
            f"in={self.records_in} out={self.records_out} "
            f"time={self.duration_s:.3f}s llm_calls={self.llm_calls} "
            f"cost=${self.llm_cost_usd:.4f} -> {self.result_preview}"
        )
        if self.replayed:
            line += " [REPLAYED]"
        if self.dead_lettered or self.skipped:
            line += f" [dropped: dead_lettered={self.dead_lettered} skipped={self.skipped}]"
        if self.error:
            line += f" [DEGRADED: {self.error}]"
        return line


@dataclass
class ExecutionTrace:
    """Trace of a full plan execution, in node order."""

    entries: List[TraceEntry] = field(default_factory=list)
    #: Operator-level failures contained by a non-fatal error policy.
    errors: List[str] = field(default_factory=list)
    #: True when any record or operator was lost along the way — the
    #: answer is computed from an incomplete document stream.
    partial: bool = False
    #: Id of the query's span tree in the context tracer (empty when the
    #: query ran untraced); feed it to ``Tracer.trace_spans`` or the
    #: ``python -m repro trace`` command.
    trace_id: str = ""
    #: Span-derived per-operator cost rollup (tokens, dollars, retries,
    #: cache/dedup savings). Same arithmetic as the JSON trace export.
    cost: Optional[CostAccount] = None
    #: Nodes freshly executed this run vs. replayed from a journal
    #: checkpoint — the counters the chaos-recovery gate asserts on.
    nodes_executed: int = 0
    nodes_replayed: int = 0
    #: Cost-based optimizer audit (estimated vs actual, rewrites applied)
    #: when the query ran through :class:`repro.optimizer.CostBasedOptimizer`;
    #: rendered by the ``plan-explain`` CLI verb. Typed ``Any`` to keep
    #: the luna -> optimizer import one-way (optimizer imports operators).
    optimizer_report: Optional[Any] = None

    def render(self) -> str:
        """Render a human-readable text view."""
        lines = [entry.render() for entry in self.entries]
        if self.partial:
            lines.append(
                f"PARTIAL: {self.total_dead_lettered()} dead-lettered, "
                f"{self.total_skipped()} skipped, {len(self.errors)} degraded operators"
            )
        return "\n".join(lines)

    def total_dead_lettered(self) -> int:
        """Records dead-lettered across all nodes."""
        return sum(entry.dead_lettered for entry in self.entries)

    def total_skipped(self) -> int:
        """Records skipped across all nodes."""
        return sum(entry.skipped for entry in self.entries)

    def total_cost_usd(self) -> float:
        """Sum of dollar costs across entries."""
        return sum(entry.llm_cost_usd for entry in self.entries)

    def total_llm_calls(self) -> int:
        """Sum of LLM calls across entries."""
        return sum(entry.llm_calls for entry in self.entries)

    def supporting_documents(self) -> List[str]:
        """Ids of the documents behind the answer: the output of the last
        node that emitted a document set (the paper's provenance tenet)."""
        for entry in reversed(self.entries):
            if entry.document_ids:
                return list(entry.document_ids)
        return []


#: Error policies the Luna executor understands. ``fail`` aborts the
#: query on any operator failure (the historical behaviour); ``skip`` and
#: ``dead_letter`` contain per-record failures inside LLM operators with
#: the matching DocSet policy AND degrade whole-operator failures into
#: trace entries instead of raising, flagging the answer as partial.
LUNA_ERROR_POLICIES = ("fail", "skip", "dead_letter")


@dataclass
class _NodeStats:
    """Per-node failure-containment and spend stats, merged from the
    DocSet execution layer and (when a node scattered across the
    cluster) worker-side counters the parent cost tracker never saw."""

    dead_lettered: int = 0
    skipped: int = 0
    #: The node landed a typed partial (deadline-expired cluster shards
    #: absorbed under a non-fatal policy) without per-record counters.
    partial: bool = False
    #: Worker-process LLM spend (invisible to the parent tracker).
    llm_calls: int = 0
    cost_usd: float = 0.0


class LunaExecutor:
    """Interprets validated logical plans against the context's catalog."""

    def __init__(self, context: SycamoreContext, error_policy: str = "fail"):
        if error_policy not in LUNA_ERROR_POLICIES:
            raise ValueError(
                f"unknown error_policy {error_policy!r}; known: {LUNA_ERROR_POLICIES}"
            )
        self.context = context
        self.error_policy = error_policy
        self._last_plan_stats = None
        self._last_cluster_stats: Optional[_NodeStats] = None
        self._current_query_id = ""

    def execute(
        self,
        plan: LogicalPlan,
        completed: Optional[Dict[int, Any]] = None,
        journal_writer: Optional[Callable[[int, str, Any], None]] = None,
        query_id: str = "",
    ) -> "tuple[Any, ExecutionTrace]":
        """Run the plan; returns (final answer, trace).

        Under a non-fatal ``error_policy``, operator failures degrade —
        the node's input passes through (or an empty document set when it
        has none), the error is recorded on the trace, and the trace is
        flagged partial — rather than raising :class:`PlanExecutionError`.

        Lifecycle semantics: every node boundary is a cooperative
        checkpoint. :class:`QueryCancelled` is always fatal (cancellation
        never degrades to a partial answer); :class:`DeadlineExceeded`
        degrades under a non-fatal policy — the expired node and every
        node after it pass their input through without touching the LLM,
        so the query lands within one operator of its budget with a
        typed partial result.

        Crash recovery: ``completed`` maps node index -> journaled output;
        those nodes are *replayed* (zero duration, zero spend) instead of
        re-executed. ``journal_writer(index, operation, output)`` is
        called after each cleanly executed node — degraded nodes are
        deliberately not checkpointed, so a resume re-executes them.
        """
        # Structural gate (no schema: execution has no index context):
        # malformed plans fail before the first operator runs, with the
        # full list of problems, not an interpreter error mid-plan.
        from ..analysis.plancheck import ensure_valid_plan

        ensure_valid_plan(plan)
        plan.validate()
        # Shard journal records key on the query id; cluster-routed
        # nodes pick it up from here (see _cluster_route).
        self._current_query_id = query_id
        fatal = self.error_policy == "fail"
        tracer = getattr(self.context, "tracer", None)
        results: Dict[int, Any] = {}
        trace = ExecutionTrace()
        for index, node in enumerate(plan.nodes):
            inputs = [results[i] for i in node.inputs]
            if completed is not None and index in completed:
                output = completed[index]
                results[index] = output
                trace.nodes_replayed += 1
                trace.entries.append(
                    TraceEntry(
                        index=index,
                        operation=node.operation,
                        description=node.description,
                        records_in=_count_records(inputs[0]) if inputs else 0,
                        records_out=_count_records(output),
                        duration_s=0.0,
                        llm_cost_usd=0.0,
                        llm_calls=0,
                        result_preview=_preview(output),
                        document_ids=_document_ids(output),
                        replayed=True,
                    )
                )
                continue
            before = self.context.cost_tracker.summary()
            start = time.perf_counter()
            self._last_plan_stats = None
            self._last_cluster_stats = None
            error: Optional[str] = None
            op_span = None
            if tracer is not None:
                # op[i] names are unique per plan node, so two operators
                # with the same operation roll up separately in the
                # CostAccount.
                op_span = tracer.start_span(
                    f"op[{index}]:{node.operation}",
                    kind="operator",
                    operation=node.operation,
                    description=node.description,
                )
                trace.trace_id = trace.trace_id or op_span.trace_id
            try:
                check_scope()
                if op_span is not None:
                    with tracer.attach(op_span):
                        output = self._run_node(node, inputs, results)
                else:
                    output = self._run_node(node, inputs, results)
            except QueryCancelled as exc:
                # Cancellation never degrades: the submitter walked away,
                # a partial answer has no audience.
                if op_span is not None:
                    tracer.finish(
                        op_span, status="error", error=f"QueryCancelled: {exc}"
                    )
                raise
            except DeadlineExceeded as exc:
                if fatal:
                    if op_span is not None:
                        tracer.finish(
                            op_span,
                            status="error",
                            error=f"DeadlineExceeded: {exc}",
                        )
                    raise
                # Budget exhausted: this node (and, via the checkpoint at
                # the top of the loop, every later node) degrades to a
                # pass-through so the query lands promptly with a typed
                # partial result.
                error = f"DeadlineExceeded: {exc}"
                output = inputs[0] if inputs else []
            except (PlanValidationError, mathops.MathEvaluationError) as exc:
                if fatal:
                    if op_span is not None:
                        tracer.finish(
                            op_span,
                            status="error",
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    raise PlanExecutionError(
                        f"node {index} ({node.operation}): {exc}"
                    ) from exc
                error = f"{type(exc).__name__}: {exc}"
                output = inputs[0] if inputs else []
            except Exception as exc:  # noqa: BLE001 - contain under non-fatal policy
                if fatal:
                    if op_span is not None:
                        tracer.finish(
                            op_span,
                            status="error",
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    raise
                error = f"{type(exc).__name__}: {exc}"
                output = inputs[0] if inputs else []
            duration = time.perf_counter() - start
            after = self.context.cost_tracker.summary()
            if op_span is not None:
                op_span.set_attributes(
                    records_in=_count_records(inputs[0]) if inputs else 0,
                    records_out=_count_records(output),
                )
                tracer.finish(
                    op_span,
                    status="error" if error is not None else "ok",
                    error=error,
                )
            results[index] = output
            trace.nodes_executed += 1
            if journal_writer is not None and error is None:
                journal_writer(index, node.operation, output)
            node_stats = self._drain_plan_stats()
            if error is not None:
                trace.errors.append(f"node {index} ({node.operation}): {error}")
            if (
                error is not None
                or node_stats.dead_lettered
                or node_stats.skipped
                or node_stats.partial
            ):
                trace.partial = True
            trace.entries.append(
                TraceEntry(
                    index=index,
                    operation=node.operation,
                    description=node.description,
                    records_in=_count_records(inputs[0]) if inputs else 0,
                    records_out=_count_records(output),
                    duration_s=duration,
                    llm_cost_usd=after.cost_usd - before.cost_usd + node_stats.cost_usd,
                    llm_calls=after.calls - before.calls + node_stats.llm_calls,
                    result_preview=_preview(output),
                    document_ids=_document_ids(output),
                    dead_lettered=node_stats.dead_lettered,
                    skipped=node_stats.skipped,
                    error=error,
                )
            )
        return results[plan.result_node()], trace

    def _drain_plan_stats(self) -> _NodeStats:
        """The node's failure-containment and spend stats, merged from
        the DocSet execution layer and any cluster-routed segment."""
        stats = self._last_plan_stats
        self._last_plan_stats = None
        merged = self._last_cluster_stats or _NodeStats()
        self._last_cluster_stats = None
        if stats is not None:
            merged.dead_lettered += stats.total_dead_lettered()
            merged.skipped += stats.total_skipped()
        return merged

    def _run_docset_plan(self, plan: Plan) -> List[Document]:
        """Run a per-record DocSet plan under this executor's policy."""
        on_error = None if self.error_policy == "fail" else self.error_policy
        executor = self.context.executor(on_error=on_error)
        documents = executor.take_all(plan)
        self._last_plan_stats = executor.last_stats
        return documents

    # ------------------------------------------------------------------

    def _run_node(self, node: PlanNode, inputs: List[Any], results: Dict[int, Any]) -> Any:
        handler = getattr(self, f"_op_{node.operation.lower()}", None)
        if handler is None:
            raise PlanValidationError(f"no executor for operation {node.operation!r}")
        return handler(node, inputs, results)

    # Each handler takes (node, inputs, all_results) and returns the value.

    def _op_queryindex(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> List[Document]:
        index = self.context.catalog.get(str(node.params["index"]))
        query = node.params.get("query")
        if query:
            k = int(node.params.get("k", 20))
            return index.search_hybrid(str(query), k=k)
        documents = index.all_documents()
        filter_field = node.params.get("filter_field")
        if filter_field:
            # Scan-side structured filter, folded in by the cost-based
            # optimizer: read only records whose catalog field matches.
            get = aggregates.property_getter(str(filter_field))
            compare = _comparator(str(node.params.get("filter_op", "eq")))
            value = node.params.get("filter_value")
            kept = []
            for document in documents:
                actual = get(document)
                if actual is None:
                    continue
                try:
                    if compare(actual, value):
                        kept.append(document)
                except TypeError:
                    continue
            return kept
        return documents

    def _op_fromdocuments(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> List[Document]:
        index = self.context.catalog.get(str(node.params["index"]))
        doc_ids = [str(d) for d in node.params.get("doc_ids", [])]
        return index.docstore.get_many(doc_ids)

    def _op_basicfilter(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> List[Document]:
        documents = _require_documents(node, inputs[0])
        field_name = str(node.params["field"])
        op = str(node.params["op"])
        value = node.params["value"]
        get = aggregates.property_getter(field_name)
        compare = _comparator(op)
        kept = []
        for document in documents:
            actual = get(document)
            if actual is None:
                continue
            try:
                if compare(actual, value):
                    kept.append(document)
            except TypeError:
                continue
        return kept

    def _cluster_route(
        self, operation: str, documents: List[Document], **params: Any
    ) -> Optional[List[Document]]:
        """Scatter a per-record LLM operator across the context's cluster.

        Returns ``None`` when the node should run in-process instead: no
        cluster attached, too few documents to amortize scatter overhead
        (``min_cluster_docs``), or the cluster's admission gate rejected
        the segment (saturation degrades to local execution rather than
        failing the query). Byte-identity between the two paths is
        structural — workers rebuild their pipelines from the same
        transform factories this executor uses.
        """
        cluster = getattr(self.context, "cluster", None)
        if cluster is None:
            return None
        if len(documents) < cluster.config.min_cluster_docs:
            return None
        # Lazy imports: a module-level import here would close the
        # luna -> cluster -> serving -> luna cycle.
        from ..cluster.envelope import ShardOp, ShardPlanSpec
        from ..serving.service import Overloaded

        spec = ShardPlanSpec.from_ops(
            [ShardOp.make(operation, **{k: v for k, v in params.items() if v is not None})],
            default_model=self.context.default_model,
        )
        partial = "raise" if self.error_policy == "fail" else "typed"
        try:
            result = cluster.run_segment(
                documents,
                spec,
                query_id=self._current_query_id,
                partial=partial,
            )
        except Overloaded:
            return None
        self._last_cluster_stats = _NodeStats(
            dead_lettered=result.dead_lettered,
            skipped=result.skipped,
            partial=result.status == "partial",
            llm_calls=result.llm_calls,
            cost_usd=result.cost_usd,
        )
        return result.documents

    def _op_llmfilter(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> List[Document]:
        documents = _require_documents(node, inputs[0])
        cascade = node.params.get("cascade")
        if isinstance(cascade, dict):
            # Cascade-annotated nodes run in-process: the draft/escalate
            # decision is per-record state the cluster envelope does not
            # carry, and drafts are cheap enough not to need scattering.
            predicate = make_cascade_filter_fn(
                self.context,
                condition=str(node.params["condition"]),
                verify_model=str(node.params.get("model") or self.context.default_model),
                draft_model=str(cascade.get("draft_model", "sim-small")),
                draft_votes=int(cascade.get("draft_votes", 2)),
                confidence_threshold=float(cascade.get("confidence_threshold", 0.75)),
                priority=Priority.INTERACTIVE,
            )
            plan = Plan.from_items(documents).filter(
                predicate, name="luna_cascade_filter"
            )
            return self._run_docset_plan(plan)
        routed = self._cluster_route(
            "LlmFilter",
            documents,
            condition=str(node.params["condition"]),
            model=node.params.get("model"),
        )
        if routed is not None:
            return routed
        predicate = make_llm_filter_fn(
            self.context,
            condition=str(node.params["condition"]),
            model=node.params.get("model"),
            priority=Priority.INTERACTIVE,
        )
        plan = Plan.from_items(documents).filter(predicate, name="luna_llm_filter")
        return self._run_docset_plan(plan)

    def _op_llmextract(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> List[Document]:
        documents = _require_documents(node, inputs[0])
        field_name = str(node.params["field"])
        field_type = str(node.params.get("type", "string"))
        cascade = node.params.get("cascade")
        if isinstance(cascade, dict):
            fn = make_cascade_extract_fn(
                self.context,
                {field_name: field_type},
                verify_model=str(node.params.get("model") or self.context.default_model),
                draft_model=str(cascade.get("draft_model", "sim-small")),
                confidence_threshold=float(cascade.get("confidence_threshold", 0.75)),
                priority=Priority.INTERACTIVE,
            )
            plan = Plan.from_items(documents).map(fn, name="luna_cascade_extract")
            return self._run_docset_plan(plan)
        routed = self._cluster_route(
            "LlmExtract",
            documents,
            field=field_name,
            type=field_type,
            model=node.params.get("model"),
        )
        if routed is not None:
            return routed
        fn = make_extract_properties_fn(
            self.context,
            {field_name: field_type},
            model=node.params.get("model"),
            priority=Priority.INTERACTIVE,
        )
        plan = Plan.from_items(documents).map(fn, name="luna_llm_extract")
        return self._run_docset_plan(plan)

    def _op_count(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> int:
        return len(_require_documents(node, inputs[0]))

    def _op_aggregate(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> Any:
        documents = _require_documents(node, inputs[0])
        func = str(node.params["func"])
        field_name = str(node.params["field"])
        group_by = node.params.get("group_by")
        if group_by:
            return aggregates.grouped_aggregate(documents, func, field_name, str(group_by))
        return aggregates.aggregate_field(documents, func, field_name)

    def _op_topk(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> List[tuple]:
        documents = _require_documents(node, inputs[0])
        return aggregates.top_k_values(
            documents,
            str(node.params["field"]),
            k=int(node.params.get("k", 1)),
            descending=bool(node.params.get("descending", True)),
        )

    def _op_sort(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> List[Document]:
        documents = _require_documents(node, inputs[0])
        return aggregates.sort_documents(
            documents,
            str(node.params["field"]),
            descending=bool(node.params.get("descending", False)),
        )

    def _op_limit(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> List[Document]:
        documents = _require_documents(node, inputs[0])
        return documents[: int(node.params["k"])]

    def _op_distinct(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> List[Document]:
        documents = _require_documents(node, inputs[0])
        get = aggregates.property_getter(str(node.params["field"]))
        seen = set()
        kept = []
        for document in documents:
            value = get(document)
            try:
                key = value if not isinstance(value, list) else tuple(value)
                hash(key)
            except TypeError:
                key = str(value)
            if key in seen:
                continue
            seen.add(key)
            kept.append(document)
        return kept

    def _op_project(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> List[Any]:
        documents = _require_documents(node, inputs[0])
        fields = node.params["fields"]
        if isinstance(fields, str):
            fields = [fields]
        getters = [aggregates.property_getter(str(f)) for f in fields]
        if len(getters) == 1:
            return [getters[0](d) for d in documents]
        return [tuple(get(d) for get in getters) for d in documents]

    def _op_join(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> List[Document]:
        left = _require_documents(node, inputs[0])
        right = _require_documents(node, inputs[1])
        return aggregates.hash_join(
            left,
            right,
            str(node.params["left_on"]),
            str(node.params["right_on"]),
            how=str(node.params.get("how", "inner")),
        )

    def _op_math(self, node: PlanNode, inputs: List[Any], results: Dict[int, Any]) -> float:
        expression = str(node.params["expression"])
        values: Dict[int, float] = {}
        for reference in mathops.referenced_nodes(expression):
            if reference not in results:
                raise mathops.MathEvaluationError(
                    f"expression references unevaluated node #{reference}"
                )
            values[reference] = _as_number(results[reference])
        return mathops.evaluate(expression, values)

    def _op_summarize(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> str:
        documents = _require_documents(node, inputs[0])
        if not documents:
            return "No matching records."
        return summarize_collection(
            self.context,
            documents,
            model=node.params.get("model"),
            question=node.params.get("question"),
            priority=Priority.INTERACTIVE,
        )

    def _op_identity(self, node: PlanNode, inputs: List[Any], _: Dict[int, Any]) -> Any:
        return inputs[0]


# ----------------------------------------------------------------------


def _require_documents(node: PlanNode, value: Any) -> List[Document]:
    if isinstance(value, list) and all(isinstance(v, Document) for v in value):
        return value
    raise PlanValidationError(
        f"{node.operation} expects a document set input, got {type(value).__name__}"
    )


def _comparator(op: str):
    comparators = {
        "eq": lambda a, b: a == b,
        "ne": lambda a, b: a != b,
        "lt": lambda a, b: a < b,
        "le": lambda a, b: a <= b,
        "gt": lambda a, b: a > b,
        "ge": lambda a, b: a >= b,
        "contains": lambda a, b: str(b).lower() in str(a).lower(),
    }
    if op not in comparators:
        raise PlanValidationError(f"unknown comparison operator {op!r}")
    return comparators[op]


def _as_number(value: Any) -> float:
    if isinstance(value, bool):
        return float(int(value))
    if isinstance(value, (int, float)):
        return float(value)
    raise mathops.MathEvaluationError(
        f"node result {value!r} is not numeric"
    )


def _document_ids(value: Any, cap: int = 50) -> List[str]:
    if isinstance(value, list) and value and isinstance(value[0], Document):
        return [d.doc_id for d in value[:cap]]
    return []


def _count_records(value: Any) -> int:
    if isinstance(value, list):
        return len(value)
    return 1


def _preview(value: Any, limit: int = 80) -> str:
    if isinstance(value, list):
        if value and isinstance(value[0], Document):
            return f"{len(value)} documents"
        text = repr(value)
    elif isinstance(value, float):
        text = f"{value:.4f}"
    else:
        text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."
