"""Luna's plan optimizer.

"Query operators vary significantly in latency, computational load, and
monetary cost. The plan optimizer makes trade-offs based on cost vs
efficiency ... It is able to combine and batch operations when possible,
and make decisions about what technique (string matching vs semantic
matching), and tool (e.g., GPT-4 versus Llama 7B) to use" (§6.1).

Implemented rewrites, each reported in the optimization log:

* **filter pushdown** — structured ``BasicFilter`` nodes run before
  ``LlmFilter`` nodes within a filter chain, shrinking the record set the
  expensive per-record LLM calls see;
* **string-match substitution** — an ``LlmFilter`` whose condition maps
  onto an already-extracted boolean property becomes a free
  ``BasicFilter`` (semantic matching replaced by string/field matching);
* **filter fusion** — adjacent ``LlmFilter`` nodes fuse into one
  condition, halving LLM calls (batching of operations);
* **model selection** — semantic operators are annotated with the model
  tier the policy dictates (frontier vs cheap model);
* **batching** — semantic operators are annotated with a parallelism
  hint for the executor.

Rewrites never change node count or indexes (fused/substituted nodes
degrade to ``Identity`` or swap contents in place), so ``Math``
references like ``#4`` stay valid and the user can diff original vs
optimized plans node by node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..llm import knowledge
from .operators import LogicalPlan, PlanNode

_FILTER_OPS = ("BasicFilter", "LlmFilter")


@dataclass(frozen=True)
class OptimizerPolicy:
    """A point on the cost/quality trade-off curve."""

    name: str
    filter_model: str
    extract_model: str
    summarize_model: str
    enable_pushdown: bool = True
    enable_string_substitution: bool = True
    enable_fusion: bool = True
    llm_parallelism: int = 8
    #: Cheap-model-first cascades (repro.optimizer): eligible semantic
    #: operators draft on ``cascade_draft_model`` and escalate to the
    #: policy's model only below ``cascade_confidence_threshold``.
    cascade: bool = False
    cascade_draft_model: str = "sim-small"
    cascade_votes: int = 2
    cascade_confidence_threshold: float = 0.75


QUALITY_POLICY = OptimizerPolicy(
    name="quality",
    filter_model="sim-large",
    extract_model="sim-large",
    summarize_model="sim-large",
    enable_fusion=False,  # keep every semantic decision separate
)
BALANCED_POLICY = OptimizerPolicy(
    name="balanced",
    filter_model="sim-medium",
    extract_model="sim-large",
    summarize_model="sim-medium",
)
COST_POLICY = OptimizerPolicy(
    name="cost",
    filter_model="sim-small",
    extract_model="sim-small",
    summarize_model="sim-small",
)
#: Quality-tier models, but every eligible semantic operator drafts on
#: sim-small first and only escalates to sim-large on low-confidence
#: rows — the ScaleDoc-style predicate cascade (docs/OPTIMIZER.md).
CASCADE_POLICY = OptimizerPolicy(
    name="cascade",
    filter_model="sim-large",
    extract_model="sim-large",
    summarize_model="sim-large",
    enable_fusion=False,  # keep cascade decisions per-condition
    cascade=True,
)

POLICIES: Dict[str, OptimizerPolicy] = {
    policy.name: policy
    for policy in (QUALITY_POLICY, BALANCED_POLICY, COST_POLICY, CASCADE_POLICY)
}


class LunaOptimizer:
    """Applies policy-driven rewrites to a validated logical plan."""

    def __init__(self, policy: OptimizerPolicy = BALANCED_POLICY):
        self.policy = policy

    def optimize(
        self, plan: LogicalPlan, schema: Optional[Dict[str, str]] = None
    ) -> Tuple[LogicalPlan, List[str]]:
        """Return (optimized plan, log of applied rewrites)."""
        plan = plan.copy()
        log: List[str] = []
        if self.policy.enable_string_substitution and schema:
            log.extend(self._substitute_string_match(plan, schema))
        if self.policy.enable_pushdown:
            log.extend(self._push_down_basic_filters(plan))
        if self.policy.enable_fusion:
            log.extend(self._fuse_llm_filters(plan))
        log.extend(self._select_models(plan))
        return plan, log

    # ------------------------------------------------------------------

    def _filter_chains(self, plan: LogicalPlan) -> List[List[int]]:
        """Maximal runs of single-input filter nodes forming a chain."""
        chains: List[List[int]] = []
        used = set()
        for index, node in enumerate(plan.nodes):
            if index in used or node.operation not in _FILTER_OPS:
                continue
            # Start of a chain: predecessor is not a filter in the chain.
            prev = node.inputs[0] if node.inputs else None
            if prev is not None and plan.nodes[prev].operation in _FILTER_OPS:
                continue
            chain = [index]
            used.add(index)
            current = index
            while True:
                consumers = [
                    c
                    for c in plan.consumers_of(current)
                    if plan.nodes[c].operation in _FILTER_OPS
                    and plan.nodes[c].inputs == [current]
                ]
                # Only extend single-consumer links: reordering a fan-out
                # point would change what the other consumers see.
                if len(consumers) != 1 or len(plan.consumers_of(current)) != 1:
                    break
                current = consumers[0]
                chain.append(current)
                used.add(current)
            if len(chain) > 1:
                chains.append(chain)
        return chains

    def _push_down_basic_filters(self, plan: LogicalPlan) -> List[str]:
        log = []
        for chain in self._filter_chains(plan):
            contents = [plan.nodes[i] for i in chain]
            reordered = sorted(
                contents, key=lambda n: 0 if n.operation == "BasicFilter" else 1
            )
            if [n.operation for n in reordered] != [n.operation for n in contents]:
                # Snapshot the chain's wiring before touching any node:
                # reordered shares node objects with the plan, so reading
                # inputs lazily would observe already-mutated state.
                original_inputs = [list(plan.nodes[p].inputs) for p in chain]
                for position, node, inputs in zip(chain, reordered, original_inputs):
                    node.inputs = inputs
                    plan.nodes[position] = node
                log.append(
                    "pushdown: reordered filter chain "
                    + "->".join(str(i) for i in chain)
                    + " to run structured filters before LLM filters"
                )
        return log

    def _substitute_string_match(
        self, plan: LogicalPlan, schema: Dict[str, str]
    ) -> List[str]:
        log = []
        boolean_fields = {
            name for name, type_name in schema.items() if type_name == "bool"
        }
        for index, node in enumerate(plan.nodes):
            if node.operation != "LlmFilter":
                continue
            condition = str(node.params.get("condition", ""))
            match = _boolean_field_for_condition(condition, boolean_fields)
            if match is None:
                continue
            field, value = match
            plan.nodes[index] = PlanNode(
                operation="BasicFilter",
                inputs=node.inputs,
                description=f"Filter on extracted field {field} = {value} "
                f"(substituted for semantic match on {condition!r})",
                params={"field": field, "op": "eq", "value": value},
            )
            log.append(
                f"string-match: node {index} LlmFilter({condition!r}) -> "
                f"BasicFilter({field} eq {value})"
            )
        return log

    def _fuse_llm_filters(self, plan: LogicalPlan) -> List[str]:
        log = []
        for chain in self._filter_chains(plan):
            previous_llm: Optional[int] = None
            for index in chain:
                node = plan.nodes[index]
                if node.operation != "LlmFilter":
                    previous_llm = None
                    continue
                if previous_llm is None:
                    previous_llm = index
                    continue
                base = plan.nodes[previous_llm]
                fused_condition = (
                    f"{base.params['condition']} and {node.params['condition']}"
                )
                base.params["condition"] = fused_condition
                base.description = f"Semantically filter: {fused_condition!r}"
                plan.nodes[index] = PlanNode(
                    operation="Identity",
                    inputs=node.inputs,
                    description=f"(fused into step {previous_llm + 1})",
                )
                log.append(
                    f"fusion: node {index} fused into node {previous_llm} "
                    f"as condition {fused_condition!r}"
                )
        return log

    def _select_models(self, plan: LogicalPlan) -> List[str]:
        log = []
        model_by_op = {
            "LlmFilter": self.policy.filter_model,
            "LlmExtract": self.policy.extract_model,
            "Summarize": self.policy.summarize_model,
        }
        for index, node in enumerate(plan.nodes):
            model = model_by_op.get(node.operation)
            if model is None:
                continue
            node.params["model"] = model
            node.params["parallelism"] = self.policy.llm_parallelism
            log.append(f"model: node {index} {node.operation} -> {model}")
        return log


def _boolean_field_for_condition(
    condition: str, boolean_fields: set
) -> Optional[Tuple[str, bool]]:
    """Map a semantic condition onto an extracted boolean field, if safe.

    A condition maps to field F when a concept referenced by the condition
    is the same concept F's name denotes (e.g. "weather related incidents"
    -> ``weather_related``; "whose CEO recently changed" -> ``ceo_changed``).
    Negated conditions map to ``False``.
    """
    concepts = set(knowledge.match_concepts(condition))
    if not concepts:
        return None
    negated = any(
        marker in f" {knowledge.normalize(condition)} "
        for marker in (" not ", " no ", " without ")
    )
    for field in sorted(boolean_fields):
        field_concepts = set(knowledge.match_concepts(field.replace("_", " ")))
        if field_concepts and field_concepts == concepts:
            return field, (not negated)
    return None
