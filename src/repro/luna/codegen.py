"""Plan -> Sycamore code generation.

"Query plans are translated into Sycamore code in Python. ... The query
execution code is easy for a technically savvy user to understand and
modify" (§6.1). This module renders a logical plan as the Python script
the paper shows in §6.2::

    out_0 = context.read.index("ntsb")
    out_1 = out_0.llm_filter("caused by environmental factors")
    out_2 = out_1.count()
    out_3 = out_1.llm_filter("caused by wind")
    out_4 = out_3.count()
    result = math_operation(expr="100 * {out_4} / {out_2}")

The generated script is executable documentation: the Luna executor
interprets the same plan, and a test asserts both paths agree.
"""

from __future__ import annotations

import re
from typing import List

from .operators import LogicalPlan, PlanNode


def generate_code(plan: LogicalPlan) -> str:
    """Render a validated plan as a Sycamore-style Python script."""
    lines: List[str] = []
    last = plan.result_node()
    for index, node in enumerate(plan.nodes):
        target = "result" if index == last else f"out_{index}"
        lines.append(f"{target} = {_expression(node, index)}")
    return "\n".join(lines)


def _ref(index: int) -> str:
    return f"out_{index}"


def _expression(node: PlanNode, index: int) -> str:
    op = node.operation
    params = node.params
    if op == "QueryIndex":
        query = params.get("query")
        if query:
            return f"context.read.index({params['index']!r}, query={query!r})"
        return f"context.read.index({params['index']!r})"
    if op == "FromDocuments":
        count = len(params.get("doc_ids", []))
        return (
            f"context.read.documents(previous_answer_documents)  # {count} docs"
        )
    source = _ref(node.inputs[0]) if node.inputs else "context"
    if op == "BasicFilter":
        return (
            f"{source}.filter_by_property({params['field']!r}, "
            f"{params['op']!r}, {params['value']!r})"
        )
    if op == "LlmFilter":
        model = params.get("model")
        model_arg = f", model={model!r}" if model else ""
        return f"{source}.llm_filter({params['condition']!r}{model_arg})"
    if op == "LlmExtract":
        field_type = params.get("type", "string")
        model = params.get("model")
        model_arg = f", model={model!r}" if model else ""
        return (
            f"{source}.extract_properties({{{params['field']!r}: "
            f"{field_type!r}}}{model_arg})"
        )
    if op == "Count":
        return f"{source}.count()"
    if op == "Aggregate":
        group = params.get("group_by")
        group_arg = f", group_by={group!r}" if group else ""
        return f"{source}.aggregate({params['func']!r}, {params['field']!r}{group_arg})"
    if op == "TopK":
        return (
            f"{source}.top_k({params['field']!r}, k={params.get('k', 1)}, "
            f"descending={params.get('descending', True)})"
        )
    if op == "Sort":
        return (
            f"{source}.sort({params['field']!r}, "
            f"descending={params.get('descending', False)})"
        )
    if op == "Limit":
        return f"{source}.limit({params['k']})"
    if op == "Distinct":
        return f"{source}.distinct({params['field']!r})"
    if op == "Project":
        return f"{source}.project({params['fields']!r})"
    if op == "Join":
        other = _ref(node.inputs[1])
        return (
            f"{source}.join({other}, left_on={params['left_on']!r}, "
            f"right_on={params['right_on']!r})"
        )
    if op == "Math":
        expression = str(params["expression"])
        braced = re.sub(r"#(\d+)", r"{out_\1}", expression)
        return f"math_operation(expr={braced!r})"
    if op == "Summarize":
        question = params.get("question")
        question_arg = f"question={question!r}" if question else ""
        return f"{source}.summarize_all({question_arg})"
    if op == "Identity":
        return source
    raise ValueError(f"cannot generate code for operation {op!r}")
