"""The Luna facade: natural-language analytics with a human in the loop.

The top-level query flow of §6: plan (LLM) -> optimize -> translate to
Sycamore code -> execute with tracing. Every intermediate artefact — the
raw plan, the optimized plan, the optimization log, the generated code,
the per-operator trace — is kept on the :class:`LunaResult`, because the
paper's central design argument is that users must be able to inspect,
trust, and *correct* what the system did.

Human-in-the-loop editing goes through :class:`LunaSession`: plan first,
let the user inspect/modify nodes, then execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis.plancheck import ensure_valid_plan
from ..lifecycle.journal import JournalError, QueryJournal, plan_json_fingerprint
from ..observability.cost import CostAccount
from ..sycamore.context import SycamoreContext
from .codegen import generate_code
from .executor import ExecutionTrace, LunaExecutor
from .operators import LogicalPlan, PlanNode
from .optimizer import BALANCED_POLICY, LunaOptimizer, OptimizerPolicy, POLICIES
from .history import QueryHistory
from .planner import LunaPlanner


@dataclass
class LunaResult:
    """Everything produced by one Luna query."""

    question: str
    index: str
    plan: LogicalPlan
    optimized_plan: LogicalPlan
    optimization_log: List[str]
    code: str
    answer: Any
    trace: ExecutionTrace
    #: True when failure containment dropped records or degraded operators
    #: along the way: the answer was computed from incomplete data.
    partial: bool = False

    def explain(self) -> str:
        """A full, auditable account of how the answer was computed."""
        parts = [
            f"Question: {self.question}",
            f"Index: {self.index}",
            "",
            "Plan:",
            self.optimized_plan.to_natural_language(),
            "",
            "Generated Sycamore code:",
            self.code,
            "",
            "Execution trace:",
            self.trace.render(),
            "",
            f"Answer: {self.answer!r}",
            f"Total LLM calls: {self.trace.total_llm_calls()}  "
            f"cost: ${self.trace.total_cost_usd():.4f}",
        ]
        if self.trace.cost is not None and self.trace.cost.operators:
            parts += ["", "Cost account (from trace spans):", self.trace.cost.render()]
        if self.trace.optimizer_report is not None:
            parts += ["", self.trace.optimizer_report.render()]
        if self.trace.trace_id:
            parts.append(f"Trace id: {self.trace.trace_id}")
        if self.partial:
            parts.append(
                "WARNING: partial answer — "
                f"{self.trace.total_dead_lettered()} records dead-lettered, "
                f"{self.trace.total_skipped()} skipped, "
                f"{len(self.trace.errors)} operators degraded."
            )
        if self.optimization_log:
            parts.insert(5, "")
            parts.insert(6, "Optimizations applied:")
            parts.insert(7, "\n".join(f"  - {line}" for line in self.optimization_log))
        return "\n".join(parts)


class Luna:
    """LLM-powered unstructured analytics over a Sycamore context.

    ``policy`` selects the optimizer's cost/quality point ("quality",
    "balanced", or "cost" — or a custom :class:`OptimizerPolicy`).

    ``error_policy`` selects failure containment at query time: ``fail``
    aborts on any operator failure; ``skip`` / ``dead_letter`` contain
    per-record LLM failures, degrade failed operators, and flag the
    answer as partial instead of raising.
    """

    def __init__(
        self,
        context: SycamoreContext,
        planner_model: str = "sim-large",
        policy: "OptimizerPolicy | str" = BALANCED_POLICY,
        error_policy: str = "fail",
        journal: Optional[QueryJournal] = None,
        stats_store: Optional[Any] = None,
        optimizer: Optional[Any] = None,
    ):
        self.context = context
        # Optional write-ahead journal: queries submitted with a
        # ``query_id`` checkpoint per-node outputs durably, and
        # :meth:`resume` can pick a crashed query back up.
        self.journal = journal
        # Planning is the most latency-sensitive traffic in the system (a
        # user is staring at the prompt): submit it at INTERACTIVE
        # priority when the context routes through a scheduler.
        self.planner = LunaPlanner(
            context.llm_for("interactive"), model=planner_model
        )
        if isinstance(policy, str):
            try:
                policy = POLICIES[policy]
            except KeyError:
                raise ValueError(
                    f"unknown policy {policy!r}; known: {sorted(POLICIES)}"
                ) from None
        # Optional adaptive-statistics loop (repro.optimizer): a live
        # StatsStore both informs the cost-based rewrites and accumulates
        # each execution's observed selectivity/$-per-row figures. The
        # serving layer instead passes ``optimizer`` built against a
        # *frozen* snapshot (cache-key stability) and keeps ``stats_store``
        # live so observations still land.
        self.stats_store = stats_store
        if optimizer is not None:
            self.optimizer = optimizer
        else:
            # Local import: repro.optimizer imports from this package.
            from ..optimizer import CostBasedOptimizer

            self.optimizer = CostBasedOptimizer(policy, stats=stats_store)
        self.executor = LunaExecutor(context, error_policy=error_policy)
        self.history = QueryHistory()

    # ------------------------------------------------------------------

    def query(
        self,
        question: str,
        index: str,
        secondary_indexes: "tuple | list" = (),
        query_id: str = "",
    ) -> LunaResult:
        """Plan, optimize and execute a natural-language question.

        ``secondary_indexes`` names additional catalog indexes the
        planner may join against — the data-integration pattern of §1
        ("the competitive information may involve a lookup in a
        database").

        ``query_id`` (with a journal-equipped Luna) turns on per-node
        checkpointing so the query can be :meth:`resume`-d after a crash.
        """
        session = self.session(question, index, secondary_indexes)
        return session.run(query_id=query_id)

    def session(
        self,
        question: str,
        index: str,
        secondary_indexes: "tuple | list" = (),
    ) -> "LunaSession":
        """Start an inspect-before-run session (human-in-the-loop)."""
        named_index = self.context.catalog.get(index)
        secondary = [self.context.catalog.get(name) for name in secondary_indexes]
        tracer = getattr(self.context, "tracer", None)
        if tracer is not None:
            # Planning is traced separately from execution: a session may
            # sit between plan and run (human inspection) for minutes.
            with tracer.span("plan:luna", kind="plan", question=question):
                plan = self.planner.plan(question, named_index, secondary=secondary)
        else:
            plan = self.planner.plan(question, named_index, secondary=secondary)
        return LunaSession(
            luna=self, question=question, index=index, plan=plan
        )

    def follow_up(self, question: str) -> LunaResult:
        """Ask a question *about the previous answer's documents* (§6.1).

        The iterative-refinement loop: "of those, how many were in
        Alaska?" plans like a normal question, but its source node is
        replaced by the supporting documents of the last recorded query —
        so filters compose across turns. Requires a prior query whose
        trace carries document provenance.
        """
        last = self.history.last()
        if last is None:
            raise ValueError("no previous query to follow up on")
        doc_ids = last.result.trace.supporting_documents()
        if not doc_ids:
            raise ValueError(
                "the previous answer has no document provenance to follow up on"
            )
        index = last.result.index
        named_index = self.context.catalog.get(index)
        plan = self.planner.plan(question, named_index)
        for node in plan.nodes:
            if node.operation == "QueryIndex":
                node.operation = "FromDocuments"
                node.params = {"index": index, "doc_ids": list(doc_ids)}
                node.description = (
                    f"Start from the {len(doc_ids)} records of the previous answer"
                )
        plan.validate()
        return self.execute_plan(question, index, plan)

    def execute_plan(
        self,
        question: str,
        index: str,
        plan: LogicalPlan,
        query_id: str = "",
    ) -> LunaResult:
        """Optimize and execute an explicit plan (bypassing the planner).

        With a traced context, the whole execution becomes one span tree
        rooted at a ``query`` span (each query is its own trace), and the
        resulting :class:`ExecutionTrace` carries the ``trace_id`` and a
        span-derived :class:`~repro.observability.CostAccount`.

        With a journal and a ``query_id``, the *optimized* plan is logged
        before execution and every node output is durably checkpointed —
        the begin record stores the post-optimizer plan precisely so that
        :meth:`resume` can skip planner and optimizer entirely and replay
        against the exact DAG the crashed run was executing.
        """
        named_index = self.context.catalog.get(index)
        # Static plan checks gate *every* execution path — planner
        # output, follow-ups, and hand-built/edited session plans — so
        # an invalid plan fails here with a structured
        # :class:`~repro.analysis.plancheck.PlanCheckError`, never
        # halfway through execution.
        ensure_valid_plan(
            plan,
            schema=named_index.schema,
            known_indexes={
                name: self.context.catalog.get(name).schema
                for name in self.context.catalog.names()
            },
        )
        tracer = getattr(self.context, "tracer", None)
        if tracer is None:
            optimized, log, report = self._optimize(plan, named_index)
            code = generate_code(optimized)
            writer = self._journal_begin(query_id, question, index, optimized)
            answer, trace = self.executor.execute(
                optimized, journal_writer=writer, query_id=query_id
            )
        else:
            # Ambient-parented: standalone queries root their own trace
            # (the historical behaviour); queries run under the serving
            # layer nest beneath its per-request ``serve`` root span.
            query_span = tracer.start_span(
                "query:luna",
                kind="query",
                question=question,
                index=index,
            )
            try:
                with tracer.attach(query_span):
                    with tracer.span("plan:optimize", kind="plan"):
                        optimized, log, report = self._optimize(plan, named_index)
                        code = generate_code(optimized)
                    writer = self._journal_begin(
                        query_id, question, index, optimized
                    )
                    answer, trace = self.executor.execute(
                        optimized, journal_writer=writer, query_id=query_id
                    )
            except BaseException as exc:
                tracer.finish(
                    query_span,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
                raise
            tracer.finish(query_span)
            trace.trace_id = query_span.trace_id
            trace.cost = CostAccount.from_spans(
                tracer.trace_spans(query_span.trace_id)
            )
            # When nested under a still-open serving span, the trace root
            # has no duration yet; the query span's own wall time is the
            # honest figure either way.
            trace.cost.wall_clock_s = query_span.duration_s
        if report is not None:
            report.record_actuals(trace)
            trace.optimizer_report = report
        if self.stats_store is not None and hasattr(self.stats_store, "observe"):
            # Close the adaptive loop: fold this execution's observed
            # selectivity/$-per-row back into the live store.
            self.stats_store.observe(optimized, trace)
        if self.journal is not None and query_id:
            self.journal.commit(query_id, answer)
        result = LunaResult(
            question=question,
            index=index,
            plan=plan,
            optimized_plan=optimized,
            optimization_log=log,
            code=code,
            answer=answer,
            trace=trace,
            partial=trace.partial,
        )
        self.history.record(result)
        return result

    def _optimize(self, plan: LogicalPlan, named_index) -> "tuple":
        """Run the configured optimizer; returns (plan, log, report|None).

        A :class:`~repro.optimizer.CostBasedOptimizer` also produces the
        :class:`~repro.optimizer.OptimizerReport` attached to the trace;
        a plain :class:`LunaOptimizer` yields no report.
        """
        if hasattr(self.optimizer, "optimize_with_report"):
            return self.optimizer.optimize_with_report(
                plan,
                schema=named_index.schema,
                source_rows=float(len(named_index)),
            )
        optimized, log = self.optimizer.optimize(plan, schema=named_index.schema)
        return optimized, log, None

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def _journal_begin(self, query_id, question, index, optimized):
        """Open the write-ahead log for this execution (no-op without a
        journal or a query id); returns the per-node checkpoint writer."""
        if self.journal is None or not query_id:
            return None
        journal = self.journal
        journal.begin(
            query_id,
            question=question,
            index=index,
            plan_json=optimized.to_json(),
            error_policy=self.executor.error_policy,
        )
        return lambda i, op, value: journal.node_complete(query_id, i, op, value)

    def resume(self, query_id: str) -> LunaResult:
        """Resume a journaled query in a fresh process after a crash.

        The journal stores the *optimized* plan, so resume skips planner
        and optimizer entirely: the exact DAG the crashed run was
        executing is re-hydrated (validated against the journaled
        fingerprint), checkpointed nodes are replayed from their durable
        outputs, and only nodes past the last checkpoint re-execute.
        Over a deterministic context this makes the resumed answer
        byte-identical to an uninterrupted run.
        """
        if self.journal is None:
            raise ValueError(
                "this Luna has no journal; construct with journal= to resume"
            )
        journal = self.journal
        state = journal.load(query_id)
        optimized = LogicalPlan.from_json(state.plan_json)
        rehydrated = plan_json_fingerprint(optimized.to_json())
        if rehydrated != state.fingerprint:
            raise JournalError(
                f"journaled plan for {query_id!r} does not survive the "
                f"round-trip: fingerprint {rehydrated} != {state.fingerprint}"
            )
        code = generate_code(optimized)
        writer = lambda i, op, value: journal.node_complete(query_id, i, op, value)  # noqa: E731
        tracer = getattr(self.context, "tracer", None)
        if tracer is None:
            answer, trace = self.executor.execute(
                optimized,
                completed=state.completed,
                journal_writer=writer,
                query_id=query_id,
            )
        else:
            query_span = tracer.start_span(
                "query:luna",
                kind="query",
                question=state.question,
                index=state.index,
                resumed=True,
            )
            try:
                with tracer.attach(query_span):
                    answer, trace = self.executor.execute(
                        optimized,
                        completed=state.completed,
                        journal_writer=writer,
                        query_id=query_id,
                    )
            except BaseException as exc:
                tracer.finish(
                    query_span,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
                raise
            tracer.finish(query_span)
            trace.trace_id = query_span.trace_id
            trace.cost = CostAccount.from_spans(
                tracer.trace_spans(query_span.trace_id)
            )
            trace.cost.wall_clock_s = query_span.duration_s
        journal.commit(query_id, answer)
        journal.registry.counter("lifecycle.resumes").inc()
        journal.registry.counter("lifecycle.nodes_replayed").inc(
            trace.nodes_replayed
        )
        journal.registry.counter("lifecycle.nodes_reexecuted").inc(
            trace.nodes_executed
        )
        result = LunaResult(
            question=state.question,
            index=state.index,
            plan=optimized,
            optimized_plan=optimized,
            optimization_log=[
                f"resumed from journal checkpoint: {trace.nodes_replayed} "
                f"node(s) replayed, {trace.nodes_executed} re-executed"
            ],
            code=code,
            answer=answer,
            trace=trace,
            partial=trace.partial,
        )
        self.history.record(result)
        return result


@dataclass
class LunaSession:
    """A planned-but-not-executed query the user can inspect and edit.

    "The inability to correct or refine a query causes significant
    difficulty... users have full control over how their query is
    answered" (§6.1). Edits operate on plan nodes by index.
    """

    luna: Luna
    question: str
    index: str
    plan: LogicalPlan

    def show_plan(self) -> str:
        """The plan narrated step by step."""
        return self.plan.to_natural_language()

    def set_param(self, node_index: int, name: str, value: Any) -> "LunaSession":
        """Override one parameter of one plan node (e.g. fix a condition)."""
        node = self._node(node_index)
        node.params[name] = value
        node.description = f"{node.description} [edited: {name}={value!r}]"
        return self

    def replace_node(self, node_index: int, replacement: Dict[str, Any]) -> "LunaSession":
        """Swap a whole node, keeping its position and inputs by default."""
        node = self._node(node_index)
        new_node = PlanNode.from_dict(replacement)
        if not new_node.inputs:
            new_node.inputs = list(node.inputs)
        self.plan.nodes[node_index] = new_node
        return self

    def remove_filter(self, node_index: int) -> "LunaSession":
        """Neutralize a filter node the planner added by mistake."""
        node = self._node(node_index)
        self.plan.nodes[node_index] = PlanNode(
            operation="Identity",
            inputs=list(node.inputs),
            description=f"(removed: {node.description})",
        )
        return self

    def run(self, query_id: str = "") -> LunaResult:
        """Execute the (possibly edited) plan and return the result."""
        self.plan.validate()
        return self.luna.execute_plan(
            self.question, self.index, self.plan, query_id=query_id
        )

    def _node(self, node_index: int) -> PlanNode:
        if not 0 <= node_index < len(self.plan.nodes):
            raise IndexError(
                f"plan has {len(self.plan.nodes)} nodes; no node {node_index}"
            )
        return self.plan.nodes[node_index]
