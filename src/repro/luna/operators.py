"""Luna's logical query operators and plan representation.

Per §6.1, Luna supports "a combination of traditional data-processing
operators (count, aggregate, join) and semantic operators (llmFilter,
llmExtract)". A :class:`LogicalPlan` is a DAG in JSON form: a list of
operator nodes where node *i* consumes earlier nodes via ``inputs`` and
``Math`` expressions reference results as ``#i``. This is exactly the
format the planner LLM emits and the format shown to the user for
inspection and editing (the human-in-the-loop tenet).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set


class PlanValidationError(ValueError):
    """The plan JSON is structurally invalid for execution."""


#: The per-record subset of the operator algebra: each output document
#: depends on exactly one input document, so a run of these operators
#: can be partitioned across cluster shards and merged order-stably
#: (see :mod:`repro.cluster`). This is the canonical definition; the
#: cluster's envelope layer imports it rather than re-declaring it.
SHARDABLE_OPERATIONS = ("BasicFilter", "LlmFilter", "LlmExtract")

#: Operations the cost-based optimizer may annotate with a cheap-model
#: draft/verify cascade (see :mod:`repro.optimizer` and
#: ``docs/OPTIMIZER.md``). Both make one semantic judgement per record
#: whose confidence the executor can score to decide escalation.
CASCADE_ELIGIBLE_OPERATIONS = ("LlmFilter", "LlmExtract")

#: operation name -> (required fields, arity). Arity is the number of
#: inputs the operator consumes: 0 (source), 1, 2, or "+" (1 or more).
OPERATOR_SPECS: Dict[str, Dict[str, Any]] = {
    "QueryIndex": {"required": ("index",), "arity": 0},
    "FromDocuments": {"required": ("index", "doc_ids"), "arity": 0},
    "BasicFilter": {"required": ("field", "op", "value"), "arity": 1},
    "LlmFilter": {"required": ("condition",), "arity": 1},
    "LlmExtract": {"required": ("field",), "arity": 1},
    "Count": {"required": (), "arity": 1},
    "Aggregate": {"required": ("func", "field"), "arity": 1},
    "TopK": {"required": ("field",), "arity": 1},
    "Sort": {"required": ("field",), "arity": 1},
    "Limit": {"required": ("k",), "arity": 1},
    "Project": {"required": ("fields",), "arity": 1},
    "Distinct": {"required": ("field",), "arity": 1},
    "Join": {"required": ("left_on", "right_on"), "arity": 2},
    "Math": {"required": ("expression",), "arity": "+"},
    "Summarize": {"required": (), "arity": 1},
    "Identity": {"required": (), "arity": 1},
}


@dataclass
class PlanNode:
    """One operator node of a logical plan."""

    operation: str
    inputs: List[int] = field(default_factory=list)
    description: str = ""
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        data = {
            "operation": self.operation,
            "description": self.description,
            "inputs": list(self.inputs),
        }
        data.update(self.params)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PlanNode":
        """Rebuild from a dictionary produced by ``to_dict``."""
        if not isinstance(data, dict):
            raise PlanValidationError(
                f"plan node must be an object, got {type(data).__name__}"
            )
        operation = data.get("operation", "")
        if not isinstance(operation, str):
            raise PlanValidationError(f"node operation must be a string, got {operation!r}")
        inputs = data.get("inputs", [])
        if inputs is None:
            inputs = []
        if not isinstance(inputs, list):
            raise PlanValidationError(f"node inputs must be a list, got {inputs!r}")
        description = data.get("description", "")
        if not isinstance(description, str):
            description = str(description)
        known = {"operation", "description", "inputs"}
        return cls(
            operation=operation,
            description=description,
            inputs=list(inputs),
            params={k: v for k, v in data.items() if k not in known},
        )


@dataclass
class LogicalPlan:
    """An ordered DAG of plan nodes; the last node is the plan's result."""

    nodes: List[PlanNode] = field(default_factory=list)

    # ------------------------------------------------------------------

    @classmethod
    def from_json(cls, payload: Any) -> "LogicalPlan":
        """Build from the planner LLM's JSON (a list, or {"nodes": [...]})."""
        if isinstance(payload, str):
            payload = json.loads(payload)
        if isinstance(payload, dict) and "nodes" in payload:
            payload = payload["nodes"]
        if not isinstance(payload, list):
            raise PlanValidationError(f"plan must be a list of nodes, got {type(payload).__name__}")
        return cls(nodes=[PlanNode.from_dict(node) for node in payload])

    def to_json(self) -> str:
        """Serialise the plan to indented JSON."""
        return json.dumps([node.to_dict() for node in self.nodes], indent=2)

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`PlanValidationError` on any structural problem."""
        if not self.nodes:
            raise PlanValidationError("empty plan")
        for index, node in enumerate(self.nodes):
            spec = OPERATOR_SPECS.get(node.operation)
            if spec is None:
                raise PlanValidationError(
                    f"node {index}: unknown operation {node.operation!r}"
                )
            for name in spec["required"]:
                if name not in node.params:
                    raise PlanValidationError(
                        f"node {index} ({node.operation}): missing field {name!r}"
                    )
            arity = spec["arity"]
            if arity == "+" and len(node.inputs) < 1:
                raise PlanValidationError(
                    f"node {index} ({node.operation}): needs at least one input"
                )
            if isinstance(arity, int) and len(node.inputs) != arity:
                raise PlanValidationError(
                    f"node {index} ({node.operation}): expected {arity} inputs, "
                    f"got {len(node.inputs)}"
                )
            for input_index in node.inputs:
                if not isinstance(input_index, int) or not 0 <= input_index < index:
                    raise PlanValidationError(
                        f"node {index}: input {input_index!r} must reference an "
                        f"earlier node"
                    )

    def result_node(self) -> int:
        """Index of the node whose output is the query's answer.

        The final node by convention; validated plans are topologically
        ordered so this is always a sink.
        """
        return len(self.nodes) - 1

    def consumers_of(self, index: int) -> List[int]:
        """Indexes of nodes consuming the given node's output."""
        return [
            i
            for i, node in enumerate(self.nodes)
            if index in node.inputs
            or (
                node.operation == "Math"
                and f"#{index}" in str(node.params.get("expression", ""))
            )
        ]

    def llm_nodes(self) -> List[int]:
        """Indexes of operators that call an LLM at execution time."""
        return [
            i
            for i, node in enumerate(self.nodes)
            if node.operation in ("LlmFilter", "LlmExtract", "Summarize")
        ]

    def shardable_segments(self, require_llm: bool = True) -> List[List[int]]:
        """Maximal runs of consecutive per-record operators.

        A segment is a list of node indexes ``[a, a+1, ..., b]`` where
        every operation is in :data:`SHARDABLE_OPERATIONS`, each node
        consumes exactly the previous one, and no interior node has an
        external consumer — i.e. a linear per-record chain the cluster
        layer can scatter as one fused sub-plan. ``require_llm`` drops
        segments with no LLM operator (sharding a lone BasicFilter costs
        more in scatter overhead than it saves).
        """
        segments: List[List[int]] = []
        current: List[int] = []
        for index, node in enumerate(self.nodes):
            extends = (
                node.operation in SHARDABLE_OPERATIONS
                and len(node.inputs) == 1
                and bool(current)
                and node.inputs[0] == current[-1]
                and self.consumers_of(current[-1]) == [index]
            )
            if extends:
                current.append(index)
                continue
            if current:
                segments.append(current)
            if node.operation in SHARDABLE_OPERATIONS and len(node.inputs) == 1:
                current = [index]
            else:
                current = []
        if current:
            segments.append(current)
        if require_llm:
            segments = [
                segment
                for segment in segments
                if any(
                    self.nodes[i].operation in ("LlmFilter", "LlmExtract")
                    for i in segment
                )
            ]
        return segments

    def to_natural_language(self) -> str:
        """The plan narrated step by step (§6.1: plans as natural text)."""
        lines = []
        for index, node in enumerate(self.nodes):
            description = node.description or _default_description(node)
            refs = ""
            if node.inputs:
                refs = " (using " + ", ".join(f"step {i + 1}" for i in node.inputs) + ")"
            lines.append(f"Step {index + 1}: {description}{refs}")
        return "\n".join(lines)

    def copy(self) -> "LogicalPlan":
        """Deep, independent copy."""
        return LogicalPlan.from_json(json.loads(self.to_json()))


def _default_description(node: PlanNode) -> str:
    if node.operation == "QueryIndex":
        return f"Read records from index '{node.params.get('index')}'"
    if node.operation == "FromDocuments":
        count = len(node.params.get("doc_ids", []))
        return f"Start from the {count} records of the previous answer"
    if node.operation == "BasicFilter":
        return (
            f"Filter where {node.params.get('field')} "
            f"{node.params.get('op')} {node.params.get('value')!r}"
        )
    if node.operation == "LlmFilter":
        return f"Semantically filter: {node.params.get('condition')!r}"
    if node.operation == "LlmExtract":
        return f"Extract field {node.params.get('field')!r} with an LLM"
    if node.operation == "Count":
        return "Count the records"
    if node.operation == "Aggregate":
        return f"Compute {node.params.get('func')} of {node.params.get('field')}"
    if node.operation == "TopK":
        return f"Rank values of {node.params.get('field')}"
    if node.operation == "Math":
        return f"Evaluate {node.params.get('expression')}"
    if node.operation == "Distinct":
        return f"Keep one record per distinct {node.params.get('field')}"
    if node.operation == "Summarize":
        return "Summarize the records"
    return node.operation
