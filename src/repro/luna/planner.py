"""Luna's query planner: natural language -> validated logical plan.

"Luna uses an LLM to interpret a user question and decompose it to a DAG
of data processing operations. The LLM is prompted with the user's query
and is asked to generate a query plan using a fixed set of operators and
data sources. The LLM generates the plan in JSON format" (§6.1).

The planner prompt carries the question, the target index's discovered
schema, and the operator vocabulary with one-line documentation. The
returned JSON is validated; invalid plans are retried (a fresh sample)
and, failing that, structurally repaired where possible.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.plancheck import ensure_valid_plan
from ..indexes.catalog import NamedIndex
from ..llm.base import LLMClient
from ..llm.errors import MalformedOutputError
from ..llm.prompts import PLAN_QUERY, neutralize_markers
from .operators import OPERATOR_SPECS, LogicalPlan, PlanNode, PlanValidationError

#: One-line operator docs placed in the planner prompt.
OPERATOR_DOCS: Dict[str, str] = {
    "QueryIndex": "Read records from a named index; optional 'query' retrieves by relevance.",
    "FromDocuments": "Start from an explicit list of document ids (follow-up queries).",
    "BasicFilter": "Keep records where a structured field compares to a value (op: eq/ne/lt/le/gt/ge/contains).",
    "LlmFilter": "Keep records satisfying a natural-language 'condition' (uses an LLM per record).",
    "LlmExtract": "Extract a new 'field' from each record's text with an LLM at query time.",
    "Count": "Count the input records.",
    "Aggregate": "Compute func (sum/avg/min/max/count/median) of a numeric field, optionally per 'group_by'.",
    "TopK": "Most frequent values of 'field' (k, descending).",
    "Sort": "Order records by 'field'.",
    "Limit": "Keep the first k records.",
    "Project": "Emit the values of the named 'fields' from each record.",
    "Distinct": "Keep one record per distinct value of 'field'.",
    "Join": "Join two inputs on equality of 'left_on'/'right_on'.",
    "Math": "Evaluate an arithmetic 'expression' over earlier results referenced as #i.",
    "Summarize": "Produce a natural-language synthesis of the input records.",
    "Identity": "Pass records through unchanged.",
}


class LunaPlanner:
    """Generates and validates logical plans for one index."""

    def __init__(
        self,
        llm: LLMClient,
        model: str = "sim-large",
        max_plan_retries: int = 2,
    ):
        self.llm = llm
        self.model = model
        self.max_plan_retries = max_plan_retries

    # ------------------------------------------------------------------

    def build_prompt(
        self,
        question: str,
        index: NamedIndex,
        secondary: Sequence[NamedIndex] = (),
    ) -> str:
        """Assemble the planner prompt for a question and schema."""
        # The question is user input: defuse line-initial section markers
        # before it joins the structured prompt (prompt-taint lint).
        question = neutralize_markers(question)
        schema_payload = index.schema_for_planner()
        operators = "\n".join(
            f"{name}: {doc}" for name, doc in OPERATOR_DOCS.items()
        )
        fields = {
            "question": question,
            "schema": json.dumps(schema_payload, sort_keys=True),
            "operators": operators,
        }
        if secondary:
            fields["secondary"] = json.dumps(
                [s.schema_for_planner() for s in secondary], sort_keys=True
            )
        return PLAN_QUERY.render(**fields)

    def plan(
        self,
        question: str,
        index: NamedIndex,
        secondary: Sequence[NamedIndex] = (),
    ) -> LogicalPlan:
        """Produce a validated plan, retrying/repairing invalid output.

        ``secondary`` lists additional data sources the planner may join
        against — the paper's data-integration pattern (§1).
        """
        prompt = self.build_prompt(question, index, secondary)
        last_error: Optional[Exception] = None
        for attempt in range(self.max_plan_retries + 1):
            try:
                payload = self.llm.complete_json(prompt, model=self.model)
            except MalformedOutputError as exc:
                last_error = exc
                continue
            try:
                plan = LogicalPlan.from_json(payload)
                plan = self._repair(plan, index)
                plan.validate()
                # Schema-aware static checks (repro.analysis.plancheck):
                # a failing plan is rejected here, at plan time, and the
                # loop replans from a fresh sample.
                known = {index.name: index.schema}
                known.update({s.name: s.schema for s in secondary})
                ensure_valid_plan(plan, schema=index.schema, known_indexes=known)
                return plan
            except PlanValidationError as exc:
                last_error = exc
                # Nudge the sampler: a retry with temperature produces a
                # fresh plan from a stochastic backend.
                prompt = prompt + "\n" * (attempt + 1)
        raise PlanValidationError(
            f"could not produce a valid plan for {question!r}: {last_error}"
        )

    # ------------------------------------------------------------------

    def _repair(self, plan: LogicalPlan, index: NamedIndex) -> LogicalPlan:
        """Conservative structural repairs of near-valid planner output."""
        repaired: List[PlanNode] = []
        for node in plan.nodes:
            node = PlanNode.from_dict(node.to_dict())
            # Unknown operations degrade to Identity rather than failing
            # the whole plan, preserving DAG shape for user inspection.
            if node.operation not in OPERATOR_SPECS:
                node = PlanNode(
                    operation="Identity",
                    inputs=node.inputs[:1],
                    description=f"(unsupported operation {node.operation!r})",
                )
            if node.operation == "QueryIndex" and "index" not in node.params:
                node.params["index"] = index.name
            if node.operation == "TopK":
                node.params.setdefault("k", 1)
                node.params.setdefault("descending", True)
            if node.operation == "Limit" and "k" not in node.params:
                node.params["k"] = 10
            repaired.append(node)
        return LogicalPlan(nodes=repaired)
