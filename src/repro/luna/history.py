"""Query execution history.

"Luna solves this by exposing a logical query execution plan, data
lineage, and execution history for all queries" (§6). The history is an
append-only log of :class:`~repro.luna.luna.LunaResult` records with a
render view, search, and *replay*: re-running a past query's exact
(possibly user-edited) plan against the current data — the quick
iteration loop the paper's interactive tenet calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional

if TYPE_CHECKING:
    from .luna import Luna, LunaResult


@dataclass
class HistoryEntry:
    """One recorded query execution."""

    sequence: int
    result: "LunaResult"

    def summary(self) -> str:
        """One-line human-readable summary."""
        answer = repr(self.result.answer)
        if len(answer) > 48:
            answer = answer[:45] + "..."
        return (
            f"#{self.sequence} [{self.result.index}] {self.result.question} "
            f"-> {answer} (${self.result.trace.total_cost_usd():.4f}, "
            f"{self.result.trace.total_llm_calls()} LLM calls)"
        )


class QueryHistory:
    """Append-only log of executed Luna queries."""

    def __init__(self) -> None:
        self._entries: List[HistoryEntry] = []

    def record(self, result: "LunaResult") -> HistoryEntry:
        """Append one entry."""
        entry = HistoryEntry(sequence=len(self._entries), result=result)
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self, index: Optional[str] = None) -> List[HistoryEntry]:
        """All entries, optionally filtered to one data index."""
        if index is None:
            return list(self._entries)
        return [e for e in self._entries if e.result.index == index]

    def get(self, sequence: int) -> HistoryEntry:
        """Fetch by id (None/KeyError when absent, per container)."""
        if not 0 <= sequence < len(self._entries):
            raise IndexError(f"no history entry #{sequence}")
        return self._entries[sequence]

    def last(self) -> Optional[HistoryEntry]:
        """The most recent entry, or None."""
        return self._entries[-1] if self._entries else None

    def search(self, text: str) -> List[HistoryEntry]:
        """Entries whose question mentions ``text`` (case-insensitive)."""
        lowered = text.lower()
        return [e for e in self._entries if lowered in e.result.question.lower()]

    def total_cost_usd(self) -> float:
        """Sum of dollar costs across entries."""
        return sum(e.result.trace.total_cost_usd() for e in self._entries)

    def render(self, index: Optional[str] = None) -> str:
        """Render a human-readable text view."""
        entries = self.entries(index)
        if not entries:
            return "(no queries recorded)"
        return "\n".join(e.summary() for e in entries)

    def replay(self, sequence: int, luna: "Luna") -> "LunaResult":
        """Re-execute a past query's exact plan against current data.

        The recorded *pre-optimization* plan is reused (including any
        human edits it carried), so replay reflects data changes, not
        planner drift.
        """
        entry = self.get(sequence)
        return luna.execute_plan(
            entry.result.question, entry.result.index, entry.result.plan.copy()
        )
