"""Safe arithmetic evaluation for Luna's ``Math`` operator.

The paper's sample execution (§6.2) ends with
``math_operation(expr="100 * {out_4}/{out_2}")``. Our plans write node
references as ``#i``; this module substitutes the referenced node results
and evaluates the expression over a restricted AST — no names, no calls,
no attribute access — so a hostile plan cannot execute code.
"""

from __future__ import annotations

import ast
import re
from typing import Dict

_ALLOWED_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)
_ALLOWED_UNARY = (ast.UAdd, ast.USub)

_REF_RE = re.compile(r"#(\d+)")


class MathEvaluationError(ValueError):
    """The expression is malformed, unsafe, or mathematically invalid."""


def referenced_nodes(expression: str) -> list:
    """Node indexes referenced as ``#i`` in the expression."""
    return [int(m) for m in _REF_RE.findall(expression)]


def evaluate(expression: str, values: Dict[int, float]) -> float:
    """Evaluate ``expression`` with ``#i`` replaced by ``values[i]``.

    Raises :class:`MathEvaluationError` on unknown references, disallowed
    syntax, or division by zero.
    """

    def substitute(match: "re.Match[str]") -> str:
        index = int(match.group(1))
        if index not in values:
            raise MathEvaluationError(f"expression references unknown node #{index}")
        return repr(float(values[index]))

    substituted = _REF_RE.sub(substitute, expression)
    try:
        tree = ast.parse(substituted, mode="eval")
    except SyntaxError as exc:
        raise MathEvaluationError(f"malformed expression {expression!r}: {exc}") from exc
    try:
        return float(_eval_node(tree.body))
    except ZeroDivisionError as exc:
        raise MathEvaluationError(f"division by zero in {expression!r}") from exc


def _eval_node(node: ast.AST) -> float:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
            raise MathEvaluationError(f"non-numeric constant {node.value!r}")
        return float(node.value)
    if isinstance(node, ast.BinOp) and isinstance(node.op, _ALLOWED_BINOPS):
        left = _eval_node(node.left)
        right = _eval_node(node.right)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.Div):
            return left / right
        if isinstance(node.op, ast.FloorDiv):
            return left // right
        if isinstance(node.op, ast.Mod):
            return left % right
        return left**right
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, _ALLOWED_UNARY):
        operand = _eval_node(node.operand)
        return operand if isinstance(node.op, ast.UAdd) else -operand
    raise MathEvaluationError(f"disallowed syntax: {ast.dump(node)[:80]}")
