"""Plan diffing: what did the optimizer (or the user) change?

The paper's human-in-the-loop design has users inspect and modify plans;
a readable diff between two plan versions — planner output vs optimized,
or planner output vs user-edited — is the inspection primitive. Plans
keep stable node count and indexes through optimization (rewrites swap
node contents in place), so the diff is positional.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .operators import LogicalPlan, PlanNode


def diff_plans(before: LogicalPlan, after: LogicalPlan) -> List[str]:
    """Human-readable, per-node differences between two plans.

    Returns one line per changed aspect; an empty list means the plans
    are operationally identical (descriptions are ignored — they are
    narration, not semantics).
    """
    lines: List[str] = []
    common = min(len(before.nodes), len(after.nodes))
    for index in range(common):
        lines.extend(_diff_node(index, before.nodes[index], after.nodes[index]))
    for index in range(common, len(before.nodes)):
        lines.append(f"node {index}: removed {before.nodes[index].operation}")
    for index in range(common, len(after.nodes)):
        node = after.nodes[index]
        lines.append(f"node {index}: added {node.operation} {_param_text(node.params)}")
    return lines


def _diff_node(index: int, before: PlanNode, after: PlanNode) -> List[str]:
    lines = []
    if before.operation != after.operation:
        lines.append(
            f"node {index}: operation {before.operation} -> {after.operation}"
        )
    if before.inputs != after.inputs:
        lines.append(f"node {index}: inputs {before.inputs} -> {after.inputs}")
    keys = set(before.params) | set(after.params)
    for key in sorted(keys):
        old = before.params.get(key, "<unset>")
        new = after.params.get(key, "<unset>")
        if old != new:
            lines.append(f"node {index}: {key} {old!r} -> {new!r}")
    return lines


def _param_text(params: Dict[str, Any]) -> str:
    return "{" + ", ".join(f"{k}={v!r}" for k, v in sorted(params.items())) + "}"
