"""repro — a from-scratch reproduction of the Aryn LLM-powered
unstructured analytics system (Anderson et al., CIDR 2025).

Layered like the paper's architecture (Figure 1):

* :mod:`repro.docmodel` — hierarchical multi-modal documents (§5.1).
* :mod:`repro.partitioner` — the Aryn Partitioner (§4).
* :mod:`repro.sycamore` — the DocSet processing engine (§5).
* :mod:`repro.luna` — natural-language query planning & execution (§6).
* :mod:`repro.llm`, :mod:`repro.embedding`, :mod:`repro.indexes`,
  :mod:`repro.execution` — the substrates (LLM runtime, embeddings,
  keyword/vector/graph stores, Ray-like dataflow execution).
* :mod:`repro.runtime` — the shared LLM request scheduler
  (micro-batching, in-flight dedup, priority admission control).
* :mod:`repro.observability` — query tracing, the process metrics
  registry, and per-query cost accounting (see docs/ARCHITECTURE.md).
* :mod:`repro.serving` — the concurrent query-serving layer: admission
  control, tenants/sessions, single-flight plan/result caching.
* :mod:`repro.cluster` — sharded multi-process execution: deterministic
  stable-hash partitioning, scatter/gather coordination with shard
  retry and journal checkpoints, and spill-to-disk document sets.
* :mod:`repro.rag` — the retrieval-augmented-generation baseline.
* :mod:`repro.datagen`, :mod:`repro.evaluation` — synthetic corpora and
  the benchmark harnesses.

Quickstart::

    from repro import Luna, SycamoreContext, ArynPartitioner
    from repro.datagen import generate_ntsb_corpus

    records, raw_docs = generate_ntsb_corpus(100, seed=0)
    ctx = SycamoreContext(parallelism=4)
    (ctx.read.raw(raw_docs)
        .partition(ArynPartitioner())
        .extract_properties({"state": "string", "weather_related": "bool"})
        .write.index("ntsb"))
    luna = Luna(ctx)
    result = luna.query(
        "What percent of environmentally caused incidents were due to wind?",
        index="ntsb",
    )
"""

from .docmodel import Document, Element, Table
from .lifecycle import (
    CancelScope,
    Deadline,
    DeadlineExceeded,
    QueryCancelled,
    QueryJournal,
)
from .luna import Luna, LunaResult
from .observability import (
    CostAccount,
    MetricsRegistry,
    Span,
    Tracer,
    get_registry,
    render_trace_tree,
    write_trace_json,
)
from .partitioner import ArynPartitioner, NaiveTextPartitioner
from .rag import RagPipeline
from .runtime import Priority, RequestScheduler
from .serving import QueryService, ServiceConfig
from .sycamore import DocSet, SycamoreContext

# Imported last: the cluster layer sits atop luna and serving, and the
# sharded index fan-out sits atop the cluster's placement function.
from .cluster import (
    ClusterConfig,
    ClusterCoordinator,
    ClusterError,
    SpillableDocSet,
)
from .indexes.sharded import ShardedKeywordIndex, ShardedVectorIndex

__version__ = "0.1.0"

__all__ = [
    "ArynPartitioner",
    "CancelScope",
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterError",
    "CostAccount",
    "Deadline",
    "DeadlineExceeded",
    "DocSet",
    "Document",
    "Element",
    "Luna",
    "LunaResult",
    "MetricsRegistry",
    "NaiveTextPartitioner",
    "Priority",
    "QueryCancelled",
    "QueryJournal",
    "QueryService",
    "RagPipeline",
    "RequestScheduler",
    "ServiceConfig",
    "ShardedKeywordIndex",
    "ShardedVectorIndex",
    "Span",
    "SpillableDocSet",
    "SycamoreContext",
    "Table",
    "Tracer",
    "get_registry",
    "render_trace_tree",
    "write_trace_json",
    "__version__",
]
