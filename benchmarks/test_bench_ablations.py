"""A1/A2 — component ablations for DESIGN.md §5 design choices.

A1: OCR quality. Scanned regions are only reachable through OCR (§4);
this ablation measures how OCR character-error rate propagates to
downstream extraction accuracy on scanned documents.

A2: Vector index mode. Exact scan vs IVF approximate search — the
standard recall/latency trade-off, measured on a real corpus embedding.
"""

import random
import time

import pytest

from conftest import print_table
from repro.datagen import generate_ntsb_corpus
from repro.datagen.render import PageLayouter
from repro.embedding import HashingEmbedder
from repro.indexes import VectorIndex
from repro.llm import knowledge
from repro.partitioner import (
    ACCURATE_OCR,
    ArynPartitioner,
    DetectorConfig,
    OcrConfig,
    POOR_OCR,
)

_PERFECT_DETECTOR = DetectorConfig(
    name="perfect",
    detect_prob=1.0,
    jitter_frac=0.0,
    label_confusion=0.0,
    false_positives_per_page=0.0,
    confidence_noise=0.0,
)


def _scanned_doc(index: int, state: str, date_text: str):
    """A document whose key facts live only inside a scanned image."""
    layout = PageLayouter(header_text="Scanned Archive")
    layout.add_title(f"Archived Incident Memo {index}")
    layout.add_image(
        description="scan of a typewritten memo",
        contains_text=(
            f"Incident memo. Location of occurrence: Anchorage, {state}. "
            f"Date of occurrence: {date_text}."
        ),
    )
    return layout.build(doc_id=f"SCAN-{index:04d}")


def test_bench_ocr_quality_ablation(benchmark):
    docs = [
        _scanned_doc(i, "AK", f"May {i % 27 + 1}, 2023") for i in range(30)
    ]

    def accuracy_for(ocr_config: OcrConfig) -> float:
        partitioner = ArynPartitioner(
            detector=_PERFECT_DETECTOR, ocr=ocr_config, seed=0
        )
        hits = 0
        for doc in docs:
            parsed = partitioner.partition(doc)
            text = "\n".join(
                e.text for e in parsed.elements if e.type == "Picture"
            )
            state = knowledge.find_state(text)
            date = knowledge.find_date(text)
            hits += state == "AK" and date is not None
        return hits / len(docs)

    results = {
        "no OCR (naive extraction)": 0.0,  # scanned text is unreachable
        "easyocr-sim (2% CER)": benchmark.pedantic(
            accuracy_for, args=(ACCURATE_OCR,), rounds=1, iterations=1
        ),
        "legacy-ocr (12% CER)": accuracy_for(POOR_OCR),
    }
    rows = [[name, f"{acc:.0%}"] for name, acc in results.items()]
    print_table(
        "A1: field extraction from scanned documents vs OCR quality",
        ["pipeline", "state+date recovered"],
        rows,
    )
    assert results["easyocr-sim (2% CER)"] >= 0.7
    assert results["easyocr-sim (2% CER)"] > results["legacy-ocr (12% CER)"]


def test_bench_vector_index_modes(benchmark):
    embedder = HashingEmbedder(dimensions=256)
    records, raws = generate_ntsb_corpus(400, seed=91)
    index = VectorIndex(dimensions=256)
    for record, raw in zip(records, raws):
        index.add(record.report_id, embedder.embed(raw.all_text()))

    queries = [
        embedder.embed(
            f"accident near {r.city} {r.state} on {r.date} involving {r.aircraft}"
        )
        for r in records[:40]
    ]
    expected = [r.report_id for r in records[:40]]

    def measure(approximate: bool, n_probe: int = 6):
        start = time.perf_counter()
        hits = 0
        for query, target in zip(queries, expected):
            results = index.search(query, k=5, approximate=approximate, n_probe=n_probe)
            hits += any(h.doc_id == target for h in results)
        elapsed = time.perf_counter() - start
        return hits / len(queries), elapsed / len(queries)

    exact_recall, exact_latency = measure(False)
    # Prime the IVF clustering outside the timed region.
    index.search(queries[0], k=1, approximate=True)
    wide_recall, wide_latency = benchmark.pedantic(
        measure, args=(True, 14), rounds=1, iterations=1
    )
    mid_recall, mid_latency = measure(True, n_probe=6)
    narrow_recall, narrow_latency = measure(True, n_probe=2)

    rows = [
        ["exact scan", f"{exact_recall:.0%}", f"{exact_latency * 1e6:.0f} us"],
        ["IVF n_probe=14", f"{wide_recall:.0%}", f"{wide_latency * 1e6:.0f} us"],
        ["IVF n_probe=6", f"{mid_recall:.0%}", f"{mid_latency * 1e6:.0f} us"],
        ["IVF n_probe=2", f"{narrow_recall:.0%}", f"{narrow_latency * 1e6:.0f} us"],
    ]
    print_table(
        "A2: vector search mode (400-doc corpus, ~20 IVF cells, recall@5)",
        ["mode", "recall@5", "latency/query"],
        rows,
    )
    # Shape: recall is monotone in the probe budget, with exact scan as
    # the ceiling; narrowing probes buys latency.
    assert exact_recall >= wide_recall >= mid_recall >= narrow_recall
    assert wide_recall >= exact_recall - 0.10
    assert narrow_latency <= exact_latency
