"""E17 — gateway load: concurrent multi-tenant clients over real sockets.

Where ``test_bench_serving.py`` measures the serving layer in-process,
this benchmark measures the full network stack the gateway adds: every
request here is a real TCP connect + HTTP round trip through the
middleware stack into a SimulatedLLM-backed :class:`repro.gateway.Gateway`
(see :mod:`repro.gateway.bench` for the phases).

Results land in ``BENCH_service.json`` at the repo root (uploaded as a
CI artifact). Gates (ISSUE 9):

* warm cache-hit traffic over sockets sustains ≥3x cold sequential;
* a 2x-over-capacity burst sheds typed 429s with nonzero ``Retry-After``
  while zero in-flight (admitted) queries are dropped.
"""

import json
from pathlib import Path

from conftest import print_table
from repro.gateway.bench import render_results, run_gateway_benchmark

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

N_DOCS = 24
REPEATS = 3
TENANTS = 3
WORKERS = 4
LATENCY_SCALE = 0.01


def test_bench_service(benchmark):
    results = benchmark.pedantic(
        run_gateway_benchmark,
        kwargs=dict(
            n_docs=N_DOCS,
            repeats=REPEATS,
            tenants=TENANTS,
            workers=WORKERS,
            latency_scale=LATENCY_SCALE,
            seed=13,
        ),
        rounds=1,
        iterations=1,
    )

    modes = results["modes"]
    rows = [
        [
            name,
            row["requests"],
            f"{row['elapsed_s']:.3f}s",
            f"{row['qps']:.1f}",
            f"{row['p50_ms']:.1f}ms",
            f"{row['p99_ms']:.1f}ms",
            f"{row.get('speedup_vs_cold', 1.0):.2f}x",
        ]
        for name, row in modes.items()
    ]
    print_table(
        "E17: gateway load (multi-tenant clients over real sockets)",
        ["mode", "reqs", "elapsed", "qps", "p50", "p99", "speedup"],
        rows,
    )
    print()
    print(render_results(results))

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")

    warm = modes["warm_concurrent"]
    burst = results["burst"]

    # The gates the issue specifies.
    assert results["answers_agree"], "gateway answers diverged across phases"
    # Warm cache-hit socket traffic sustains >= 3x cold sequential.
    assert warm["speedup_vs_cold"] >= 3.0
    assert warm["cache_hit_rate"] >= 0.9
    # 2x burst sheds typed 429s with a nonzero Retry-After hint...
    assert burst["shed_429"] > 0
    assert burst["all_sheds_typed"]
    assert burst["min_retry_after_s"] > 0
    # ...while zero in-flight queries are dropped: every admitted request
    # completed with an answer, nothing failed untyped.
    assert burst["completed"] + burst["shed_429"] == burst["requests"]
    assert burst["other_failures"] == 0
    assert burst["all_completed_answered"]
    assert burst["service_failed"] == 0
    assert burst["service_completed"] == burst["completed"]
    # The tenants that drove warm traffic all saved money via the caches.
    for totals in results["tenants"].values():
        assert totals["saved_usd"] > 0 or totals["cost_usd"] > 0
