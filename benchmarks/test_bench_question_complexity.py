"""C2 — §2 claim: RAG "works for simple factual questions where an answer
is contained in a small number of relevant chunks of text, but fails when
the answer involves synthesizing information across a large document
collection."

Fixed corpus; sweep question *type*: point lookup -> filtered count ->
aggregate -> percentage. Shape: RAG is competitive on point lookups and
collapses on sweep-and-harvest types; Luna handles all types.
"""

import pytest

from conftest import print_table
from repro.datagen import generate_ntsb_corpus
from repro.evaluation import Grade, grade_categorical, grade_exact_count, grade_numeric
from repro.luna import Luna
from repro.partitioner import ArynPartitioner
from repro.rag import RagPipeline
from repro.sycamore import SycamoreContext

N_DOCS = 120


@pytest.fixture(scope="module")
def complexity_setup():
    records, raws = generate_ntsb_corpus(N_DOCS, seed=41)
    ctx = SycamoreContext(parallelism=8, seed=6)
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(
            {"state": "string", "incident_year": "int", "aircraft": "string"},
            model="sim-large",
        )
        .write.index("ntsb")
    )
    chunk_index = ctx.catalog.create("chunks")
    RagPipeline.ingest(chunk_index, ctx.read.index("ntsb").take_all(), chunk_tokens=200)
    rag = RagPipeline(chunk_index, ctx.llm, model="sim-large", top_k=5)
    luna = Luna(ctx, planner_model="sim-large", policy="quality")
    return records, rag, luna


def _question_bank(records):
    target = records[7]
    icing = sum(1 for r in records if r.cause_detail == "icing")
    fatal_2023 = sum(r.injuries_fatal for r in records if r.year == 2023)
    env = [r for r in records if r.cause_category == "environmental"]
    wind = [r for r in records if r.cause_detail == "wind"]
    pct = 100.0 * len(wind) / len(env)
    return {
        "point lookup": (
            f"What aircraft was involved in the incident near "
            f"{target.city}, {target.state} on {target.date}?",
            lambda a: grade_categorical(a, target.aircraft),
        ),
        "filtered count": (
            "How many incidents were caused by icing?",
            lambda a: grade_exact_count(a, icing, plausible_slack=1),
        ),
        "aggregate": (
            "What was the total fatal injuries across incidents in 2023?",
            lambda a: grade_numeric(a, float(fatal_2023), correct_abs_tol=1.0),
        ),
        "percentage": (
            "What percent of environmentally caused incidents were due to wind?",
            lambda a: grade_numeric(a, pct, correct_rel_tol=0.05, correct_abs_tol=2.0),
        ),
    }


def test_bench_question_complexity(benchmark, complexity_setup):
    records, rag, luna = complexity_setup
    bank = _question_bank(records)

    def run_all():
        outcome = {}
        for kind, (question, grader) in bank.items():
            rag_grade = grader(rag.answer(question).answer).grade
            try:
                luna_grade = grader(luna.query(question, index="ntsb").answer).grade
            except Exception:
                luna_grade = Grade.INCORRECT
            outcome[kind] = (rag_grade, luna_grade)
        return outcome

    outcome = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [kind, rag_grade.value, luna_grade.value]
        for kind, (rag_grade, luna_grade) in outcome.items()
    ]
    print_table(
        "C2: grade by question complexity (120-doc corpus)",
        ["question type", "RAG top-5", "Luna"],
        rows,
    )

    # Shape: RAG handles the point lookup...
    assert outcome["point lookup"][0] in (Grade.CORRECT, Grade.PLAUSIBLE)
    # ...but fails the sweep-and-harvest types at this corpus size.
    sweep_types = ("filtered count", "aggregate", "percentage")
    rag_sweep_correct = sum(
        outcome[k][0] is Grade.CORRECT for k in sweep_types
    )
    luna_sweep_correct = sum(
        outcome[k][1] in (Grade.CORRECT, Grade.PLAUSIBLE) for k in sweep_types
    )
    assert rag_sweep_correct <= 1
    assert luna_sweep_correct >= 2
