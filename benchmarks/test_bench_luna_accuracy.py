"""E2 — §6 Luna micro-benchmark.

Paper: "we created a micro-benchmark using questions from financial
customers on an earnings report dataset, and building our own questions
for the NTSB reports... Luna achieved a 72% accuracy. Out of 18
questions, Luna answered 13 correctly, 3 plausibly, and 2 incorrectly.
The intention of certain ambiguous questions was misinterpreted by the
query planner."

This bench runs the full 18-question suite end-to-end (plan -> optimize ->
execute -> grade). Shape requirements: accuracy in the paper's band
(~60-90%), only a small incorrect tail, and the incorrect answers should
include the deliberately-ambiguous questions — the paper's own failure
mode.
"""

import pytest

from conftest import print_table
from repro.evaluation import Grade, run_luna_suite
from repro.luna import Luna


def test_bench_luna_accuracy(benchmark, bench_context, question_suite):
    luna = Luna(bench_context, planner_model="sim-large", policy="quality")

    report = benchmark.pedantic(
        run_luna_suite, args=(luna, question_suite), rounds=1, iterations=1
    )

    rows = [
        [
            o.qid,
            o.grade.value,
            str(o.answer)[:36],
            str(o.expected)[:36],
            o.llm_calls,
            f"${o.llm_cost_usd:.3f}",
        ]
        for o in report.outcomes
    ]
    print_table(
        "E2: Luna micro-benchmark (18 questions)",
        ["question", "grade", "answer", "expected", "llm calls", "cost"],
        rows,
    )
    print(
        f"\nLuna: {report.correct} correct, {report.plausible} plausible, "
        f"{report.incorrect} incorrect of {len(report.outcomes)} "
        f"({report.accuracy:.0%} accuracy; paper: 13/3/2, 72%)"
    )

    assert len(report.outcomes) == 18
    # Shape: accuracy in the paper's band, small incorrect tail.
    assert 10 <= report.correct <= 17
    assert report.incorrect <= 5
    assert report.correct + report.plausible >= 13
    # Ambiguous questions are the dominant failure mode, as in the paper.
    ambiguous_ids = {q.qid for q in question_suite if q.ambiguous}
    wrong_ids = {o.qid for o in report.outcomes if o.grade is Grade.INCORRECT}
    assert wrong_ids & ambiguous_ids
