"""Shared fixtures for the benchmark suite.

Benchmarks are experiments: each regenerates one table/figure of the paper
(see DESIGN.md §3) and prints the rows the paper reports. pytest-benchmark
times the interesting hot path; correctness assertions pin the *shape* of
each result (who wins, roughly by how much), not exact numbers.
"""

from __future__ import annotations

import pytest

from repro.datagen import (
    build_full_suite,
    generate_earnings_corpus,
    generate_layout_benchmark,
    generate_ntsb_corpus,
)
from repro.partitioner import ArynPartitioner
from repro.sycamore import SycamoreContext

#: Seeds are fixed so benchmark output is reproducible run to run.
NTSB_SEED = 21
EARNINGS_SEED = 22

NTSB_SCHEMA = {
    "state": "string",
    "incident_year": "int",
    "weather_related": "bool",
    "injuries_fatal": "int",
    "aircraft": "string",
}
EARNINGS_SCHEMA = {
    "company": "string",
    "sector": "string",
    "fiscal_year": "int",
    "revenue_musd": "float",
    "revenue_growth_pct": "float",
    "ceo_changed": "bool",
}


@pytest.fixture(scope="session")
def ntsb_bench_corpus():
    return generate_ntsb_corpus(80, seed=NTSB_SEED)


@pytest.fixture(scope="session")
def earnings_bench_corpus():
    return generate_earnings_corpus(60, seed=EARNINGS_SEED)


@pytest.fixture(scope="session")
def layout_bench_docs():
    return generate_layout_benchmark(40, seed=1)


@pytest.fixture(scope="session")
def bench_context(ntsb_bench_corpus, earnings_bench_corpus):
    """Both corpora partitioned, extracted (sim-large) and indexed."""
    _, n_raws = ntsb_bench_corpus
    _, e_raws = earnings_bench_corpus
    ctx = SycamoreContext(parallelism=8, seed=9)
    (
        ctx.read.raw(n_raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(NTSB_SCHEMA, model="sim-large")
        .write.index("ntsb")
    )
    (
        ctx.read.raw(e_raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(EARNINGS_SCHEMA, model="sim-large")
        .write.index("earnings")
    )
    return ctx


@pytest.fixture(scope="session")
def question_suite(ntsb_bench_corpus, earnings_bench_corpus):
    return build_full_suite(ntsb_bench_corpus[0], earnings_bench_corpus[0])


def print_table(title: str, headers: list, rows: list) -> None:
    """Render a paper-style results table to stdout."""
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
