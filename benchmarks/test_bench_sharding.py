"""E15 — sharded scatter/gather vs a single-process operator.

The cluster layer's claim (ISSUE 7 / ROADMAP "scale-out execution") is
that a shared-nothing worker pool runs a per-record LLM operator over a
large corpus substantially faster than one process — while producing
**byte-identical** merged output, because shard placement is a pure
function of document ids and the gather merge reassembles by original
position.

One workload (an ``LlmExtract`` over 50k generated incident documents),
two executions of the *same* worker code path
(:func:`repro.cluster.worker.run_spec_locally`): in-process, and
scattered over a 4-worker / 8-shard cluster. The simulated LLM really
sleeps a small fraction of its virtual latency, so the speedup measures
the overlap a cluster buys on I/O-bound traffic — the same technique
the serving and scheduler benchmarks use.

Results land in ``BENCH_sharding.json`` at the repo root (uploaded as a
CI artifact). Gates: the 4-worker cluster must clear 2.5x over single-
process, the merged output must be byte-identical, and no shard may
need a retry (fault injection is off).
"""

import json
from pathlib import Path

from repro.cluster.bench import render_results, run_sharding_benchmark

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_sharding.json"

N_DOCS = 50_000
WORKERS = 4
SHARDS_PER_WORKER = 2
LATENCY_SCALE = 0.01


def test_bench_sharding(benchmark):
    results = benchmark.pedantic(
        run_sharding_benchmark,
        kwargs=dict(
            n_docs=N_DOCS,
            workers=WORKERS,
            shards_per_worker=SHARDS_PER_WORKER,
            latency_scale=LATENCY_SCALE,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(render_results(results))
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")

    single = results["single_process"]
    sharded = results["sharded"]

    # The gates the issue specifies.
    assert results["byte_identical"], "sharded merge diverged from local run"
    assert results["speedup"] >= 2.5
    # Same traffic on both sides: every document extracted exactly once.
    assert single["documents_out"] == N_DOCS
    assert sharded["documents_out"] == N_DOCS
    assert sharded["llm_calls"] == single["llm_calls"] == N_DOCS
    # A clean run: all shards complete first try on a healthy pool.
    assert sharded["shards_completed"] == WORKERS * SHARDS_PER_WORKER
    assert sharded["shard_retries"] == 0
    assert sharded["worker_deaths"] == 0
    assert sharded["workers_alive"] == WORKERS
