"""E1 — §4 partitioner accuracy table.

Paper: "Our model achieved a mean average precision (mAP) of 0.602 and a
mean average recall (mAR) of 0.743 on the DocLayNet competition
benchmark. By contrast, a document API from a large cloud vendor achieved
only an mAP of 0.344 with an mAR of 0.466."

This bench runs both detector operating points over the synthetic layout
benchmark and computes real COCO-style mAP@[.5:.95] / mAR@100. The shape
requirement: Aryn beats the cloud baseline by a wide margin (~1.7x mAP in
the paper), and both land near the paper's absolute numbers (the presets
are calibrated to them).
"""

import pytest

from conftest import print_table
from repro.evaluation import PredictedBox, boxes_from_pages, evaluate_detections
from repro.partitioner import (
    ARYN_DETECTOR,
    CLOUD_BASELINE_DETECTOR,
    SegmentationModel,
)

PAPER_NUMBERS = {
    "aryn-deformable-detr": (0.602, 0.743),
    "cloud-vendor-api": (0.344, 0.466),
}


def _detect_all(config, docs):
    model = SegmentationModel(config, seed=0)
    predictions = []
    for doc in docs:
        for page_number, page in enumerate(doc.pages):
            image_id = f"{doc.doc_id}:{page_number}"
            for det in model.detect(page, page_key=image_id):
                predictions.append(
                    PredictedBox(
                        image_id=image_id,
                        label=det.label,
                        bbox=det.bbox,
                        score=det.confidence,
                    )
                )
    return predictions


@pytest.fixture(scope="module")
def ground_truth(layout_bench_docs):
    boxes = []
    for doc in layout_bench_docs:
        boxes.extend(boxes_from_pages(doc.pages, doc.doc_id))
    return boxes


def test_bench_partitioner_accuracy(benchmark, layout_bench_docs, ground_truth):
    results = {}
    for config in (ARYN_DETECTOR, CLOUD_BASELINE_DETECTOR):
        predictions = _detect_all(config, layout_bench_docs)
        metrics = evaluate_detections(ground_truth, predictions)
        results[config.name] = metrics

    rows = []
    for name, metrics in results.items():
        paper_ap, paper_ar = PAPER_NUMBERS[name]
        rows.append(
            [
                name,
                f"{metrics.mean_ap:.3f}",
                f"{paper_ap:.3f}",
                f"{metrics.mean_ar:.3f}",
                f"{paper_ar:.3f}",
            ]
        )
    print_table(
        "E1: document segmentation accuracy (DocLayNet-style benchmark)",
        ["model", "mAP", "mAP(paper)", "mAR", "mAR(paper)"],
        rows,
    )

    aryn = results["aryn-deformable-detr"]
    cloud = results["cloud-vendor-api"]
    # Shape: Aryn wins decisively, roughly by the paper's factor.
    assert aryn.mean_ap > cloud.mean_ap * 1.4
    assert aryn.mean_ar > cloud.mean_ar * 1.3
    # Calibration: within a small band of the paper's absolute numbers.
    assert aryn.mean_ap == pytest.approx(0.602, abs=0.06)
    assert aryn.mean_ar == pytest.approx(0.743, abs=0.06)
    assert cloud.mean_ap == pytest.approx(0.344, abs=0.06)
    assert cloud.mean_ar == pytest.approx(0.466, abs=0.06)

    # Time the expensive path: running the Aryn detector over the corpus.
    benchmark.pedantic(
        _detect_all, args=(ARYN_DETECTOR, layout_bench_docs), rounds=1, iterations=1
    )
