"""C6 — §2/§4 claim: naive text extraction loses table semantics.

"A table split across two pages of a PDF file, where the table heading is
only present on the first page, will generally befuddle text extraction
tools... retrieval of chunks of text during the RAG process will
generally fail to include the important metadata associated with the
table, such as the types of each of the columns."

This bench renders reports whose wreckage tables are long enough to split
across pages, then answers column-lookup questions ("at what position was
the <component> found?") two ways:

* structure-aware: Aryn partitioner -> merged Table -> column lookup by
  header name;
* naive: flat text extraction -> take the text following the component
  mention (the only strategy available without cell structure).

Shape: the structured path answers almost everything, including rows
that live on the continuation page; the naive path confuses columns.
"""

import re

import pytest

from conftest import print_table
from repro.datagen.ntsb import generate_incident, render_incident
from repro.docmodel import TableElement
from repro.partitioner import (
    ArynPartitioner,
    DetectorConfig,
    NaiveTextPartitioner,
    TableModelConfig,
)

import random

N_DOCS = 20

_PERFECT_DETECTOR = DetectorConfig(
    name="perfect",
    detect_prob=1.0,
    jitter_frac=0.0,
    label_confusion=0.0,
    false_positives_per_page=0.0,
    confidence_noise=0.0,
)
_PERFECT_TABLES = TableModelConfig(name="perfect", cell_miss_prob=0.0, row_merge_prob=0.0)


@pytest.fixture(scope="module")
def split_table_docs():
    rng = random.Random(81)
    docs = []
    for index in range(N_DOCS):
        record = generate_incident(rng, index=index)
        # Long wreckage tables guarantee a cross-page split.
        raw = render_incident(record, rng=random.Random(index), wreckage_rows=16)
        docs.append(raw)
    return docs


def _wreckage_truth(raw):
    """(component -> position) from the document's ground-truth fragments."""
    truth = {}
    for page in raw.pages:
        for box in page.boxes:
            if box.label != "Table" or box.table is None:
                continue
            grid = box.table.to_grid()
            for row in grid:
                if len(row) == 3 and row[2].endswith("wreckage") and row[0] != "Component":
                    truth[row[0]] = row[2]
    return truth


def _structured_answer(doc, component):
    for element in doc.elements:
        if isinstance(element, TableElement):
            values = element.table.lookup("Component", component, "Position")
            if values:
                return values[0]
    return None


def _naive_answer(text, component):
    """Best effort without structure: the text right after the mention."""
    index = text.find(component)
    if index == -1:
        return None
    following = text[index + len(component):].strip().splitlines()
    return following[0].strip() if following else None


def test_bench_table_extraction_qa(benchmark, split_table_docs):
    aryn = ArynPartitioner(
        detector=_PERFECT_DETECTOR, table_model=_PERFECT_TABLES, seed=0
    )
    naive = NaiveTextPartitioner()

    def run():
        structured_ok = naive_ok = total = split_row_total = split_structured_ok = 0
        for raw in split_table_docs:
            truth = _wreckage_truth(raw)
            doc = aryn.partition(raw)
            flat = naive.partition(raw).text_representation()
            # Identify rows living on continuation fragments (page >= 2).
            continuation_components = set()
            for page in raw.pages[1:]:
                for box in page.boxes:
                    if box.label == "Table" and box.continues_previous and box.table:
                        for row in box.table.to_grid():
                            continuation_components.add(row[0])
            for component, position in truth.items():
                total += 1
                s_answer = _structured_answer(doc, component)
                n_answer = _naive_answer(flat, component)
                if s_answer == position:
                    structured_ok += 1
                    if component in continuation_components:
                        split_structured_ok += 1
                if component in continuation_components:
                    split_row_total += 1
                if n_answer == position:
                    naive_ok += 1
        return structured_ok, naive_ok, total, split_structured_ok, split_row_total

    structured_ok, naive_ok, total, split_ok, split_total = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        ["aryn (structure-aware)", f"{structured_ok}/{total}", f"{structured_ok / total:.0%}"],
        ["naive text extraction", f"{naive_ok}/{total}", f"{naive_ok / total:.0%}"],
        [
            "aryn, cross-page rows only",
            f"{split_ok}/{split_total}",
            f"{split_ok / max(split_total, 1):.0%}",
        ],
    ]
    print_table(
        "C6: table column-lookup QA (position of wreckage component)",
        ["method", "correct", "accuracy"],
        rows,
    )

    assert total >= 50
    assert split_total >= 5  # tables really did split across pages
    # Shape: structure-aware wins decisively, including on rows whose
    # header lives on the previous page.
    assert structured_ok / total >= 0.9
    assert naive_ok / total <= 0.5
    assert split_ok / split_total >= 0.9
