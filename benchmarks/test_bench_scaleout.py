"""C5 — §5.3/§6.1 claim: "using Sycamore's distributed execution mode
allows us to scale out workloads with minimal overhead."

Measures wall-clock throughput of a partition+extract pipeline as worker
count grows. The per-document work includes a real compute component
(simulated model latency is virtual, so the speedup measured here comes
from genuine pipeline parallelism over the detector + table recovery +
prompt machinery). Shape: near-linear at small worker counts, flattening
as overheads dominate.
"""

import time

import pytest

from conftest import print_table
from repro.datagen import generate_ntsb_corpus
from repro.partitioner import ArynPartitioner
from repro.llm import SimulatedLLM
from repro.sycamore import SycamoreContext

WORKER_COUNTS = (1, 2, 4, 8)
N_DOCS = 48


@pytest.fixture(scope="module")
def scaleout_corpus():
    return generate_ntsb_corpus(N_DOCS, seed=71)


def _pipeline_seconds(raws, workers):
    # A small real per-call latency makes LLM calls network-bound, the
    # way hosted-API calls are; scale-out overlaps that waiting.
    backend = SimulatedLLM(seed=3, real_latency_scale=0.05)
    ctx = SycamoreContext(parallelism=workers, llm=backend, seed=3)
    pipeline = (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties({"state": "string", "weather_related": "bool"},
                            model="sim-small")
    )
    start = time.perf_counter()
    docs = pipeline.take_all()
    elapsed = time.perf_counter() - start
    assert len(docs) == len(raws)
    return elapsed


def test_bench_scaleout(benchmark, scaleout_corpus):
    _, raws = scaleout_corpus

    def sweep():
        # Median of 3 runs per worker count to damp scheduler noise.
        table = {}
        for workers in WORKER_COUNTS:
            runs = sorted(_pipeline_seconds(raws, workers) for _ in range(3))
            table[workers] = runs[1]
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    base = table[1]
    rows = [
        [w, f"{seconds * 1000:.0f} ms", f"{base / seconds:.2f}x",
         f"{N_DOCS / seconds:.0f} docs/s"]
        for w, seconds in table.items()
    ]
    print_table(
        f"C5: pipeline scale-out ({N_DOCS} documents, partition+extract)",
        ["workers", "wall time", "speedup", "throughput"],
        rows,
    )

    # Shape: parallelism helps and does not pathologically regress.
    assert table[4] < table[1]
    assert table[8] <= table[1]
    speedup_at_4 = base / table[4]
    assert speedup_at_4 > 1.3
