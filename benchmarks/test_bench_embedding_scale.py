"""C3 — §2 claim: "As more data is added, accuracy deteriorates, as it
becomes harder for embedding vectors to discriminate between chunks."

Measures retrieval quality (recall@k of the unique relevant document for
a set of targeted queries) as near-duplicate documents crowd the vector
space. Shape: recall@k decreases monotonically-ish with corpus size.
Also compares retrieval modes (vector / keyword / hybrid) as a design
ablation.
"""

import pytest

from conftest import print_table
from repro.datagen import generate_ntsb_corpus
from repro.embedding import HashingEmbedder
from repro.indexes import IndexCatalog
from repro.docmodel import Document

CORPUS_SIZES = (50, 150, 400, 800)
K = 5
N_QUERIES = 25


def _build_index(n_docs, embedder):
    records, raws = generate_ntsb_corpus(n_docs, seed=61)
    catalog = IndexCatalog(embedder=embedder)
    index = catalog.create("docs")
    for record, raw in zip(records, raws):
        index.add_document(Document(doc_id=record.report_id, text=raw.all_text()))
    return records, index


def _recall_at_k(records, index, mode):
    hits = 0
    for record in records[:N_QUERIES]:
        # A targeted query that uniquely identifies one document.
        query = (
            f"accident near {record.city} {record.state} on {record.date} "
            f"involving a {record.aircraft}"
        )
        results = getattr(index, f"search_{mode}")(query, k=K)
        if any(d.doc_id == record.report_id for d in results):
            hits += 1
    return hits / N_QUERIES


def test_bench_embedding_scale(benchmark):
    embedder = HashingEmbedder(dimensions=256)

    def sweep():
        table = {}
        for size in CORPUS_SIZES:
            records, index = _build_index(size, embedder)
            table[size] = {
                mode: _recall_at_k(records, index, mode)
                for mode in ("vector", "keyword", "hybrid")
            }
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [size, f"{r['vector']:.0%}", f"{r['keyword']:.0%}", f"{r['hybrid']:.0%}"]
        for size, r in table.items()
    ]
    print_table(
        f"C3: recall@{K} of the target document vs corpus size",
        ["corpus size", "vector", "keyword", "hybrid"],
        rows,
    )

    smallest = table[CORPUS_SIZES[0]]["vector"]
    largest = table[CORPUS_SIZES[-1]]["vector"]
    # Shape: embedding discriminability degrades as the corpus grows.
    assert largest < smallest
    assert smallest >= 0.6
    # Hybrid should never be dramatically worse than pure vector at scale.
    assert table[CORPUS_SIZES[-1]]["hybrid"] >= largest - 0.2
