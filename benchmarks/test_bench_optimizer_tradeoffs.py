"""C4 — §6.1 claim: "The plan optimizer makes trade-offs based on cost vs
efficiency... and make decisions about what technique (string matching vs
semantic matching), and tool (e.g., GPT-4 versus Llama 7B) to use."

Runs the same question set under the three optimizer policies and
reports dollar cost, virtual latency, and accuracy. Shape: the quality
policy costs roughly an order of magnitude more than the cost policy for
a modest accuracy gain. Also ablates the individual rewrites (filter
pushdown and string-match substitution) the optimizer applies.
"""

import pytest

from conftest import print_table
from repro.evaluation import Grade, grade_exact_count, grade_numeric
from repro.luna import (
    BALANCED_POLICY,
    COST_POLICY,
    LogicalPlan,
    Luna,
    LunaExecutor,
    LunaOptimizer,
    OptimizerPolicy,
    QUALITY_POLICY,
)

QUESTIONS = [
    ("How many incidents were caused by icing?", "count"),
    ("How many incidents were caused by engine failure?", "count"),
    ("What percent of environmentally caused incidents were due to wind?", "pct"),
    ("How many incidents in 2022 were weather related?", "count"),
    ("How many incidents involved a bird strike?", "count"),
]


def _truths(records):
    env = sum(1 for r in records if r.cause_category == "environmental")
    wind = sum(1 for r in records if r.cause_detail == "wind")
    return [
        sum(1 for r in records if r.cause_detail == "icing"),
        sum(1 for r in records if r.cause_detail == "engine_failure"),
        100.0 * wind / env,
        sum(1 for r in records if r.year == 2022 and r.weather_related),
        sum(1 for r in records if r.cause_detail == "bird_strike"),
    ]


def _run_policy(context, policy_name, questions, truths):
    before = context.cost_tracker.summary()
    context.llm.clear_cache()  # fair cost accounting per policy
    luna = Luna(context, planner_model="sim-large", policy=policy_name)
    correct = 0
    for (question, kind), truth in zip(questions, truths):
        try:
            answer = luna.query(question, index="ntsb").answer
        except Exception:
            continue
        if kind == "count":
            grade = grade_exact_count(answer, int(truth), plausible_slack=1)
        else:
            grade = grade_numeric(answer, truth, correct_rel_tol=0.1, correct_abs_tol=2.0)
        correct += grade.grade in (Grade.CORRECT, Grade.PLAUSIBLE)
    after = context.cost_tracker.summary()
    return {
        "accuracy": correct / len(questions),
        "cost_usd": after.cost_usd - before.cost_usd,
        "latency_s": after.latency_s - before.latency_s,
        "calls": after.calls - before.calls,
    }


def test_bench_optimizer_policies(benchmark, bench_context, ntsb_bench_corpus):
    records, _ = ntsb_bench_corpus
    truths = _truths(records)

    def run_all():
        return {
            name: _run_policy(bench_context, name, QUESTIONS, truths)
            for name in ("quality", "balanced", "cost")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{r['accuracy']:.0%}",
            f"${r['cost_usd']:.3f}",
            f"{r['latency_s']:.0f}s",
            r["calls"],
        ]
        for name, r in results.items()
    ]
    print_table(
        "C4: optimizer policy trade-offs (5 analytic questions, 80 docs)",
        ["policy", "accuracy", "LLM cost", "virtual latency", "LLM calls"],
        rows,
    )

    quality, cost = results["quality"], results["cost"]
    # Shape: quality costs much more than cost policy...
    assert quality["cost_usd"] > cost["cost_usd"] * 5
    # ...for an accuracy that is at least as good.
    assert quality["accuracy"] >= cost["accuracy"]
    assert quality["accuracy"] >= 0.8


FILTER_PLAN = [
    {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
    {"operation": "LlmFilter", "inputs": [0], "condition": "caused by icing"},
    {"operation": "BasicFilter", "inputs": [1], "field": "incident_year",
     "op": "eq", "value": 2022},
    {"operation": "Count", "inputs": [2]},
]


def test_bench_pushdown_ablation(benchmark, bench_context):
    """Ablation: filter pushdown cuts the LLM calls a plan makes."""
    executor = LunaExecutor(bench_context)

    def llm_calls_for(policy):
        bench_context.llm.clear_cache()
        plan, _ = LunaOptimizer(policy).optimize(
            LogicalPlan.from_json(FILTER_PLAN),
            bench_context.catalog.get("ntsb").schema,
        )
        before = bench_context.cost_tracker.summary().calls
        executor.execute(plan)
        return bench_context.cost_tracker.summary().calls - before

    with_pushdown = benchmark.pedantic(
        llm_calls_for, args=(QUALITY_POLICY,), rounds=1, iterations=1
    )
    no_pushdown = llm_calls_for(
        OptimizerPolicy(
            name="no-pushdown",
            filter_model="sim-large",
            extract_model="sim-large",
            summarize_model="sim-large",
            enable_pushdown=False,
            enable_string_substitution=False,
            enable_fusion=False,
        )
    )
    print(
        f"\nC4 ablation (pushdown): LLM calls with pushdown={with_pushdown}, "
        f"without={no_pushdown}"
    )
    # Year filter keeps ~1/3 of docs, so pushdown should cut calls ~3x.
    assert with_pushdown < no_pushdown


SUBSTITUTION_PLAN = [
    {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
    {"operation": "LlmFilter", "inputs": [0], "condition": "weather related incidents"},
    {"operation": "Count", "inputs": [1]},
]


def test_bench_string_substitution_ablation(benchmark, bench_context):
    """Ablation: string-match substitution eliminates per-record LLM calls."""
    executor = LunaExecutor(bench_context)
    schema = bench_context.catalog.get("ntsb").schema

    bench_context.llm.clear_cache()
    plan, log = LunaOptimizer(BALANCED_POLICY).optimize(
        LogicalPlan.from_json(SUBSTITUTION_PLAN), schema
    )
    before = bench_context.cost_tracker.summary().calls
    substituted_answer, _trace = benchmark.pedantic(
        executor.execute, args=(plan,), rounds=1, iterations=1
    )
    substituted_calls = bench_context.cost_tracker.summary().calls - before

    no_sub_policy = OptimizerPolicy(
        name="no-sub",
        filter_model="sim-large",
        extract_model="sim-large",
        summarize_model="sim-large",
        enable_string_substitution=False,
    )
    bench_context.llm.clear_cache()
    plan2, _ = LunaOptimizer(no_sub_policy).optimize(
        LogicalPlan.from_json(SUBSTITUTION_PLAN), schema
    )
    before = bench_context.cost_tracker.summary().calls
    semantic_answer, _ = executor.execute(plan2)
    semantic_calls = bench_context.cost_tracker.summary().calls - before

    print(
        f"\nC4 ablation (string-match): substituted answer={substituted_answer} "
        f"({substituted_calls} LLM calls) vs semantic answer={semantic_answer} "
        f"({semantic_calls} LLM calls)"
    )
    assert substituted_calls == 0
    assert semantic_calls >= 50
    # Both techniques land on similar answers.
    assert abs(substituted_answer - semantic_answer) <= max(3, semantic_answer * 0.2)
