"""E14 — checkpointed crash recovery: kill/resume cost at every node.

The lifecycle layer's claim (ISSUE 6 / ROADMAP "query lifecycle
robustness") is that a query killed mid-execution resumes from its
write-ahead journal with an answer **byte-identical** to an
uninterrupted run, re-executing only the nodes past the last durable
checkpoint. This benchmark kills one query after every checkpoint in
turn and measures what resume actually re-does.

For each kill point k (crash immediately after node k's checkpoint
reaches disk):

* run the query fresh under a journal, crash at k;
* resume in a new facade, record replayed vs re-executed node counts
  and wall time;
* compare the canonical answer (answer + supporting document ids)
  against the uninterrupted reference.

Results land in ``BENCH_recovery.json`` at the repo root (uploaded as a
CI artifact). Gates: every resume is byte-identical, resume never
re-executes a checkpointed node, and a kill past the plan's midpoint
re-executes fewer than 50% of the nodes.
"""

import json
import time
from pathlib import Path

from conftest import print_table
from repro.lifecycle import QueryJournal
from repro.llm import ReliableLLM, SimulatedLLM
from repro.luna import Luna
from repro.observability import MetricsRegistry, Tracer
from repro.partitioner import ArynPartitioner
from repro.sycamore import SycamoreContext
from repro.datagen import generate_ntsb_corpus

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_recovery.json"

N_DOCS = 16
SEED = 23
QUESTION = "How many incidents were caused by wind?"

SCHEMA = {
    "state": "string",
    "incident_year": "int",
    "weather_related": "bool",
    "injuries_fatal": "int",
}


class SimulatedCrash(BaseException):
    """Stands in for a hard kill inside the benchmark process."""


def _build_context():
    registry = MetricsRegistry()
    tracer = Tracer()
    llm = ReliableLLM(
        SimulatedLLM(seed=SEED), cache_enabled=False, tracer=tracer, registry=registry
    )
    ctx = SycamoreContext(
        llm=llm, parallelism=2, seed=SEED, tracer=tracer, registry=registry
    )
    _, raws = generate_ntsb_corpus(N_DOCS, seed=SEED)
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(SCHEMA, model="sim-large")
        .write.index("ntsb")
    )
    return ctx


def _canonical(result):
    return json.dumps(
        {
            "answer": result.answer,
            "docs": sorted(result.trace.supporting_documents()),
        },
        sort_keys=True,
        default=repr,
    )


def run_recovery_benchmark(journal_root):
    ctx = _build_context()
    reference = Luna(ctx, error_policy="dead_letter").query(QUESTION, index="ntsb")
    ref_bytes = _canonical(reference)
    total_nodes = reference.trace.nodes_executed

    kills = []
    for kill_after in range(total_nodes - 1):
        journal = QueryJournal(journal_root)
        original = journal.node_complete

        def crashing(query_id, index, operation, value):
            original(query_id, index, operation, value)
            if index >= kill_after:
                raise SimulatedCrash

        journal.node_complete = crashing
        query_id = f"bench-kill-{kill_after}"
        crashed = Luna(ctx, error_policy="dead_letter", journal=journal)
        try:
            crashed.query(QUESTION, index="ntsb", query_id=query_id)
            raise AssertionError("kill point never reached")
        except SimulatedCrash:
            pass
        journal.node_complete = original

        started = time.perf_counter()
        resumed = Luna(ctx, error_policy="dead_letter", journal=journal).resume(
            query_id
        )
        resume_s = time.perf_counter() - started
        kills.append(
            {
                "kill_after_node": kill_after,
                "replayed": resumed.trace.nodes_replayed,
                "reexecuted": resumed.trace.nodes_executed,
                "reexecuted_fraction": round(
                    resumed.trace.nodes_executed / total_nodes, 4
                ),
                "resume_s": round(resume_s, 4),
                "byte_identical": _canonical(resumed) == ref_bytes,
            }
        )
    return {
        "question": QUESTION,
        "n_docs": N_DOCS,
        "seed": SEED,
        "total_nodes": total_nodes,
        "kills": kills,
    }


def test_bench_recovery(benchmark, tmp_path):
    results = benchmark.pedantic(
        run_recovery_benchmark, args=(tmp_path,), rounds=1, iterations=1
    )

    rows = [
        [
            f"after node {row['kill_after_node']}",
            row["replayed"],
            row["reexecuted"],
            f"{row['reexecuted_fraction']:.0%}",
            f"{row['resume_s'] * 1000:.0f}ms",
            "yes" if row["byte_identical"] else "NO",
        ]
        for row in results["kills"]
    ]
    print_table(
        "E14: crash recovery (kill after each checkpoint, resume from journal)",
        ["kill point", "replayed", "re-executed", "re-exec %", "resume", "identical"],
        rows,
    )

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")

    total = results["total_nodes"]
    assert results["kills"], "plan too small to kill mid-query"
    for row in results["kills"]:
        # Resume correctness: byte-identical, and checkpointed nodes are
        # replayed, never re-run.
        assert row["byte_identical"]
        assert row["replayed"] == row["kill_after_node"] + 1
        assert row["replayed"] + row["reexecuted"] == total
    # The gate the issue specifies: a kill past the midpoint re-executes
    # fewer than half the plan's nodes.
    past_midpoint = [
        row for row in results["kills"] if row["kill_after_node"] + 1 >= total / 2
    ]
    assert past_midpoint, "no kill point past the plan midpoint"
    for row in past_midpoint:
        assert row["reexecuted_fraction"] < 0.5
