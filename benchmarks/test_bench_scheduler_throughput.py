"""E12 — request-scheduler throughput: sequential vs batched vs batched+dedup.

The runtime's cost/latency story (§3 "LLMs are slow and expensive") rests
on how efficiently LLM traffic is scheduled. This bench evaluates the
same semantic-filter workload over a synthetic NTSB corpus three ways:

* **sequential** — one blocking ``complete`` per prompt, no scheduler
  (the pre-scheduler call pattern);
* **batched** — every prompt submitted through a
  :class:`repro.runtime.RequestScheduler` with dedup off, so only
  micro-batching and dispatch parallelism help;
* **batched+dedup** — the full scheduler, which also collapses the
  duplicate prompts that concurrent pipelines naturally produce.

The workload is duplicate-heavy by construction: three "pipelines"
evaluate the same filter predicate over the corpus, the pattern in-flight
dedup exists for. The backend sleeps a fraction of each model's virtual
latency (``real_latency_scale``) so calls are network-bound the way
hosted-API calls are, and the reliability layer's response cache is OFF —
otherwise the cache would mask exactly the effects being measured.

Results land in ``BENCH_scheduler.json`` at the repo root (uploaded as a
CI artifact). Gate: batched+dedup must clear 2x sequential docs/sec.
"""

import json
import time
from pathlib import Path

from conftest import print_table
from repro.llm import ReliableLLM, SimulatedLLM
from repro.llm.prompts import FILTER_DOCUMENT, append_section, render_task_prompt
from repro.partitioner import ArynPartitioner
from repro.runtime import RequestScheduler

#: Fraction of virtual latency each backend call really sleeps.
LATENCY_SCALE = 0.02
N_DOCS = 20
#: Concurrent pipelines evaluating the same predicate (duplicate factor).
N_PIPELINES = 3
MODEL = "sim-large"

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_scheduler.json"


def _build_prompts(raws):
    """Filter prompts for each document, duplicated across pipelines."""
    prefix = render_task_prompt(
        FILTER_DOCUMENT.task,
        {
            "instructions": FILTER_DOCUMENT.instructions,
            "condition": "the incident was caused by weather",
        },
    )
    partitioner = ArynPartitioner(seed=0)
    per_doc = [
        append_section(prefix, "document", partitioner.partition(raw).text_representation())
        for raw in raws[:N_DOCS]
    ]
    return per_doc * N_PIPELINES


def _fresh_client():
    """A reliability-wrapped backend with the response cache disabled."""
    return ReliableLLM(
        SimulatedLLM(seed=5, real_latency_scale=LATENCY_SCALE),
        cache_enabled=False,
    )


def _run_sequential(prompts):
    client = _fresh_client()
    started = time.perf_counter()
    responses = [client.complete(prompt, model=MODEL) for prompt in prompts]
    elapsed = time.perf_counter() - started
    client.close()
    return responses, elapsed, {}


def _run_scheduled(prompts, dedup):
    client = _fresh_client()
    scheduler = RequestScheduler(
        client=client,
        max_batch_size=8,
        max_wait_ms=2.0,
        dispatch_parallelism=4,
        dedup=dedup,
    )
    started = time.perf_counter()
    futures = [scheduler.submit(prompt, model=MODEL) for prompt in prompts]
    responses = [future.result(timeout=120) for future in futures]
    elapsed = time.perf_counter() - started
    metrics = scheduler.metrics()
    scheduler.close()
    client.close()
    return responses, elapsed, metrics


def test_bench_scheduler_throughput(benchmark, ntsb_bench_corpus):
    _, raws = ntsb_bench_corpus
    prompts = _build_prompts(raws)
    n = len(prompts)

    seq_responses, seq_s, _ = _run_sequential(prompts)
    batch_responses, batch_s, batch_m = _run_scheduled(prompts, dedup=False)
    dedup_responses, dedup_s, dedup_m = benchmark.pedantic(
        _run_scheduled, args=(prompts, True), rounds=1, iterations=1
    )

    # Same workload, same deterministic backend: answers must agree.
    assert [r.text for r in batch_responses] == [r.text for r in seq_responses]
    assert [r.text for r in dedup_responses] == [r.text for r in seq_responses]

    modes = {
        "sequential": (seq_s, {}),
        "batched": (batch_s, batch_m),
        "batched+dedup": (dedup_s, dedup_m),
    }
    results = {
        "workload": {
            "documents": N_DOCS,
            "pipelines": N_PIPELINES,
            "prompts": n,
            "model": MODEL,
            "real_latency_scale": LATENCY_SCALE,
        },
        "modes": {},
    }
    rows = []
    for name, (elapsed, metrics) in modes.items():
        docs_per_s = n / elapsed
        results["modes"][name] = {
            "elapsed_s": round(elapsed, 4),
            "docs_per_s": round(docs_per_s, 2),
            "speedup_vs_sequential": round(seq_s / elapsed, 2),
            "upstream_calls_saved": metrics.get("dedup_hits", 0),
            "avg_batch_size": metrics.get("avg_batch_size", 1.0),
        }
        rows.append(
            [
                name,
                f"{elapsed:.3f}s",
                f"{docs_per_s:.1f}",
                f"{seq_s / elapsed:.2f}x",
                metrics.get("avg_batch_size", "-"),
                metrics.get("dedup_hits", "-"),
            ]
        )
    print_table(
        "E12: scheduler throughput (semantic filter over synthetic NTSB)",
        ["mode", "elapsed", "docs/s", "speedup", "avg batch", "dedup hits"],
        rows,
    )

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")

    # Shape assertions — the gates the issue specifies.
    assert results["modes"]["batched+dedup"]["speedup_vs_sequential"] >= 2.0
    assert results["modes"]["batched"]["speedup_vs_sequential"] > 1.0
    # Dedup collapsed the duplicate pipelines' prompts: every submission
    # either dispatched or piggybacked on an in-flight twin.
    assert dedup_m["dedup_hits"] + dedup_m["completed"] == n
    assert dedup_m["dedup_hits"] > 0
    assert batch_m["avg_batch_size"] > 1.0
