"""E3 — Table 1: the Sycamore transform catalogue.

The paper's Table 1 lists the transform families — Core (map, filter,
flat_map), Structural (partition, explode), Analytic (reduce_by_key,
sort), LLM-powered (llm_query, extract_properties, summarize, embed).
This bench verifies every listed transform exists and runs, and measures
per-transform throughput over a partitioned corpus.
"""

import time

import pytest

from conftest import print_table
from repro.llm import SUMMARIZE_DOCUMENT
from repro.sycamore import DocSet


#: (family, transform, runner) — each runner exercises one Table-1 entry.
def _catalogue():
    return [
        ("Core", "map", lambda ds: ds.map(lambda d: d).count()),
        ("Core", "filter", lambda ds: ds.filter(lambda d: True).count()),
        ("Core", "flat_map", lambda ds: ds.flat_map(lambda d: [d]).count()),
        ("Structural", "explode", lambda ds: ds.explode().count()),
        (
            "Structural",
            "merge_elements",
            lambda ds: ds.merge_elements(lambda a, b: a.page == b.page).count(),
        ),
        (
            "Analytic",
            "reduce_by_key",
            lambda ds: ds.reduce_by_key("state", len).count(),
        ),
        ("Analytic", "sort", lambda ds: len(ds.sort("state").take_all())),
        ("Analytic", "top_k", lambda ds: len(ds.top_k("state", k=3))),
        ("Analytic", "aggregate", lambda ds: ds.aggregate("count", "injuries_fatal")),
        (
            "Analytic",
            "filter_by_property",
            lambda ds: ds.filter_by_property("incident_year", "ge", 2022).count(),
        ),
        (
            "LLM-powered",
            "llm_query",
            lambda ds: ds.limit(8)
            .llm_query(SUMMARIZE_DOCUMENT, "llm_out", model="sim-small")
            .count(),
        ),
        (
            "LLM-powered",
            "extract_properties",
            lambda ds: ds.limit(8)
            .extract_properties({"probable_cause": "string"}, model="sim-small")
            .count(),
        ),
        (
            "LLM-powered",
            "llm_filter",
            lambda ds: ds.limit(8).llm_filter("caused by wind", model="sim-small").count(),
        ),
        (
            "LLM-powered",
            "summarize",
            lambda ds: ds.limit(8).summarize(model="sim-small").count(),
        ),
        ("LLM-powered", "embed", lambda ds: ds.limit(16).embed().count()),
    ]


def test_bench_transform_catalogue(benchmark, bench_context):
    base = bench_context.read.index("ntsb")
    rows = []
    for family, name, runner in _catalogue():
        start = time.perf_counter()
        result = runner(base)
        elapsed = time.perf_counter() - start
        assert result is not None
        rows.append([family, name, f"{elapsed * 1000:.1f} ms"])
    print_table(
        "E3: Sycamore transform catalogue (Table 1) — all present and running",
        ["family", "transform", "wall time"],
        rows,
    )
    # Table 1 families are all covered.
    assert {r[0] for r in rows} == {"Core", "Structural", "Analytic", "LLM-powered"}

    # Microbenchmark the hot non-LLM path: a full map+filter pass.
    def core_pass():
        return base.map(lambda d: d).filter(lambda d: True).count()

    benchmark(core_pass)
