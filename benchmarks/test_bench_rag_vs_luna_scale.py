"""C1 — §2 claim: "the simple RAG approach simply does not scale.
RAG accuracy degrades quickly as one asks more complex questions, adds
more data."

This bench sweeps corpus size and runs the same analytic questions
through the RAG baseline (top-k retrieve + generate) and through Luna
(sweep-and-harvest plans). Shape: Luna's accuracy stays roughly flat as
the corpus grows; RAG's collapses once the answer set no longer fits
through the top-k keyhole.
"""

import pytest

from conftest import print_table
from repro.datagen import generate_ntsb_corpus
from repro.evaluation import Grade, grade_exact_count, grade_numeric
from repro.luna import Luna
from repro.partitioner import ArynPartitioner
from repro.rag import RagPipeline
from repro.sycamore import SycamoreContext

CORPUS_SIZES = (25, 50, 100, 200)


def _questions(records):
    icing = sum(1 for r in records if r.cause_detail == "icing")
    birds = sum(1 for r in records if r.cause_detail == "bird_strike")
    mech = sum(1 for r in records if r.cause_category == "mechanical")
    pct = 100.0 * mech / len(records)
    return [
        ("How many incidents were caused by icing?", "count", icing),
        ("How many incidents involved a bird strike?", "count", birds),
        (
            "What percent of incidents were caused by mechanical failure?",
            "numeric",
            pct,
        ),
    ]


def _grade(kind, answer, expected, n_docs=100):
    if kind == "count":
        return grade_exact_count(answer, int(expected), plausible_slack=1)
    # Percentages get the same +-1-document slack exact counts get.
    one_doc = 100.0 / n_docs
    return grade_numeric(answer, float(expected), correct_rel_tol=0.05,
                         correct_abs_tol=max(1.0, one_doc))


def _run_at_size(n_docs):
    records, raws = generate_ntsb_corpus(n_docs, seed=31)
    ctx = SycamoreContext(parallelism=8, seed=5)
    docs = (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(
            {"state": "string", "incident_year": "int", "weather_related": "bool"},
            model="sim-large",
        )
    )
    docs.write.index("ntsb")
    chunk_index = ctx.catalog.create("chunks")
    RagPipeline.ingest(chunk_index, ctx.read.index("ntsb").take_all(), chunk_tokens=200)
    rag = RagPipeline(chunk_index, ctx.llm, model="sim-large", top_k=5)
    luna = Luna(ctx, planner_model="sim-large", policy="quality")

    questions = _questions(records)
    rag_correct = luna_correct = 0
    for question, kind, expected in questions:
        rag_grade = _grade(kind, rag.answer(question).answer, expected, n_docs)
        rag_correct += rag_grade.grade is Grade.CORRECT
        try:
            luna_answer = luna.query(question, index="ntsb").answer
            luna_grade = _grade(kind, luna_answer, expected, n_docs)
            luna_correct += luna_grade.grade is Grade.CORRECT
        except Exception:
            pass
    return rag_correct / len(questions), luna_correct / len(questions)


def test_bench_rag_vs_luna_scale(benchmark):
    def sweep():
        return {size: _run_at_size(size) for size in CORPUS_SIZES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [size, f"{rag:.0%}", f"{luna:.0%}"]
        for size, (rag, luna) in results.items()
    ]
    print_table(
        "C1: accuracy vs corpus size (aggregation questions)",
        ["corpus size", "RAG top-5", "Luna"],
        rows,
    )

    small_rag, _ = results[CORPUS_SIZES[0]]
    big_rag, big_luna = results[CORPUS_SIZES[-1]]
    luna_accuracies = [luna for _, luna in results.values()]
    # Shape: RAG degrades with scale; Luna stays strong throughout.
    assert big_rag < max(small_rag, 0.4)
    assert big_rag <= 1 / 3  # keyhole: counts structurally wrong at 200 docs
    assert min(luna_accuracies) >= 2 / 3
    assert big_luna > big_rag
