"""E16 — cost-based optimization: equal answers at a fraction of the cost.

The optimizer's claim (ISSUE 8 / ROADMAP "adaptive optimization") is
that cost-based rewrites — predicate reorder, scan-filter folding, and
cheap-model cascades — cut what a query spends on LLM calls without
changing what it answers.

One hand-built plan per corpus, authored in the worst reasonable order
(LLM predicate first, free structured predicate second), three arms in
**fresh** contexts so the LLM response cache cannot flatter any arm (see
:mod:`repro.optimizer.bench` for the full design):

* ``cold`` — the plan exactly as written, quality models;
* ``optimized`` — reorder + scan-fold, same models: must be
  **byte-identical** to cold (answer and supporting documents) at
  ≤ 0.6x the cold cost;
* ``cascade`` — sim-small drafts escalating to sim-large on low
  confidence: must match the concept-lexicon **ground truth** (cascades
  can out-vote a rare sim-large slip, so cold is the wrong oracle) at
  ≤ 0.6x the cold cost.

Results land in ``BENCH_optimizer.json`` at the repo root (uploaded as
a CI artifact).
"""

import json
from pathlib import Path

from repro.optimizer.bench import render_results, run_optimizer_benchmark

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_optimizer.json"

N_NTSB = 80
N_EARNINGS = 60
MAX_COST_RATIO = 0.6


def test_bench_optimizer(benchmark):
    results = benchmark.pedantic(
        run_optimizer_benchmark,
        kwargs=dict(
            n_ntsb=N_NTSB,
            n_earnings=N_EARNINGS,
            max_cost_ratio=MAX_COST_RATIO,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(render_results(results))
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {RESULTS_PATH}")

    for name, row in results["workloads"].items():
        arms = row["arms"]
        # The gates the issue specifies, per corpus.
        assert row["byte_identical"], (
            f"{name}: optimized answer diverged from the cold plan"
        )
        assert row["optimized_cost_ratio"] <= MAX_COST_RATIO, name
        assert row["cascade_cost_ratio"] <= MAX_COST_RATIO, name
        assert row["cascade_answer_correct"], (
            f"{name}: cascade answer {arms['cascade']['answer']} != "
            f"ground truth {arms['cascade']['ground_truth']}"
        )
        # The savings are mechanical, not accidental: the structured
        # predicate ran first, so the LLM saw strictly fewer rows.
        assert arms["optimized"]["llm_rows"] < arms["cold"]["llm_rows"], name
        # Rewrites actually fired (and the cold arm stayed cold).
        assert not arms["cold"]["rewrites"], name
        assert any(
            r.startswith(("reorder:", "pushdown:"))
            for r in arms["optimized"]["rewrites"]
        ), name
        assert any(
            r.startswith("scan-filter:") for r in arms["optimized"]["rewrites"]
        ), name
        assert any(
            r.startswith("cascade:") for r in arms["cascade"]["rewrites"]
        ), name
