"""A3 — §4 claim: partitioner quality drives end-task accuracy.

"While developing Aryn, we experimented with a variety of open-source
partitioners... We quickly found that these tools lacked the fidelity
and accuracy we needed to get high quality results for RAG and
unstructured analytics."

This bench holds everything constant except the segmentation model and
measures downstream task accuracy: (a) torque-spec table lookups over
service manuals and (b) property extraction over NTSB reports. Shape:
the calibrated Aryn detector (E1's mAP 0.60 operating point) clearly
beats the cloud-vendor baseline (mAP 0.34) on both tasks — detection
quality propagates to answers.
"""

import pytest

from conftest import print_table
from repro.datagen import generate_manuals_corpus, generate_ntsb_corpus
from repro.docmodel import TableElement
from repro.llm.skills.common import extract_field
from repro.partitioner import (
    ARYN_DETECTOR,
    ArynPartitioner,
    CLOUD_BASELINE_DETECTOR,
)

N_MANUALS = 60
N_REPORTS = 30


def _torque_accuracy(partitioner, manuals, raws):
    correct = total = 0
    for manual, raw in zip(manuals, raws):
        doc = partitioner.partition(raw)
        for part in manual.parts[:4]:
            total += 1
            for element in doc.elements:
                if isinstance(element, TableElement):
                    values = element.table.lookup("Name", part.name, "Torque (Nm)")
                    if values:
                        try:
                            if float(values[0]) == part.torque_nm:
                                correct += 1
                        except ValueError:
                            pass
                        break
    return correct / total


def _extraction_accuracy(partitioner, records, raws):
    correct = total = 0
    for record, raw in zip(records, raws):
        doc = partitioner.partition(raw)
        text = doc.text_representation()
        total += 2
        correct += extract_field("state", "string", text) == record.state
        correct += extract_field("injuries_fatal", "int", text) == record.injuries_fatal
    return correct / total


def test_bench_detector_downstream(benchmark):
    manuals, manual_raws = generate_manuals_corpus(N_MANUALS, seed=11)
    records, report_raws = generate_ntsb_corpus(N_REPORTS, seed=12)

    def run_all():
        results = {}
        for detector in (ARYN_DETECTOR, CLOUD_BASELINE_DETECTOR):
            partitioner = ArynPartitioner(detector=detector, seed=0)
            results[detector.name] = (
                _torque_accuracy(partitioner, manuals, manual_raws),
                _extraction_accuracy(partitioner, records, report_raws),
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{torque:.0%}",
            f"{extraction:.0%}",
            f"{(torque + extraction) / 2:.0%}",
        ]
        for name, (torque, extraction) in results.items()
    ]
    print_table(
        "A3: downstream task accuracy by segmentation model",
        ["detector", "manual torque QA", "NTSB field extraction", "combined"],
        rows,
    )

    aryn_torque, aryn_extract = results["aryn-deformable-detr"]
    cloud_torque, cloud_extract = results["cloud-vendor-api"]
    # Shape: the better detector wins overall. Individual tasks carry
    # binomial sampling noise (a lost table costs 4 lookups at once), so
    # the combined score is the stable comparison.
    assert aryn_torque >= 0.75
    assert aryn_extract > cloud_extract
    combined_aryn = (aryn_torque + aryn_extract) / 2
    combined_cloud = (cloud_torque + cloud_extract) / 2
    assert combined_aryn > combined_cloud
