"""E13 — query serving: warm concurrent service vs cold sequential loop.

The serving layer's claim (ISSUE 4 / ROADMAP "production-scale serving")
is that a shared :class:`repro.serving.QueryService` turns repeated and
concurrent question traffic into cache hits and coalesced single-flight
work, so warm serving throughput beats a cold ``Luna.query()`` loop by a
wide margin *without* the LLM response cache helping (it is disabled in
both modes — the serving caches are the only reuse being measured).

Three phases (see :mod:`repro.serving.bench`):

* **sequential_cold** — one blocking ``Luna.query`` per request;
* **served_warm** — the same request mix submitted concurrently;
* **overload** — a one-worker, depth-2 service flooded with 12 distinct
  questions: some are shed with typed ``Overloaded``, every admitted
  query completes, and the drain finishes.

Results land in ``BENCH_serving.json`` at the repo root (uploaded as a
CI artifact). Gate: warm serving must clear 3x cold-sequential
throughput, and cache savings must be visible in per-tenant ledgers.
"""

import json
from pathlib import Path

from conftest import print_table
from repro.serving.bench import run_serving_benchmark

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

N_DOCS = 24
REPEATS = 3
TENANTS = 2
WORKERS = 4
LATENCY_SCALE = 0.01


def test_bench_serving(benchmark):
    results = benchmark.pedantic(
        run_serving_benchmark,
        kwargs=dict(
            n_docs=N_DOCS,
            repeats=REPEATS,
            tenants=TENANTS,
            workers=WORKERS,
            latency_scale=LATENCY_SCALE,
            seed=13,
        ),
        rounds=1,
        iterations=1,
    )

    modes = results["modes"]
    rows = []
    for name, row in modes.items():
        rows.append(
            [
                name,
                f"{row['elapsed_s']:.3f}s",
                f"{row['qps']:.1f}",
                f"{row.get('speedup_vs_sequential', 1.0):.2f}x",
                row.get("plans_computed", "-"),
                row.get("executions", "-"),
                f"${row.get('saved_usd', 0):.4f}",
            ]
        )
    print_table(
        "E13: query serving (warm concurrent service vs cold sequential loop)",
        ["mode", "elapsed", "qps", "speedup", "plans", "execs", "saved"],
        rows,
    )
    over = results["overload"]
    print(
        f"\noverload: {over['submitted']} submitted -> {over['admitted']} admitted, "
        f"{over['rejected']} shed (typed), {over['completed']} completed, "
        f"drained={over['drained']}"
    )
    for tenant, totals in results["tenants"].items():
        print(
            f"tenant {tenant}: spent ${totals['cost_usd']:.4f} "
            f"saved ${totals['saved_usd']:.4f}"
        )

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")

    warm = modes["served_warm"]
    n_requests = results["workload"]["requests"]
    distinct = results["workload"]["distinct_questions"]

    # The gates the issue specifies.
    assert results["answers_agree"], "served answers diverged from plain Luna"
    assert warm["speedup_vs_sequential"] >= 3.0
    # Single-flight: each distinct question planned and executed once,
    # despite repeats * tenants copies of it being submitted.
    assert warm["plans_computed"] == distinct
    assert warm["executions"] == distinct
    assert warm["result_cache"]["hits"] + warm["result_cache"]["coalesced"] == (
        n_requests - distinct
    )
    # Cache reuse is visible as saved_usd in every tenant's ledger.
    assert warm["saved_usd"] > 0
    for totals in results["tenants"].values():
        assert totals["saved_usd"] > 0
    # Overload sheds typed and never deadlocks; admitted work completes.
    assert over["rejected"] > 0
    assert over["completed"] == over["admitted"]
    assert over["drained"]
