"""E6 — Figure 5 / §6.2: the sample Luna query end-to-end.

Paper: for "What percent of environmentally caused incidents were due to
wind?" Luna produces a plan (QueryDatabase -> LlmFilter -> Count, a
second LlmFilter -> Count, then a math op) and translates it into
Sycamore code. This bench reproduces the full artefact chain — plan,
generated code, execution trace — and checks the computed percentage
against corpus ground truth.
"""

import pytest

from conftest import print_table
from repro.luna import Luna

QUESTION = "What percent of environmentally caused incidents were due to wind?"


def test_bench_luna_plan_example(benchmark, bench_context, ntsb_bench_corpus):
    records, _ = ntsb_bench_corpus
    luna = Luna(bench_context, planner_model="sim-large", policy="quality")

    result = benchmark.pedantic(
        luna.query, args=(QUESTION,), kwargs={"index": "ntsb"}, rounds=1, iterations=1
    )

    print("\nE6 / Figure 5 — plan (natural language):")
    print(result.optimized_plan.to_natural_language())
    print("\nGenerated Sycamore code (cf. §6.2):")
    print(result.code)
    print("\nExecution trace:")
    print(result.trace.render())

    env = sum(1 for r in records if r.cause_category == "environmental")
    wind = sum(1 for r in records if r.cause_detail == "wind")
    expected = 100.0 * wind / env
    print(f"\nanswer={result.answer:.1f}%  ground truth={expected:.1f}%")

    # Plan shape matches the paper's figure: two filter->count branches
    # feeding a math node.
    operations = [n.operation for n in result.optimized_plan.nodes]
    assert operations.count("Count") == 2
    assert operations[-1] == "Math"
    assert "out_0 = context.read.index('ntsb')" in result.code
    assert "math_operation" in result.code
    # Answer within a plausible band of truth (LLM filters are noisy).
    assert result.answer == pytest.approx(expected, rel=0.3)
