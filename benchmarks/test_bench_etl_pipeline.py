"""E5 — Figures 3/4: the Sycamore ETL script and extract_properties output.

The paper's Figure 3 shows the canonical Sycamore pipeline: read raw
documents, partition with the Aryn Partitioner, extract_properties with a
JSON schema, explode into chunks, embed, and write to a vector index.
Figure 4 shows the extracted properties for one document. This bench runs
that exact pipeline over the NTSB corpus, reports property-extraction
accuracy against ground truth, and times the end-to-end run.
"""

import pytest

from conftest import print_table
from repro.partitioner import ArynPartitioner
from repro.sycamore import SycamoreContext

SCHEMA = {
    "us_state": "string",
    "probable_cause": "string",
    "weather_related": "bool",
    "incident_year": "int",
}


def _run_pipeline(raws, model):
    ctx = SycamoreContext(parallelism=8, seed=9)
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(SCHEMA, model=model)
        .materialize()
        .explode()
        .embed()
        .write.index("ntsb_chunks")
    )
    # The document-level properties live on every exploded chunk; collect
    # one representative per parent.
    by_parent = {}
    for chunk in ctx.catalog.get("ntsb_chunks").all_documents():
        by_parent.setdefault(chunk.parent_id, chunk.properties)
    return ctx, by_parent


def test_bench_etl_pipeline(benchmark, ntsb_bench_corpus):
    records, raws = ntsb_bench_corpus
    subset = raws[:40]
    record_by_id = {r.report_id: r for r in records}

    ctx, extracted = benchmark.pedantic(
        _run_pipeline, args=(subset, "sim-large"), rounds=1, iterations=1
    )

    # Figure 4: show the extraction for the first document.
    first = records[0]
    props = extracted[first.report_id]
    print("\nE5 / Figure 4 — extract_properties output for", first.report_id)
    for key in SCHEMA:
        print(f"  {key}: {props.get(key)!r}")

    # Accuracy vs ground truth per field.
    totals = {"us_state": 0, "weather_related": 0, "incident_year": 0, "probable_cause": 0}
    for report_id, props in extracted.items():
        truth = record_by_id[report_id]
        totals["us_state"] += props.get("us_state") == truth.state
        totals["weather_related"] += props.get("weather_related") == truth.weather_related
        totals["incident_year"] += props.get("incident_year") == truth.year
        cause = props.get("probable_cause") or ""
        totals["probable_cause"] += truth.probable_cause.split(",")[0] in cause
    n = len(extracted)
    rows = [[field, f"{count}/{n}", f"{count / n:.0%}"] for field, count in totals.items()]
    print_table(
        "E5: extract_properties accuracy over the corpus (Figure 3 pipeline)",
        ["field", "correct", "accuracy"],
        rows,
    )

    assert n == len(subset)
    # Shape: a frontier-tier model extracts cleanly from clean documents.
    assert totals["us_state"] / n >= 0.9
    assert totals["weather_related"] / n >= 0.85
    assert totals["incident_year"] / n >= 0.9
    # The chunks landed in the vector index with embeddings.
    index = ctx.catalog.get("ntsb_chunks")
    assert len(index.vector) == len(index.docstore)
    assert len(index) > len(subset)  # exploded into multiple chunks/doc
