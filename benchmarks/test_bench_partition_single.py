"""E4 — Figure 2: partitioner output on a typical NTSB report.

The paper's Figure 2 shows the Aryn Partitioner's output on an accident
report, including table and cell identification. This bench partitions
one synthetic report, prints the recovered element inventory (the
machine-readable version of the figure), and times the partitioner.
"""

import pytest

from conftest import print_table
from repro.docmodel import TableElement
from repro.partitioner import ArynPartitioner


def test_bench_partition_single_report(benchmark, ntsb_bench_corpus):
    _, raws = ntsb_bench_corpus
    raw = raws[0]
    partitioner = ArynPartitioner(seed=0)

    doc = benchmark(lambda: partitioner.partition(raw))

    rows = []
    for element in doc.elements:
        preview = element.text_representation().replace("\n", " ")[:48]
        rows.append(
            [
                element.page,
                element.type,
                f"{element.bbox.y1:.0f}" if element.bbox else "-",
                preview,
            ]
        )
    print_table(
        f"E4: partitioner output for {doc.doc_id} (Figure 2)",
        ["page", "type", "y", "content"],
        rows,
    )

    # The figure's key claims: typed regions, including an identified
    # table with recovered cells.
    types = {e.type for e in doc.elements}
    assert "Title" in types
    assert "Section-header" in types
    tables = [e for e in doc.elements if isinstance(e, TableElement)]
    assert tables, "Figure 2 requires table identification"
    cells = sum(len(t.table.cells) for t in tables)
    print(f"\nidentified {len(tables)} tables with {cells} cells total")
    assert cells >= 4
